#!/usr/bin/env bash
# Repository CI gate: formatting, lints, tier-1 build + tests.
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh quick    # skip the release build (lints + debug tests)
#
# fmt/clippy run only when the toolchain provides them, so the script
# also works on minimal rust installations.
set -euo pipefail
cd "$(dirname "$0")/.."

quick="${1:-}"

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "== cargo fmt unavailable, skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== cargo clippy unavailable, skipping"
fi

# In-repo static analysis (DESIGN.md §12): interprocedural lock-rank
# order, replay determinism, crash-point registry, panic audit, WAL
# byte order, atomics ordering protocol, snapshot-path purity, and the
# stale-allow audit. Zero findings required; diagnostics are
# file:line: [pass] message. Runs before the release build so a lint
# failure fails fast; the machine-readable findings (stable IDs) land
# in target/lint/findings.json as the CI artifact.
echo "== morph-lint (self-test + full passes)"
cargo test -q -p morph-lint
cargo run -q -p morph-lint -- --json=target/lint/findings.json

if [ "$quick" != "quick" ]; then
    echo "== cargo build --release (tier-1)"
    cargo build --release

    # Bench regression gates (DESIGN.md §10, §14). Three series, all
    # merged into BENCH_propagation.json with a cores field:
    #   pool_gate    — bounded serial vs apply_shards=4 drain sweep
    #                  over the shared FOJ/split scenarios; pooled
    #                  drain must beat serial by ≥10% on both.
    #   reader_gate  — lock-based vs MVCC-snapshot point reads
    #                  interleaved under four pacing writers and a
    #                  looping snapshot-mode migration; snapshot p99
    #                  must be ≥2× better than the locked read path.
    #   transform_mode — log-propagation vs snapshot-scan migration
    #                  ablation (record only, never enforced).
    #   shard_gate   — aggregate router commit + migration throughput
    #                  at shards 1/2/4/8 under 8 clients; ≥1.8×
    #                  aggregate speedup at 4 shards (cores ≥ 4 only).
    #   lazy_tail    — hot-shard p99 read/write mid-migration, lazy
    #                  (SLSM) vs eager; lazy must win on ≥4 cores.
    # On a single-CPU host the comparative gates record without
    # enforcing — 1-core results are overhead readings, not scaling
    # data. bench_check also asserts the apply_shards core-count clamp.
    echo "== bench gates (bench_check: apply pool + MVCC reader)"
    cargo run -q --release -p morph-bench --bin bench_check
fi

echo "== cargo test (tier-1)"
cargo test -q

# Parallel-pipeline equivalence: the proptest + burst suite comparing
# ParallelConfig{4,4} against the serial pipeline record-for-record
# (tests/parallel_equivalence.rs; see DESIGN.md §10). The env knobs
# widen the sweep to other worker/shard counts.
echo "== parallel equivalence (copy_workers=4, apply_shards=4)"
MORPH_PAR_COPY_WORKERS=4 MORPH_PAR_APPLY_SHARDS=4 \
    cargo test -q --test parallel_equivalence

# Sharded-router equivalence: proptests driving the same FOJ/split/
# union datasets through a ShardedDatabase at 1–4 shards — eager
# fan-out and SLSM lazy mode both — and through a single engine,
# comparing target images record-for-record (DESIGN.md §15).
echo "== sharded equivalence (router, eager + lazy)"
cargo test -q --test sharded_equivalence

# Bounded crash-simulation smoke sweep (fixed seeds, well under a
# minute). SIM_SEEDS=N widens the sweep: census + 3 seeded kills per
# (scenario × strategy × seed) cell, every kill checked against the
# Theorem 1 recovery oracle. See DESIGN.md §9 / EXPERIMENTS.md.
echo "== sim smoke sweep (SIM_SEEDS=${SIM_SEEDS:-4})"
SIM_SEEDS="${SIM_SEEDS:-4}" cargo test -q -p morph-sim --test seed_sweep -- --nocapture

# WAL group-commit pipeline (DESIGN.md §11): the multi-threaded
# append/crash stress test, then the sim smoke sweep again with the
# lock-split group-commit mode forced on — the crash matrix and the
# Theorem 1 oracle must hold identically in both WAL modes.
echo "== WAL append/crash stress"
cargo test -q -p morph-wal --test append_stress

echo "== sim smoke sweep, group-commit WAL (SIM_SEEDS=${SIM_SEEDS:-4})"
MORPH_WAL_MODE=group SIM_SEEDS="${SIM_SEEDS:-4}" \
    cargo test -q -p morph-sim --test seed_sweep -- --nocapture

# Orchestrator kill matrix (DESIGN.md §13): kill the migration state
# machine at every registered orchestrator.* transition, tear the WAL,
# recover, and resume from the durable MigrationState records — run in
# both WAL modes like the main matrix.
echo "== orchestrator kill matrix"
cargo test -q -p morph-sim --test orchestrator_matrix
echo "== orchestrator kill matrix, group-commit WAL"
MORPH_WAL_MODE=group cargo test -q -p morph-sim --test orchestrator_matrix

# Shard kill matrix (DESIGN.md §15): kill one shard of a fanned-out
# migration at every orchestrator.* point plus the router.* lazy
# points, recover just that shard, and require the reassembled router
# to converge to the uninterrupted reference — both WAL modes.
echo "== shard kill matrix"
cargo test -q -p morph-sim --test shard_matrix
echo "== shard kill matrix, group-commit WAL"
MORPH_WAL_MODE=group cargo test -q -p morph-sim --test shard_matrix

echo "CI OK"
