//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `Strategy` with `prop_map`, `Just`, `any`, ranges,
//! tuples, string patterns, `prop::collection::vec`, `prop_oneof!`,
//! `proptest!`, `prop_assert!`/`prop_assert_eq!` and `ProptestConfig`
//! — over a deterministic per-test RNG. Failing cases are reported
//! with their case number and seed; there is no shrinking, so failures
//! reproduce by rerunning the test (generation is deterministic).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::Range;
use std::rc::Rc;

// ------------------------------------------------------------- runner

pub mod test_runner {
    use super::*;

    /// Deterministic RNG handed to strategies by the `proptest!` macro.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeded from the test name so distinct tests see distinct
        /// streams, but every run of one test sees the same stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        pub fn gen_range_usize(&mut self, r: Range<usize>) -> usize {
            self.inner.gen_range(r)
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }
    }
}

use test_runner::TestRng;

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion, carried out of the generated test body
/// by `prop_assert!`/`prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

// ----------------------------------------------------------- strategy

/// A generator of test inputs; mirrors `proptest::strategy::Strategy`
/// minus value trees and shrinking.
pub trait Strategy {
    type Value: fmt::Debug;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.gen_value(rng)),
        }
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.gen_value(rng))
    }
}

/// Type-erased strategy, the element type of `prop_oneof!` unions.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice among alternatives; the `prop_oneof!` backing type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range_usize(0..self.options.len());
        self.options[i].gen_value(rng)
    }
}

// Integer/float ranges are strategies, as in proptest.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// `any::<T>()` — arbitrary values of a primitive type, biased toward
/// boundary values as real proptest is.
pub trait Arbitrary: Sized + fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // ~1 in 8 draws lands on an edge value.
                if rng.gen_range_usize(0..8) == 0 {
                    const EDGES: [$t; 5] = [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX - 1];
                    EDGES[rng.gen_range_usize(0..EDGES.len())]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for an [`Arbitrary`] type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// String patterns: `".{m,n}"`-style regexes are strategies. Only the
// "any char, bounded repetition" shape is recognized; anything else is
// generated as a short printable-ASCII string.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repetition(self).unwrap_or((0, 8));
        let len = rng.gen_range_usize(min..max + 1);
        (0..len)
            .map(|_| {
                // Mostly printable ASCII, occasionally a multibyte char
                // so UTF-8 handling is exercised.
                if rng.gen_range_usize(0..16) == 0 {
                    'λ'
                } else {
                    (rng.gen_range_usize(32..127) as u8) as char
                }
            })
            .collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// --------------------------------------------------------- collection

pub mod collection {
    use super::*;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range_usize(self.size.clone());
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

// -------------------------------------------------------------- macros

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3..20i64, y in 0..5usize) {
            prop_assert!((3..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(0i64),
            (1..10i64).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (v % 2 == 0 && (2..20).contains(&v)));
        }

        #[test]
        fn vec_and_string(items in prop::collection::vec(any::<u8>(), 0..6), s in ".{0,12}") {
            prop_assert!(items.len() < 6);
            prop_assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0..100i64, 0..10);
        let mut r1 = TestRng::deterministic("x");
        let mut r2 = TestRng::deterministic("x");
        assert_eq!(s.gen_value(&mut r1), s.gen_value(&mut r2));
    }
}
