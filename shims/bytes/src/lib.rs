//! Offline stand-in for the `bytes` crate.
//!
//! Implements the little-endian `Buf`/`BufMut` accessors and the
//! `Bytes`/`BytesMut` buffer types the WAL codec uses, backed by plain
//! `Vec<u8>`. No refcounted zero-copy slicing — callers in this
//! workspace never rely on it.

use std::ops::{Deref, DerefMut};

/// Read-side accessor trait; mirrors `bytes::Buf`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side accessor trait; mirrors `bytes::BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer; mirrors `bytes::Bytes` minus zero-copy
/// sharing.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

/// Growable byte buffer; mirrors `bytes::BytesMut`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 1);
        b.put_i64_le(-42);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut s: &[u8] = &frozen;
        assert_eq!(s.get_u8(), 7);
        assert_eq!(s.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(s.get_u64_le(), u64::MAX - 1);
        assert_eq!(s.get_i64_le(), -42);
        assert_eq!(s, b"xyz");
        assert_eq!(s.remaining(), 3);
    }
}
