//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmarking surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, `black_box` — with a real warmup + sampled-median
//! measurement loop. No plotting, no statistical regression analysis;
//! results are printed as `ns/iter` (plus derived throughput) and are
//! retrievable programmatically via [`Criterion::measurements`] so
//! benches can persist their own result files.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! benchmark runs exactly once as a smoke test.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; mirrors `criterion::BatchSize`.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 16,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Work-per-iteration annotation; mirrors `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// One finished benchmark measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Elements (or bytes) per second implied by the declared
    /// throughput, if any.
    pub fn per_second(&self) -> Option<f64> {
        let units = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        if self.ns_per_iter == 0.0 {
            return None;
        }
        Some(units as f64 * 1e9 / self.ns_per_iter)
    }
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    quick: bool,
}

/// Benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    config: Config,
    filter: Option<String>,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--test");
        // First free arg (not a flag or a flag's value) filters by name.
        let mut filter = None;
        let mut skip_value = false;
        for a in &args {
            if skip_value {
                skip_value = false;
                continue;
            }
            if a == "--bench" || a == "--test" {
                continue;
            }
            if a.starts_with("--") {
                skip_value = !a.contains('=');
                continue;
            }
            filter = Some(a.clone());
            break;
        }
        Criterion {
            config: Config {
                sample_size: 20,
                measurement_time: Duration::from_secs(1),
                warm_up_time: Duration::from_millis(300),
                quick,
            },
            filter,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into(), None, f);
        self
    }

    /// All measurements recorded so far (shim extension, used by
    /// benches that persist JSON result files).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            config: self.config,
            ns_per_iter: 0.0,
            iterations: 0,
        };
        f(&mut b);
        let m = Measurement {
            id,
            ns_per_iter: b.ns_per_iter,
            iterations: b.iterations,
            throughput,
        };
        if self.config.quick {
            println!("{}: ok (smoke test)", m.id);
        } else {
            let thrpt = m
                .per_second()
                .map(|r| format!("  thrpt: {}/s", human(r)))
                .unwrap_or_default();
            println!(
                "{:<48} time: {}/iter{}",
                m.id,
                human_ns(m.ns_per_iter),
                thrpt
            );
        }
        self.measurements.push(m);
    }
}

/// Named group of related benchmarks; mirrors
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.config.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(id, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing loop handle; mirrors `criterion::Bencher`.
pub struct Bencher {
    config: Config,
    ns_per_iter: f64,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.config.quick {
            black_box(routine());
            self.iterations = 1;
            return;
        }
        // Warmup, which doubles as the per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut chunk: u64 = 1;
        while warm_start.elapsed() < self.config.warm_up_time {
            for _ in 0..chunk {
                black_box(routine());
            }
            warm_iters += chunk;
            chunk = chunk.saturating_mul(2).min(1 << 20);
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(0.5);

        let samples = self.config.sample_size;
        let sample_ns = self.config.measurement_time.as_nanos() as f64 / samples as f64;
        let iters_per_sample = ((sample_ns / est_ns) as u64).max(1);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            self.iterations += iters_per_sample;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = per_iter[per_iter.len() / 2];
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.config.quick {
            black_box(routine(setup()));
            self.iterations = 1;
            return;
        }
        let batch = size.batch_len();
        // Warmup + estimate (setup excluded from the estimate's timing
        // by measuring only the routine portion).
        let mut est_ns = 0.5f64;
        let warm_start = Instant::now();
        let mut measured: u64 = 0;
        let mut routine_ns: u128 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            routine_ns += t0.elapsed().as_nanos();
            measured += batch as u64;
        }
        if measured > 0 {
            est_ns = (routine_ns as f64 / measured as f64).max(0.5);
        }

        let samples = self.config.sample_size;
        let sample_ns = self.config.measurement_time.as_nanos() as f64 / samples as f64;
        let iters_per_sample = ((sample_ns / est_ns) as u64).max(1);
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut ns: u128 = 0;
            let mut done: u64 = 0;
            while done < iters_per_sample {
                let n = batch.min((iters_per_sample - done) as usize);
                let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
                let t0 = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                ns += t0.elapsed().as_nanos();
                done += n as u64;
            }
            per_iter.push(ns as f64 / iters_per_sample as f64);
            self.iterations += iters_per_sample;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = per_iter[per_iter.len() / 2];
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn human(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            });
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements().iter().all(|m| m.iterations > 0));
    }
}
