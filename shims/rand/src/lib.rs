//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides a deterministic, seedable xoshiro256** generator behind the
//! `rand::rngs::StdRng` path plus the `Rng`/`SeedableRng` trait surface
//! the workspace uses: `gen_range` over integer/float ranges,
//! `gen_bool`, and `gen` for primitives. Statistical quality is more
//! than adequate for tests and benchmark workloads; this is not a
//! cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction from seeds; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a range (internal helper trait).
pub trait SampleUniform: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the plain fallback is irrelevant for the
                // span sizes tests use, but this keeps it exact anyway.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                let off = (m >> 64) as u64;
                ((low as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_int!(i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
                 u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng.next_u64()) as f32
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`]; mirrors `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                if low == high {
                    return low;
                }
                // Sample [low, high] as [low, high+1) when it fits, else
                // draw raw 64-bit values until one lands in range (only
                // reachable for the full-width inclusive range).
                match high.checked_add(1) {
                    Some(h) => <$t>::sample_range(rng, low, h),
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_inclusive_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Primitive types producible by [`Rng::gen`]; mirrors the `Standard`
/// distribution.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// The user-facing sampling surface; mirrors `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }

    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator behind the `StdRng` name.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0..6usize);
            assert!(u < 6);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1500..2500).contains(&hits), "p=0.2 gave {hits}/10000");
    }
}
