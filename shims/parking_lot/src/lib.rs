//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `parking_lot` API it uses
//! as thin, non-poisoning wrappers over `std::sync`. Lock poisoning is
//! neutralized by recovering the inner guard — matching `parking_lot`
//! semantics, where a panic while holding a lock does not poison it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

// ---------------------------------------------------------------- Mutex

/// Non-poisoning mutex with `parking_lot`'s `lock() -> Guard` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // The guard is always Some between construction and drop;
            // the Option exists so Condvar::wait_until can move the std
            // guard out and back in around the blocking call.
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// -------------------------------------------------------------- Condvar

/// Result of a timed wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Wait until notified or `deadline` passes, whichever is first.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// --------------------------------------------------------------- RwLock

/// Non-poisoning reader-writer lock with `parking_lot`'s API shape.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a, *b);
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
