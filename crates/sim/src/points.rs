//! Crash-point registry, shared with morph-lint.
//!
//! The checked-in manifest `crates/lint/manifest/crash_points.txt` is
//! the single source of truth for every `crash_point("…")` in the
//! engine: lint pass 3 cross-checks it against the code in both
//! directions, and this module derives the sim's injection points and
//! kill matrix from it — so a newly added crash point fails lint until
//! registered, and once registered is automatically part of the
//! matrix. A registered point that never fires in any census fails the
//! aggregate coverage test in `tests/crash_matrix.rs`.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use morph_core::SyncStrategy;
use morph_lint::manifest::{CrashManifest, CrashPoint, PointKind, PointStrategy};

const MANIFEST: &str = include_str!("../../lint/manifest/crash_points.txt");

/// The parsed registry. Panics only on a corrupted checked-in
/// manifest, which lint (and every sim test) catches immediately.
pub fn registry() -> &'static CrashManifest {
    static REG: OnceLock<CrashManifest> = OnceLock::new();
    REG.get_or_init(|| {
        // morph-lint: allow(panic, checked-in manifest; parse failures are a repo defect caught by any test run)
        CrashManifest::parse(MANIFEST).expect("crash_points.txt must parse")
    })
}

/// Crash points where the hook may inject workload transactions. Only
/// points where no table latches are held: the injection runs complete
/// transactions on the *same thread*, so injecting under a sync latch
/// would self-deadlock (and real user activity is locked out there
/// anyway — that is what the latch is for).
pub fn is_injection_point(name: &str) -> bool {
    registry().get(name).is_some_and(|p| p.inject)
}

/// Can `point` fire under `strategy`?
pub fn strategy_matches(point: &CrashPoint, strategy: SyncStrategy) -> bool {
    match point.strategy {
        PointStrategy::Any => true,
        PointStrategy::Bc => matches!(strategy, SyncStrategy::BlockingCommit),
        PointStrategy::Nba => matches!(strategy, SyncStrategy::NonBlockingAbort),
        PointStrategy::Nbc => matches!(strategy, SyncStrategy::NonBlockingCommit),
    }
}

/// Registered points the kill matrix must cover for `strategy`:
/// everything applicable and not `optional`, in manifest order.
pub fn matrix_points(strategy: SyncStrategy) -> Vec<&'static CrashPoint> {
    registry()
        .points
        .iter()
        .filter(|p| !p.optional && strategy_matches(p, strategy))
        .collect()
}

/// Occurrences to kill at, given a census count: loops get their
/// first, middle, and last firing; bounded steps their last (the one
/// belonging to the final transformation attempt).
pub fn kill_occurrences(point: &CrashPoint, census_count: usize) -> Vec<usize> {
    match point.kind {
        PointKind::Loop => {
            let mut occs = vec![1, census_count / 2 + 1, census_count];
            occs.dedup();
            occs
        }
        PointKind::Step => vec![census_count],
    }
}

/// The kill matrix for one `(strategy, census)` cell: every matrix
/// point that fired in the census, at its [`kill_occurrences`].
/// Points that did not fire in this cell are skipped here — the
/// aggregate coverage test demands that each fires in *some* cell, so
/// silence across the whole matrix is still an error.
pub fn kill_matrix(
    strategy: SyncStrategy,
    point_counts: &BTreeMap<String, usize>,
) -> Vec<(String, usize)> {
    let mut kills = Vec::new();
    for point in matrix_points(strategy) {
        let Some(&n) = point_counts.get(&point.name) else {
            continue;
        };
        for occ in kill_occurrences(point, n) {
            kills.push((point.name.clone(), occ));
        }
    }
    kills
}

/// Matrix points for `strategy` that are absent from `point_counts` —
/// the aggregate coverage check (empty = full coverage).
pub fn uncovered(
    strategy: SyncStrategy,
    point_counts: &BTreeMap<String, usize>,
) -> Vec<&'static str> {
    matrix_points(strategy)
        .into_iter()
        .filter(|p| !point_counts.contains_key(&p.name))
        .map(|p| p.name.as_str())
        .collect()
}
