//! Seed sweeps and failure minimization.
//!
//! A sweep explores one `(scenario, strategy, seed)` cell: first a
//! **census** run (no kill) counts how often every crash point fires
//! under that seed, then a number of kill runs are drawn from the
//! census — each arming one `(point, occurrence)` pair and demanding
//! `KilledAndRecovered`. Because the armed run replays the census run
//! deterministically up to the kill, any occurrence the census counted
//! is guaranteed to fire.
//!
//! On failure, [`minimize`] shrinks the reproduction before reporting:
//! it walks the occurrence downward (earlier kills of the same point)
//! and keeps the earliest still-failing one, then re-runs it to
//! confirm determinism. The rendered report carries everything needed
//! to replay: seed, crash point, occurrence, and the full event trace.

use crate::harness::{run_sim, SimConfig, SimFailure, Verdict};
use crate::scenario::Scenario;
use morph_core::SyncStrategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one sweep cell.
#[derive(Debug, Default)]
pub struct SweepSummary {
    /// Simulated universes run (census + kills).
    pub runs: usize,
    /// Kills that fired and passed the full recovery oracle.
    pub kills_survived: usize,
}

/// Sweep one `(scenario, strategy, seed)` cell with `kills` armed
/// runs drawn deterministically from the census. Returns the summary
/// or the (minimized) first failure.
pub fn sweep_cell(
    scenario: Scenario,
    strategy: SyncStrategy,
    seed: u64,
    kills: usize,
) -> Result<SweepSummary, SimFailure> {
    let mut summary = SweepSummary::default();
    let census_cfg = SimConfig::new(seed, scenario, strategy);
    let census = match run_sim(&census_cfg) {
        Ok(r) => r,
        Err(f) => return Err(minimize(f)),
    };
    summary.runs += 1;

    let points: Vec<(String, usize)> = census
        .point_counts
        .iter()
        .map(|(p, c)| (p.clone(), *c))
        .collect();
    if points.is_empty() {
        return Ok(summary);
    }

    // Kill choices come from their own RNG so adding crash points to
    // the engine shifts which kills a seed picks, but never the
    // census it picks them from.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc2b2_ae3d_27d4_eb4f);
    for _ in 0..kills {
        let (point, count) = &points[rng.gen_range(0..points.len())];
        let occurrence = rng.gen_range(1..=*count);
        let cfg = SimConfig::new(seed, scenario, strategy).kill_at(point, occurrence);
        match run_sim(&cfg) {
            Ok(report) => {
                summary.runs += 1;
                if report.verdict == Verdict::KilledAndRecovered {
                    summary.kills_survived += 1;
                } else {
                    // The census counted this occurrence, so the armed
                    // run must reach it: anything else is harness
                    // nondeterminism — report it as a failure.
                    return Err(minimize(SimFailure {
                        seed,
                        scenario: scenario.tag(),
                        strategy,
                        kill: cfg.kill.clone(),
                        detail: format!(
                            "armed kill did not fire (verdict {:?}) though census counted {} occurrences",
                            report.verdict, count
                        ),
                        trace: report.trace,
                    }));
                }
            }
            Err(f) => return Err(minimize(f)),
        }
    }
    Ok(summary)
}

/// Shrink a failing reproduction: earlier occurrences of the same kill
/// point are simpler universes (less history before the crash), so
/// walk down from the failing occurrence and keep the earliest one
/// that still fails. Always re-runs the final config to confirm the
/// failure is deterministic; the result's trace is from the confirming
/// run.
pub fn minimize(failure: SimFailure) -> SimFailure {
    let Some(kill) = failure.kill.clone() else {
        return failure; // census failures have nothing to shrink
    };
    let scenario = match Scenario::ALL.iter().find(|s| s.tag() == failure.scenario) {
        Some(s) => *s,
        None => return failure,
    };

    let (seed, strategy) = (failure.seed, failure.strategy);
    let run_occ = |occ: usize| -> Option<SimFailure> {
        let cfg = SimConfig::new(seed, scenario, strategy).kill_at(&kill.point, occ);
        run_sim(&cfg).err()
    };

    let mut best = failure;
    for occ in 1..kill.occurrence {
        if let Some(f) = run_occ(occ) {
            best = f;
            break;
        }
    }
    // Confirm determinism of whatever we settled on.
    if let Some(k) = best.kill.clone() {
        if let Some(confirmed) = run_occ(k.occurrence) {
            let mut confirmed = confirmed;
            confirmed.detail = format!("{} [confirmed on replay]", confirmed.detail);
            return confirmed;
        }
        best.detail = format!("{} [WARNING: did not reproduce on replay]", best.detail);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_sim, Kill, SimConfig, SimFailure, Verdict};

    #[test]
    fn unreachable_kill_reports_not_reached() {
        let cfg = SimConfig::new(5, Scenario::Foj, SyncStrategy::NonBlockingAbort)
            .kill_at("propagate.batch", 10_000);
        let r = run_sim(&cfg).expect("clean completion");
        assert_eq!(r.verdict, Verdict::KillNotReached);
    }

    #[test]
    fn minimize_flags_non_reproducing_failures() {
        // A synthetic failure whose config actually passes: the
        // minimizer must notice the non-reproduction instead of
        // presenting a stale report as replayable.
        let f = SimFailure {
            seed: 5,
            scenario: "foj",
            strategy: SyncStrategy::NonBlockingAbort,
            kill: Some(Kill::new("propagate.batch", 2)),
            detail: "synthetic".into(),
            trace: Vec::new(),
        };
        assert!(minimize(f).detail.contains("did not reproduce"));
    }

    #[test]
    fn minimize_passes_census_failures_through() {
        let f = SimFailure {
            seed: 1,
            scenario: "foj",
            strategy: SyncStrategy::NonBlockingAbort,
            kill: None,
            detail: "census".into(),
            trace: Vec::new(),
        };
        assert_eq!(minimize(f).detail, "census");
    }
}
