//! The deterministic crash-and-recovery harness.
//!
//! One [`run_sim`] call is one simulated universe, fully determined by
//! its [`SimConfig`]:
//!
//! 1. Build a [`Database`] whose WAL backend is a seeded
//!    [`FaultBackend`] (volatile buffer + durable prefix).
//! 2. Create the scenario's source tables, seed them, and point a
//!    deterministic [`StepWorkload`] at them.
//! 3. Install a [`CrashHook`]: at every instrumented crash point it
//!    (a) kills the run with [`DbError::SimulatedCrash`] if the armed
//!    kill matches this point's n-th occurrence, and (b) otherwise
//!    injects a few complete workload transactions — so user activity
//!    is interleaved with fuzzy copy, propagation batches, and every
//!    step of all three synchronization strategies.
//! 4. Run the transformation synchronously.
//! 5. If the kill fired: tear the WAL at a seeded byte offset
//!    ([`FaultHandle::crash`]), decode the durable prefix, rebuild a
//!    fresh database, replay the log with `recover_into`, and check
//!    the **Theorem 1 oracle**:
//!      * recovered sources ≡ the workload's committed-state model
//!        (no lost updates — valid because every workload step is a
//!        complete flushed transaction, so only transformation
//!        bookkeeping can sit in the torn tail);
//!      * re-running the same transformation from preparation on the
//!        recovered database succeeds (the §3.5 recovery story:
//!        transformations are not themselves redo-logged, they are
//!        simply restarted);
//!      * the transformed tables then equal those produced by an
//!        uninterrupted run over the same source state — comparing
//!        values, split counters, C/U flags, and FOJ presence bits,
//!        key by key.
//!
//! Everything — workload choices, injection counts, tear offset — is
//! drawn from RNGs seeded from `SimConfig::seed`, and the run is
//! single-threaded, so the same config replays the same trace byte for
//! byte. The trace is the debugging artifact: a failure report prints
//! the seed, the kill point, and the full trace.

use crate::scenario::Scenario;
use morph_common::{DbError, DbResult, Key, Schema, TableId, Value};
use morph_core::{ParallelConfig, SyncStrategy, TransformMode};
use morph_engine::{recover_into, CrashHook, Database};
use morph_storage::row::Presence;
use morph_storage::ConsistencyFlag;
use morph_txn::LockManagerConfig;
use morph_wal::{FaultBackend, FaultConfig, FaultHandle, GroupCommitConfig, LogManager, WalMode};
use morph_workload::{StepStats, StepWorkload};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Kill the run at the `occurrence`-th time (1-based) execution passes
/// the named crash point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kill {
    pub point: String,
    pub occurrence: usize,
}

impl Kill {
    pub fn new(point: &str, occurrence: usize) -> Kill {
        Kill {
            point: point.to_owned(),
            occurrence,
        }
    }
}

/// Full description of one simulated universe.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub seed: u64,
    pub scenario: Scenario,
    pub strategy: SyncStrategy,
    /// `None` = let the transformation complete (census run).
    pub kill: Option<Kill>,
    /// Maximum workload transactions the hook injects across the whole
    /// run. Keeps propagation convergent: once the budget is spent the
    /// workload quiesces and the backlog drains.
    pub inject_budget: usize,
    /// WAL append/flush discipline for the database under test.
    /// Defaults to `MORPH_WAL_MODE` with a [`WalMode::Serial`]
    /// fallback — serial is the determinism pin; CI forces
    /// `MORPH_WAL_MODE=group` to prove the matrix holds in both.
    pub wal_mode: WalMode,
    /// Parallelism of the transformation under test. Defaults to the
    /// serial pipeline (the determinism pin). The pool kill matrix
    /// runs `apply_shards > 1`; the reference run the oracle compares
    /// against is *always* serial, so every parallel sim is also a
    /// parallel ≡ serial equivalence check.
    pub parallel: ParallelConfig,
    /// Initial-population mode of the transformation under test.
    /// Defaults to the fuzzy copy + log propagation pipeline (the
    /// determinism pin: with the default, MVCC stays disabled and the
    /// trace is byte-identical to pre-MVCC runs). The reference run
    /// the oracle compares against *always* uses the default, so every
    /// [`TransformMode::Snapshot`] sim is also a snapshot ≡
    /// log-propagation equivalence check.
    pub mode: TransformMode,
}

impl SimConfig {
    pub fn new(seed: u64, scenario: Scenario, strategy: SyncStrategy) -> SimConfig {
        SimConfig {
            seed,
            scenario,
            strategy,
            kill: None,
            inject_budget: 40,
            wal_mode: WalMode::from_env(WalMode::Serial),
            parallel: ParallelConfig::serial(),
            mode: TransformMode::LogPropagation,
        }
    }

    #[must_use]
    pub fn kill_at(mut self, point: &str, occurrence: usize) -> SimConfig {
        self.kill = Some(Kill::new(point, occurrence));
        self
    }

    /// Run the transformation under test with the given parallelism
    /// (the oracle's reference run stays serial).
    #[must_use]
    pub fn parallel(mut self, parallel: ParallelConfig) -> SimConfig {
        self.parallel = parallel;
        self
    }

    /// Force a WAL mode regardless of `MORPH_WAL_MODE`.
    #[must_use]
    pub fn wal_mode(mut self, mode: WalMode) -> SimConfig {
        self.wal_mode = mode;
        self
    }

    /// Populate via a clean MVCC snapshot scan instead of the fuzzy
    /// copy (the reference run stays on the default pipeline).
    #[must_use]
    pub fn transform_mode(mut self, mode: TransformMode) -> SimConfig {
        self.mode = mode;
        self
    }
}

/// How the simulated universe ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No kill fired; the transformation completed and the live
    /// transformed tables passed the oracle.
    CompletedClean,
    /// The armed kill fired; recovery, re-transformation, and the
    /// Theorem 1 oracle all passed.
    KilledAndRecovered,
    /// A kill was armed but execution never reached that occurrence
    /// before the transformation completed (the clean-run oracle was
    /// still checked).
    KillNotReached,
}

/// Successful simulation outcome.
#[derive(Debug)]
pub struct SimReport {
    pub verdict: Verdict,
    /// Deterministic event trace (crash points, injections, kill,
    /// recovery milestones).
    pub trace: Vec<String>,
    /// How many times each crash point fired (census for kill
    /// enumeration).
    pub point_counts: BTreeMap<String, usize>,
    /// Log records that survived the simulated crash (0 for clean
    /// runs).
    pub durable_records: usize,
    pub workload: StepStats,
}

/// An oracle violation (or harness-level inconsistency): the bug
/// report. `render()` prints everything needed to replay it.
#[derive(Debug, Clone)]
pub struct SimFailure {
    pub seed: u64,
    pub scenario: &'static str,
    pub strategy: SyncStrategy,
    pub kill: Option<Kill>,
    pub detail: String,
    pub trace: Vec<String>,
}

impl SimFailure {
    /// Human-readable failure report: seed, crash point, full trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("=== simulation failure ===\n");
        out.push_str(&format!(
            "seed={} scenario={} strategy={:?}\n",
            self.seed, self.scenario, self.strategy
        ));
        match &self.kill {
            Some(k) => out.push_str(&format!(
                "kill point: {} (occurrence {})\n",
                k.point, k.occurrence
            )),
            None => out.push_str("kill point: none (census run)\n"),
        }
        out.push_str(&format!("detail: {}\n", self.detail));
        out.push_str("trace:\n");
        for line in &self.trace {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

struct HookInner {
    rng: StdRng,
    workload: StepWorkload,
    counts: BTreeMap<String, usize>,
    trace: Vec<String>,
    kill: Option<Kill>,
    inject_budget: usize,
}

/// The [`CrashHook`] installed on the database under test.
struct SimHook {
    inner: Mutex<HookInner>,
}

impl CrashHook for SimHook {
    fn at(&self, db: &Database, point: &str) -> DbResult<()> {
        // Re-entrancy guard: transactions the hook itself injects pass
        // through the engine's commit/abort crash points on this same
        // thread while the hook state is locked. Injected activity is
        // not part of the census (the sim is single-threaded, so
        // try_lock fails exactly when we re-entered ourselves), which
        // also keeps traces identical to pre-group-commit runs.
        let Some(mut g) = self.inner.try_lock() else {
            return Ok(());
        };
        let n = {
            let c = g.counts.entry(point.to_owned()).or_insert(0);
            *c += 1;
            *c
        };
        g.trace.push(format!("point:{point}#{n}"));
        if let Some(kill) = &g.kill {
            if kill.point == point && kill.occurrence == n {
                g.trace.push(format!("KILL:{point}#{n}"));
                return Err(DbError::SimulatedCrash(format!("{point}#{n}")));
            }
        }
        if g.inject_budget > 0 && crate::points::is_injection_point(point) {
            let steps = g.rng.gen_range(0..=2usize).min(g.inject_budget);
            for _ in 0..steps {
                g.inject_budget -= 1;
                let outcome = g.workload.step(db);
                g.trace.push(format!("inject:{outcome:?}"));
            }
        }
        Ok(())
    }
}

/// A committed row as the oracle compares it: values plus every piece
/// of transformation metadata Theorem 1 is entitled to (state
/// identifiers — LSNs — are excluded: two equivalent histories reach
/// the same state through different log positions).
type OracleRow = (Vec<Value>, u32, ConsistencyFlag, Presence);

fn oracle_snapshot(db: &Database, table: &str) -> DbResult<BTreeMap<Key, OracleRow>> {
    let t = db.catalog().get(table)?;
    Ok(t.snapshot()
        .into_iter()
        .map(|(k, r)| (k, (r.values, r.counter, r.flag, r.presence)))
        .collect())
}

fn values_snapshot(db: &Database, table: &str) -> DbResult<BTreeMap<Key, Vec<Value>>> {
    let t = db.catalog().get(table)?;
    Ok(t.snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values))
        .collect())
}

/// Render the first difference between two keyed maps, for failure
/// reports.
fn first_diff<V: PartialEq + std::fmt::Debug>(
    label: &str,
    got: &BTreeMap<Key, V>,
    want: &BTreeMap<Key, V>,
) -> Option<String> {
    for (k, v) in want {
        match got.get(k) {
            None => return Some(format!("{label}: missing key {k:?} (want {v:?})")),
            Some(g) if g != v => return Some(format!("{label}: key {k:?}: got {g:?}, want {v:?}")),
            _ => {}
        }
    }
    for k in got.keys() {
        if !want.contains_key(k) {
            return Some(format!("{label}: spurious key {k:?}"));
        }
    }
    None
}

struct SimRun {
    db: Arc<Database>,
    fault: FaultHandle,
    hook: Arc<SimHook>,
    /// `(id, name, schema)` of every source table, creation order.
    sources: Vec<(TableId, String, Schema)>,
}

/// Build the faulty universe: fault-backed WAL, database, sources,
/// seed rows, workload, hook.
fn build(cfg: &SimConfig) -> Result<SimRun, SimFailure> {
    let fail = |detail: String| SimFailure {
        seed: cfg.seed,
        scenario: cfg.scenario.tag(),
        strategy: cfg.strategy,
        kill: cfg.kill.clone(),
        detail,
        trace: Vec::new(),
    };

    let (backend, fault) = FaultBackend::new(FaultConfig::crash_only(cfg.seed));
    let log = Arc::new(LogManager::with_backend_mode(
        Box::new(backend),
        cfg.wal_mode,
        GroupCommitConfig::default(),
    ));
    let db = Arc::new(Database::with_log(log, LockManagerConfig::default()));

    let mut sources = Vec::new();
    for (name, schema) in cfg.scenario.source_schemas() {
        let t = db
            .create_table(&name, schema.clone())
            .map_err(|e| fail(format!("create_table({name}): {e}")))?;
        sources.push((t.id(), name, schema));
    }
    cfg.scenario
        .seed_rows(&db)
        .map_err(|e| fail(format!("seed rows: {e}")))?;

    let mut workload = StepWorkload::new(cfg.seed ^ 0x9e37_79b9_7f4a_7c15, cfg.scenario.profiles());
    for (_, name, _) in &sources {
        let rows = values_snapshot(&db, name).map_err(|e| fail(format!("snapshot: {e}")))?;
        workload.absorb_existing(name, rows);
    }

    let hook = Arc::new(SimHook {
        inner: Mutex::new(HookInner {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x5851_f42d_4c95_7f2d),
            workload,
            counts: BTreeMap::new(),
            trace: Vec::new(),
            kill: cfg.kill.clone(),
            inject_budget: cfg.inject_budget,
        }),
    });
    db.set_crash_hook(hook.clone());

    Ok(SimRun {
        db,
        fault,
        hook,
        sources,
    })
}

/// Replay the scenario on a pristine database seeded with exactly
/// `model` as source contents, with no hook and no faults, and return
/// the oracle snapshots of the transformed tables.
fn reference_targets(
    cfg: &SimConfig,
    sources: &[(TableId, String, Schema)],
    model: &BTreeMap<String, BTreeMap<Key, Vec<Value>>>,
) -> DbResult<BTreeMap<String, BTreeMap<Key, OracleRow>>> {
    let db = Arc::new(Database::new());
    for (_, name, schema) in sources {
        db.create_table(name, schema.clone())?;
    }
    for (_, name, _) in sources {
        let rows = &model[name];
        if rows.is_empty() {
            continue;
        }
        let txn = db.begin();
        for values in rows.values() {
            db.insert(txn, name, values.clone())?;
        }
        db.commit(txn)?;
    }
    cfg.scenario.run(&db, cfg.strategy)?;
    let mut out = BTreeMap::new();
    for target in cfg.scenario.target_names() {
        out.insert(target.to_owned(), oracle_snapshot(&db, target)?);
    }
    Ok(out)
}

/// Check transformed tables on `db` against the clean reference run.
fn check_targets(
    cfg: &SimConfig,
    db: &Database,
    sources: &[(TableId, String, Schema)],
    model: &BTreeMap<String, BTreeMap<Key, Vec<Value>>>,
    label: &str,
) -> Result<(), String> {
    let reference =
        reference_targets(cfg, sources, model).map_err(|e| format!("reference run failed: {e}"))?;
    for target in cfg.scenario.target_names() {
        let got =
            oracle_snapshot(db, target).map_err(|e| format!("{label}: snapshot({target}): {e}"))?;
        if let Some(diff) = first_diff(&format!("{label}:{target}"), &got, &reference[target]) {
            return Err(diff);
        }
    }
    Ok(())
}

/// Run one simulated universe. See module docs for the exact pipeline.
pub fn run_sim(cfg: &SimConfig) -> Result<SimReport, SimFailure> {
    let run = build(cfg)?;
    let result = cfg
        .scenario
        .run_with_mode(&run.db, cfg.strategy, cfg.parallel, cfg.mode)
        .and_then(|report| {
            // A snapshot-mode universe ends with a GC sweep so that
            // `mvcc.gc_reclaim` is part of the census (and killable):
            // the transformation released its snapshot, so the sweep
            // may reclaim every archived version up to the durable
            // watermark.
            if cfg.mode == TransformMode::Snapshot {
                run.db.mvcc_gc()?;
            }
            Ok(report)
        });

    // Pull the hook's state out; the transformation is done with it.
    run.db.clear_crash_hook();
    let (mut trace, point_counts, model, stats) = {
        let g = run.hook.inner.lock();
        let model: BTreeMap<String, BTreeMap<Key, Vec<Value>>> = run
            .sources
            .iter()
            .map(|(_, name, _)| {
                (
                    name.clone(),
                    g.workload.model(name).cloned().unwrap_or_default(),
                )
            })
            .collect();
        (g.trace.clone(), g.counts.clone(), model, g.workload.stats)
    };

    let fail = |detail: String, trace: &[String]| SimFailure {
        seed: cfg.seed,
        scenario: cfg.scenario.tag(),
        strategy: cfg.strategy,
        kill: cfg.kill.clone(),
        detail,
        trace: trace.to_vec(),
    };

    match result {
        Ok(_report) => {
            // Clean completion (kill absent or never reached): the live
            // transformed tables must already satisfy Theorem 1.
            check_targets(cfg, &run.db, &run.sources, &model, "live")
                .map_err(|d| fail(d, &trace))?;
            let verdict = if cfg.kill.is_some() {
                Verdict::KillNotReached
            } else {
                Verdict::CompletedClean
            };
            Ok(SimReport {
                verdict,
                trace,
                point_counts,
                durable_records: 0,
                workload: stats,
            })
        }
        Err(DbError::SimulatedCrash(_)) => {
            // ---- the crash ----
            let durable_bytes = run.fault.crash();
            let durable = run
                .fault
                .durable_records()
                .map_err(|e| fail(format!("torn durable log failed to decode: {e}"), &trace))?;
            trace.push(format!(
                "crash: {} records ({durable_bytes} bytes) durable",
                durable.len()
            ));

            // ---- restart: fresh database, same table ids, replay ----
            let log2 = Arc::new(LogManager::with_records(durable.clone()));
            let db2 = Arc::new(Database::with_log(log2, LockManagerConfig::default()));
            for (id, name, schema) in &run.sources {
                db2.catalog()
                    .create_table_with_id(*id, name, schema.clone())
                    .map_err(|e| fail(format!("recreate {name}: {e}"), &trace))?;
            }
            let report = recover_into(&db2, &durable)
                .map_err(|e| fail(format!("recovery failed: {e}"), &trace))?;
            trace.push(format!(
                "recovered: redone={} losers={} clrs={}",
                report.redone,
                report.losers.len(),
                report.clrs_written
            ));

            // ---- oracle 1: no lost updates ----
            for (_, name, _) in &run.sources {
                let got = values_snapshot(&db2, name)
                    .map_err(|e| fail(format!("recovered snapshot({name}): {e}"), &trace))?;
                if let Some(diff) = first_diff(&format!("recovered:{name}"), &got, &model[name]) {
                    return Err(fail(format!("lost updates — {diff}"), &trace));
                }
            }

            // ---- oracle 2: restart the transformation from prep ----
            cfg.scenario
                .run_with_mode(&db2, cfg.strategy, cfg.parallel, cfg.mode)
                .map_err(|e| fail(format!("re-transformation failed: {e}"), &trace))?;
            trace.push("re-transformation: ok".to_owned());

            // ---- oracle 3: Theorem 1 equivalence ----
            check_targets(cfg, &db2, &run.sources, &model, "recovered")
                .map_err(|d| fail(d, &trace))?;

            Ok(SimReport {
                verdict: Verdict::KilledAndRecovered,
                trace,
                point_counts,
                durable_records: durable.len(),
                workload: stats,
            })
        }
        Err(other) => Err(fail(
            format!("unexpected transformation error: {other}"),
            &trace,
        )),
    }
}
