//! # morph-sim
//!
//! Deterministic crash-and-recovery simulation for the schema-change
//! engine, in the style of FoundationDB's simulation testing: the
//! whole system — WAL, engine, transformation, workload — runs
//! single-threaded inside one process, every nondeterministic choice
//! is drawn from RNGs seeded by a single `u64`, and faults (torn
//! writes, lost unsynced bytes, process death at instrumented crash
//! points) are injected on purpose. A failing universe is replayed
//! exactly from its seed.
//!
//! The property under test is the paper's Theorem 1 discipline: a
//! schema transformation interrupted by a crash at *any* point — mid
//! fuzzy copy, between or inside propagation batches, at every step of
//! all three synchronization strategies — must leave the system in a
//! state from which (a) crash recovery restores exactly the committed
//! user data (transformations never hold up or corrupt user
//! transactions), and (b) simply re-running the transformation from
//! preparation produces tables identical to an uninterrupted run.
//!
//! Entry points:
//! * [`run_sim`] — one simulated universe from a [`SimConfig`];
//! * [`sweep_cell`] — census + seeded kill runs for one
//!   `(scenario, strategy, seed)` cell;
//! * [`minimize`] — shrink and confirm a failing reproduction.

pub mod harness;
pub mod points;
pub mod scenario;
pub mod sweep;

pub use harness::{run_sim, Kill, SimConfig, SimFailure, SimReport, Verdict};
pub use points::{kill_matrix, matrix_points, uncovered};
pub use scenario::{sim_options, Scenario};
pub use sweep::{minimize, sweep_cell, SweepSummary};
