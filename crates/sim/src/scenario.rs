//! Simulation scenarios: one per transformation family.
//!
//! A scenario bundles everything the harness needs to run a
//! transformation under fire and judge the outcome afterwards:
//! source schemas, deterministic setup rows, workload profiles whose
//! generated traffic respects the scenario's integrity constraints
//! (the split's `postal_code → city` functional dependency must hold
//! no matter what the workload does, or `InconsistentSplitData` is the
//! *correct* outcome rather than a bug), the spec to run, and the
//! names of the transformed tables to compare.

use morph_common::{ColumnType, DbResult, Schema, Value};
use morph_core::foj::figure1_schemas;
use morph_core::split::example1_schema;
use morph_core::{
    FojSpec, ParallelConfig, SplitSpec, SyncStrategy, TransformMode, TransformOptions,
    TransformReport, Transformer, UnionSpec,
};
use morph_engine::Database;
use morph_workload::TableProfile;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Which transformation the simulation drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Full outer join R ⟗ S → T over the paper's Figure 1 schemas.
    Foj,
    /// Vertical split of Example 1's customer table (DBMS-guaranteed
    /// functional dependency).
    Split,
    /// Split with §5.3 consistency checking enabled (exercises the
    /// C/U flags and certification rounds).
    SplitCc,
    /// Horizontal merge (union) of two part tables.
    Union,
}

/// Number of distinct join / split attribute values the scenario uses.
/// Small enough that inserts and updates keep colliding on the same
/// groups, which is what stresses the propagation rules.
const GROUPS: u64 = 6;

fn city_for(code: u64) -> String {
    format!("city{code}")
}

impl Scenario {
    /// All scenarios, for sweeps.
    pub const ALL: [Scenario; 4] = [
        Scenario::Foj,
        Scenario::Split,
        Scenario::SplitCc,
        Scenario::Union,
    ];

    /// Crash points the kill matrix covers under `strategy`, in
    /// execution order — enumerated from the checked-in crash-point
    /// registry (`crates/lint/manifest/crash_points.txt`), not a
    /// hardcoded list. A new `crash_point()` call fails lint pass 3
    /// until registered, and once registered it joins this enumeration
    /// (and the matrix coverage test) automatically.
    pub fn kill_points(&self, strategy: SyncStrategy) -> Vec<&'static str> {
        crate::points::matrix_points(strategy)
            .into_iter()
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Short lowercase tag for traces and failure reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Scenario::Foj => "foj",
            Scenario::Split => "split",
            Scenario::SplitCc => "split_cc",
            Scenario::Union => "union",
        }
    }

    /// Source tables as `(name, schema)`, in creation order. Creation
    /// order is part of the deterministic contract: the harness
    /// recreates the tables in the same order after a crash so table
    /// ids line up with the durable log.
    pub fn source_schemas(&self) -> Vec<(String, Schema)> {
        match self {
            Scenario::Foj => {
                let (r, s) = figure1_schemas();
                vec![("R".to_owned(), r), ("S".to_owned(), s)]
            }
            Scenario::Split | Scenario::SplitCc => {
                vec![("C".to_owned(), example1_schema())]
            }
            Scenario::Union => {
                let part = |pk: &str| {
                    Schema::builder()
                        .column(pk, ColumnType::Int)
                        .nullable("v", ColumnType::Str)
                        .primary_key(&[pk])
                        .build()
                        .expect("static schema") // morph-lint: allow(panic, static schema literal; the builder cannot fail on compile-time constants)
                };
                vec![("A".to_owned(), part("id")), ("B".to_owned(), part("id"))]
            }
        }
    }

    /// Transformed tables to compare in the Theorem 1 oracle.
    pub fn target_names(&self) -> Vec<&'static str> {
        match self {
            Scenario::Foj => vec!["T"],
            Scenario::Split | Scenario::SplitCc => vec!["CR", "CS"],
            Scenario::Union => vec!["U"],
        }
    }

    /// Insert the initial committed rows (one transaction per table).
    pub fn seed_rows(&self, db: &Database) -> DbResult<()> {
        match self {
            Scenario::Foj => {
                let txn = db.begin();
                for i in 0..24i64 {
                    db.insert(
                        txn,
                        "R",
                        vec![
                            Value::Int(i),
                            Value::str(format!("b{i}")),
                            Value::str(format!("j{}", i as u64 % GROUPS)),
                        ],
                    )?;
                }
                // Leave one S group (j5) unmatched-from-R-side rare and
                // one extra group (j6) with no R rows at all: the FOJ
                // must NULL-extend both directions.
                for j in 0..=GROUPS {
                    db.insert(
                        txn,
                        "S",
                        vec![Value::str(format!("j{j}")), Value::str(format!("d{j}"))],
                    )?;
                }
                db.commit(txn)
            }
            Scenario::Split | Scenario::SplitCc => {
                let txn = db.begin();
                for i in 0..24i64 {
                    let code = i as u64 % GROUPS;
                    db.insert(
                        txn,
                        "C",
                        vec![
                            Value::Int(i),
                            Value::str(format!("n{i}")),
                            Value::str(format!("p{code}")),
                            Value::str(city_for(code)),
                        ],
                    )?;
                }
                db.commit(txn)
            }
            Scenario::Union => {
                let txn = db.begin();
                for i in 0..12i64 {
                    db.insert(txn, "A", vec![Value::Int(i), Value::str(format!("a{i}"))])?;
                    db.insert(
                        txn,
                        "B",
                        vec![Value::Int(100 + i), Value::str(format!("b{i}"))],
                    )?;
                }
                db.commit(txn)
            }
        }
    }

    /// Workload profiles for the scenario's source tables. Every
    /// generator respects the scenario's integrity constraints so that
    /// any oracle failure is a bug in the engine, never in the input.
    pub fn profiles(&self) -> Vec<TableProfile> {
        match self {
            Scenario::Foj => vec![
                TableProfile {
                    name: "R".into(),
                    gen_row: Box::new(|seq, rng: &mut StdRng| {
                        vec![
                            Value::Int(seq as i64),
                            Value::str(format!("b{}", rng.gen_range(0..100u32))),
                            Value::str(format!("j{}", rng.gen_range(0..GROUPS + 2))),
                        ]
                    }),
                    updates: vec![
                        Box::new(|rng: &mut StdRng| {
                            vec![(1, Value::str(format!("b{}", rng.gen_range(0..100u32))))]
                        }),
                        // Re-pointing the join attribute moves the row
                        // between join groups mid-flight — the hardest
                        // case for the FOJ update rules.
                        Box::new(|rng: &mut StdRng| {
                            vec![(2, Value::str(format!("j{}", rng.gen_range(0..GROUPS + 2))))]
                        }),
                    ],
                },
                TableProfile {
                    name: "S".into(),
                    // S's primary key is the join attribute itself, so
                    // fresh S rows get fresh join values (pk collisions
                    // are impossible, and the one-to-many invariant —
                    // the join attribute is unique in S — holds).
                    gen_row: Box::new(|seq, rng: &mut StdRng| {
                        vec![
                            Value::str(format!("n{seq}")),
                            Value::str(format!("d{}", rng.gen_range(0..100u32))),
                        ]
                    }),
                    updates: vec![Box::new(|rng: &mut StdRng| {
                        vec![(1, Value::str(format!("d{}", rng.gen_range(0..100u32))))]
                    })],
                },
            ],
            Scenario::Split | Scenario::SplitCc => vec![TableProfile {
                name: "C".into(),
                gen_row: Box::new(|seq, rng: &mut StdRng| {
                    let code = rng.gen_range(0..GROUPS + 2);
                    vec![
                        Value::Int(seq as i64),
                        Value::str(format!("n{}", rng.gen_range(0..100u32))),
                        Value::str(format!("p{code}")),
                        Value::str(city_for(code)),
                    ]
                }),
                updates: vec![
                    // Non-dependent column: always safe.
                    Box::new(|rng: &mut StdRng| {
                        vec![(1, Value::str(format!("n{}", rng.gen_range(0..100u32))))]
                    }),
                    // Moving a customer between postal codes must move
                    // the city along, or the functional dependency
                    // postal_code → city would break.
                    Box::new(|rng: &mut StdRng| {
                        let code = rng.gen_range(0..GROUPS + 2);
                        vec![
                            (2, Value::str(format!("p{code}"))),
                            (3, Value::str(city_for(code))),
                        ]
                    }),
                ],
            }],
            Scenario::Union => {
                let part = |name: &str| TableProfile {
                    name: name.to_owned(),
                    gen_row: Box::new(|seq, rng: &mut StdRng| {
                        vec![
                            Value::Int(seq as i64),
                            Value::str(format!("v{}", rng.gen_range(0..100u32))),
                        ]
                    }),
                    updates: vec![Box::new(|rng: &mut StdRng| {
                        vec![(1, Value::str(format!("v{}", rng.gen_range(0..100u32))))]
                    })],
                };
                vec![part("A"), part("B")]
            }
        }
    }

    /// Run the scenario's transformation synchronously on the serial
    /// pipeline (the determinism pin).
    pub fn run(&self, db: &Arc<Database>, strategy: SyncStrategy) -> DbResult<TransformReport> {
        self.run_with(db, strategy, ParallelConfig::serial())
    }

    /// Run the scenario's transformation synchronously under an
    /// explicit parallel configuration (the pool kill matrix drives
    /// `apply_shards > 1` through here).
    pub fn run_with(
        &self,
        db: &Arc<Database>,
        strategy: SyncStrategy,
        parallel: ParallelConfig,
    ) -> DbResult<TransformReport> {
        self.run_with_mode(db, strategy, parallel, TransformMode::LogPropagation)
    }

    /// Run the scenario's transformation under an explicit population
    /// mode: [`TransformMode::LogPropagation`] is the determinism pin
    /// (the default everywhere else delegates here), while
    /// [`TransformMode::Snapshot`] populates from a clean MVCC
    /// snapshot scan (the `mvcc_matrix` kill sweep drives it).
    pub fn run_with_mode(
        &self,
        db: &Arc<Database>,
        strategy: SyncStrategy,
        parallel: ParallelConfig,
        mode: TransformMode,
    ) -> DbResult<TransformReport> {
        let mut options = sim_options(strategy);
        options.parallel = parallel;
        options.mode = mode;
        match self {
            Scenario::Foj => {
                Transformer::run_foj(db, FojSpec::new("R", "S", "T", "c", "c"), options)
            }
            Scenario::Split => Transformer::run_split(
                db,
                SplitSpec::new(
                    "C",
                    "CR",
                    "CS",
                    &["customer_id", "name", "postal_code"],
                    "postal_code",
                    &["city"],
                ),
                options,
            ),
            Scenario::SplitCc => Transformer::run_split(
                db,
                SplitSpec::new(
                    "C",
                    "CR",
                    "CS",
                    &["customer_id", "name", "postal_code"],
                    "postal_code",
                    &["city"],
                )
                .with_consistency_check(),
                options,
            ),
            Scenario::Union => Transformer::run_union(db, UnionSpec::new("A", "B", "U"), options),
        }
    }
}

/// Transformation options tuned for the simulator: tiny chunks and
/// batches so every crash point fires many times even on small tables,
/// full priority so the throttle never sleeps (wall-clock independence
/// is what makes traces reproducible), and retained sources so the
/// oracle can inspect them.
pub fn sim_options(strategy: SyncStrategy) -> TransformOptions {
    TransformOptions {
        population_chunk: 4,
        batch_size: 8,
        sync_threshold: 4,
        cc_interval: 2,
        strategy,
        retain_sources: true,
        ..TransformOptions::default()
    }
}
