//! Randomized (but reproducible) seed sweep: each seed gets a census
//! run plus several kill runs drawn from the census. The default is a
//! small fixed set so `cargo test` stays fast; set `SIM_SEEDS=N` to
//! sweep N seeds per cell (CI soak, overnight runs). Any failure is
//! minimized and printed with its seed, crash point, and full trace —
//! paste the seed back into a `SimConfig` to replay it exactly.

use morph_core::SyncStrategy;
use morph_sim::{sweep_cell, Scenario};

fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("SIM_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    // Fixed base so the default sweep is the same on every machine;
    // SIM_SEEDS extends the range rather than changing it.
    (0..n).map(|i| 0xdb + i).collect()
}

const KILLS_PER_SEED: usize = 3;

#[test]
fn sweep_all_cells() {
    let mut cells = 0;
    let mut runs = 0;
    let mut kills = 0;
    for scenario in Scenario::ALL {
        for strategy in [
            SyncStrategy::BlockingCommit,
            SyncStrategy::NonBlockingAbort,
            SyncStrategy::NonBlockingCommit,
        ] {
            for seed in seeds() {
                match sweep_cell(scenario, strategy, seed, KILLS_PER_SEED) {
                    Ok(summary) => {
                        cells += 1;
                        runs += summary.runs;
                        kills += summary.kills_survived;
                    }
                    Err(failure) => panic!("{}", failure.render()),
                }
            }
        }
    }
    // Every armed kill must actually have fired and recovered: one
    // census plus KILLS_PER_SEED successful kills per cell.
    assert_eq!(kills, cells * KILLS_PER_SEED);
    assert_eq!(runs, cells * (KILLS_PER_SEED + 1));
    println!("sweep: {runs} universes, {kills} crash-recoveries verified");
}
