//! Group-commit WAL under the crash simulator.
//!
//! `WalMode::Serial` is the determinism pin the rest of the sim suite
//! runs; this file proves the same universes hold up when the WAL runs
//! the lock-split, group-commit pipeline instead — and exercises the
//! new commit/abort crash points that sit around the durability
//! watermark, which no transformation-phase kill can reach.

use morph_common::{ColumnType, DbError, DbResult, Schema, Value};
use morph_core::SyncStrategy;
use morph_engine::{recover_into, CrashHook, Database};
use morph_sim::{run_sim, Scenario, SimConfig, Verdict};
use morph_txn::LockManagerConfig;
use morph_wal::{FaultBackend, FaultConfig, GroupCommitConfig, LogManager, WalMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn group_cfg(seed: u64, scenario: Scenario, strategy: SyncStrategy) -> SimConfig {
    SimConfig::new(seed, scenario, strategy).wal_mode(WalMode::Group)
}

#[test]
fn group_mode_census_matches_serial_trace() {
    // The WAL mode changes durability mechanics, never execution: a
    // clean census run must produce a byte-identical event trace in
    // both modes.
    for scenario in Scenario::ALL {
        let serial = run_sim(
            &SimConfig::new(7, scenario, SyncStrategy::NonBlockingAbort).wal_mode(WalMode::Serial),
        )
        .unwrap_or_else(|f| panic!("{}", f.render()));
        let group = run_sim(&group_cfg(7, scenario, SyncStrategy::NonBlockingAbort))
            .unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(serial.verdict, Verdict::CompletedClean);
        assert_eq!(group.verdict, Verdict::CompletedClean);
        assert_eq!(
            serial.trace,
            group.trace,
            "mode changed execution for {}",
            scenario.tag()
        );
    }
}

#[test]
fn group_mode_is_deterministic() {
    let cfg =
        group_cfg(7, Scenario::Foj, SyncStrategy::NonBlockingAbort).kill_at("propagate.batch", 5);
    let a = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
    let b = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
    assert_eq!(a.verdict, Verdict::KilledAndRecovered);
    assert_eq!(a.trace, b.trace, "group-mode killed-run trace diverged");
    assert_eq!(a.durable_records, b.durable_records);
}

#[test]
fn group_mode_survives_kills_across_the_matrix() {
    // A bounded slice of the crash matrix with group commit on: every
    // strategy, kills inside the copy and inside propagation, full
    // Theorem 1 oracle each time.
    for (scenario, strategy) in [
        (Scenario::Foj, SyncStrategy::NonBlockingAbort),
        (Scenario::Split, SyncStrategy::NonBlockingCommit),
        (Scenario::SplitCc, SyncStrategy::BlockingCommit),
        (Scenario::Union, SyncStrategy::NonBlockingAbort),
    ] {
        let census =
            run_sim(&group_cfg(5, scenario, strategy)).unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(census.verdict, Verdict::CompletedClean);
        for point in ["populate.chunk", "propagate.batch"] {
            let n = *census
                .point_counts
                .get(point)
                .unwrap_or_else(|| panic!("{point} never fired in census"));
            let cfg = group_cfg(5, scenario, strategy).kill_at(point, n / 2 + 1);
            let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
            assert_eq!(
                report.verdict,
                Verdict::KilledAndRecovered,
                "{} {:?} kill at {point}",
                scenario.tag(),
                strategy
            );
        }
    }
}

// --- direct commit/abort crash-point semantics -------------------------

/// Kill the first time execution reaches `point`, once.
struct KillOnce {
    point: &'static str,
    fired: AtomicBool,
}

impl CrashHook for KillOnce {
    fn at(&self, _db: &Database, point: &str) -> DbResult<()> {
        if point == self.point && !self.fired.swap(true, Ordering::SeqCst) {
            return Err(DbError::SimulatedCrash(point.to_owned()));
        }
        Ok(())
    }
}

fn two_col_schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("v", ColumnType::Str)
        .primary_key(&["id"])
        .build()
        .expect("static schema")
}

/// Crash a commit at `point`, then recover and report whether the
/// in-flight transaction's row survived.
fn crashed_commit_row_survives(mode: WalMode, point: &'static str, seed: u64) -> bool {
    let (backend, handle) = FaultBackend::new(FaultConfig::crash_only(seed));
    let log = Arc::new(LogManager::with_backend_mode(
        Box::new(backend),
        mode,
        GroupCommitConfig::default(),
    ));
    let db = Database::with_log(log, LockManagerConfig::default());
    let table = db.create_table("T", two_col_schema()).unwrap();

    // A committed base row that must survive every crash below.
    let t0 = db.begin();
    db.insert(t0, "T", vec![Value::Int(1), Value::str("base")])
        .unwrap();
    db.commit(t0).unwrap();

    db.set_crash_hook(Arc::new(KillOnce {
        point,
        fired: AtomicBool::new(false),
    }));
    let t1 = db.begin();
    db.insert(t1, "T", vec![Value::Int(2), Value::str("victim")])
        .unwrap();
    match db.commit(t1) {
        Err(DbError::SimulatedCrash(_)) => {}
        other => panic!("commit should have been killed at {point}, got {other:?}"),
    }

    handle.crash();
    let durable = handle.durable_records().unwrap();
    let log2 = Arc::new(LogManager::with_records(durable.clone()));
    let db2 = Database::with_log(log2, LockManagerConfig::default());
    db2.catalog()
        .create_table_with_id(table.id(), "T", two_col_schema())
        .unwrap();
    recover_into(&db2, &durable).unwrap();

    let rows = db2.catalog().get("T").unwrap().snapshot();
    assert!(
        rows.iter().any(|(_, r)| r.values[0] == Value::Int(1)),
        "committed base row lost after {point} crash ({mode:?})"
    );
    rows.iter().any(|(_, r)| r.values[0] == Value::Int(2))
}

#[test]
fn kill_before_commit_append_rolls_the_transaction_back() {
    for mode in [WalMode::Serial, WalMode::Group] {
        for seed in [3, 17, 91] {
            assert!(
                !crashed_commit_row_survives(mode, "commit.wal_append", seed),
                "txn without a Commit record must be a loser ({mode:?}, seed {seed})"
            );
        }
    }
}

#[test]
fn kill_after_durability_wait_preserves_the_transaction() {
    // Once wait_durable returned, the Commit record is on stable
    // storage: the tear cannot reach it, and recovery must redo the
    // transaction — the durability watermark is exactly the point of
    // no return.
    for mode in [WalMode::Serial, WalMode::Group] {
        for seed in [3, 17, 91] {
            assert!(
                crashed_commit_row_survives(mode, "commit.wal_durable", seed),
                "durable commit lost ({mode:?}, seed {seed})"
            );
        }
    }
}

#[test]
fn killed_abort_after_durable_clrs_stays_rolled_back() {
    for mode in [WalMode::Serial, WalMode::Group] {
        let (backend, handle) = FaultBackend::new(FaultConfig::crash_only(23));
        let log = Arc::new(LogManager::with_backend_mode(
            Box::new(backend),
            mode,
            GroupCommitConfig::default(),
        ));
        let db = Database::with_log(log, LockManagerConfig::default());
        let table = db.create_table("T", two_col_schema()).unwrap();
        let t0 = db.begin();
        db.insert(t0, "T", vec![Value::Int(1), Value::str("base")])
            .unwrap();
        db.commit(t0).unwrap();

        db.set_crash_hook(Arc::new(KillOnce {
            point: "abort.wal_durable",
            fired: AtomicBool::new(false),
        }));
        let t1 = db.begin();
        db.insert(t1, "T", vec![Value::Int(2), Value::str("victim")])
            .unwrap();
        match db.abort(t1) {
            Err(DbError::SimulatedCrash(_)) => {}
            other => panic!("abort should have been killed, got {other:?}"),
        }

        handle.crash();
        let durable = handle.durable_records().unwrap();
        let log2 = Arc::new(LogManager::with_records(durable.clone()));
        let db2 = Database::with_log(log2, LockManagerConfig::default());
        db2.catalog()
            .create_table_with_id(table.id(), "T", two_col_schema())
            .unwrap();
        recover_into(&db2, &durable).unwrap();
        let rows = db2.catalog().get("T").unwrap().snapshot();
        assert!(rows.iter().any(|(_, r)| r.values[0] == Value::Int(1)));
        assert!(
            !rows.iter().any(|(_, r)| r.values[0] == Value::Int(2)),
            "aborted row resurrected after crash mid-abort ({mode:?})"
        );
    }
}
