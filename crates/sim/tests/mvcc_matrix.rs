//! Kill matrix for the MVCC snapshot-read path (`mvcc.*` and
//! `copy.snapshot_scan` crash points).
//!
//! These points are `optional` in the registry because the default sim
//! census runs `TransformMode::LogPropagation` with MVCC disabled and
//! never reaches them. This sweep runs the same scenarios under
//! `TransformMode::Snapshot` — the initial population is a clean
//! snapshot scan instead of the fuzzy copy — and demands the full
//! recovery oracle every time: committed user data survives the torn
//! WAL exactly, and restarting the transformation from preparation
//! (still in snapshot mode) converges to the tables of an
//! uninterrupted *log-propagation* reference run. Every cell is
//! therefore also a snapshot ≡ fuzzy-copy equivalence check
//! (Theorem 1 does not care how the initial image was taken, only
//! that propagation starts at the fuzzy mark).
//!
//! The kill occurrences are derived from the checked-in registry via
//! `kill_occurrences` on a census run, exactly like the non-optional
//! matrix in `crash_matrix.rs` — a hardcoded occurrence list would rot
//! the moment chunk sizes change.

use morph_core::{SyncStrategy, TransformMode};
use morph_sim::points::{kill_occurrences, registry};
use morph_sim::{run_sim, Scenario, SimConfig, Verdict};

const MVCC_POINTS: [&str; 3] = [
    "mvcc.snapshot_acquire",
    "copy.snapshot_scan",
    "mvcc.gc_reclaim",
];

const SCENARIOS: [Scenario; 3] = [Scenario::Foj, Scenario::Split, Scenario::Union];

fn snapshot_cfg(seed: u64, scenario: Scenario, strategy: SyncStrategy) -> SimConfig {
    SimConfig::new(seed, scenario, strategy).transform_mode(TransformMode::Snapshot)
}

/// Every MVCC point must fire in a snapshot-mode census — otherwise
/// the kill sweep below would be vacuously green — and the clean run
/// must already satisfy the Theorem 1 oracle against the
/// log-propagation reference.
#[test]
fn snapshot_census_reaches_the_mvcc_points() {
    for scenario in SCENARIOS {
        let census = run_sim(&snapshot_cfg(21, scenario, SyncStrategy::NonBlockingAbort))
            .unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(census.verdict, Verdict::CompletedClean);
        for point in MVCC_POINTS {
            assert!(
                census.point_counts.get(point).copied().unwrap_or(0) > 0,
                "{}: {point} never fired in the snapshot census; counts: {:?}",
                scenario.tag(),
                census.point_counts
            );
        }
    }
}

/// Kill each MVCC point at its registry-derived occurrences (loops at
/// first/middle/last, steps at their last firing in the census) and
/// demand `KilledAndRecovered`: recovery restores committed data
/// exactly and the restarted snapshot-mode transformation equals the
/// uninterrupted log-propagation run.
#[test]
fn mvcc_points_survive_kills_in_both_transform_modes() {
    for scenario in SCENARIOS {
        let strategy = SyncStrategy::NonBlockingAbort;
        let census = run_sim(&snapshot_cfg(21, scenario, strategy))
            .unwrap_or_else(|f| panic!("{}", f.render()));
        for name in MVCC_POINTS {
            let point = registry().get(name).expect("registered MVCC point");
            let fired = census.point_counts.get(name).copied().unwrap_or(0);
            for occurrence in kill_occurrences(point, fired) {
                let cfg = snapshot_cfg(21, scenario, strategy).kill_at(name, occurrence);
                let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
                assert_eq!(
                    report.verdict,
                    Verdict::KilledAndRecovered,
                    "{}: kill {name}#{occurrence} never fired",
                    scenario.tag()
                );
            }
        }
    }
}

/// The three strategies only differ at synchronization, well after the
/// snapshot scan — but the sync step also has to work when the initial
/// image came from a clean snapshot. One mid-scan kill per strategy.
#[test]
fn snapshot_mode_holds_across_all_sync_strategies() {
    for strategy in [
        SyncStrategy::BlockingCommit,
        SyncStrategy::NonBlockingAbort,
        SyncStrategy::NonBlockingCommit,
    ] {
        let cfg = snapshot_cfg(22, Scenario::Split, strategy).kill_at("copy.snapshot_scan", 2);
        let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(
            report.verdict,
            Verdict::KilledAndRecovered,
            "{strategy:?}: copy.snapshot_scan#2 never fired"
        );
    }
}

/// With the default `TransformMode::LogPropagation`, the MVCC machinery
/// must be completely inert: no MVCC crash point fires and the trace
/// stays on the fuzzy-copy path (`populate.chunk`).
#[test]
fn log_propagation_mode_never_touches_mvcc() {
    for scenario in SCENARIOS {
        let census = run_sim(&SimConfig::new(
            21,
            scenario,
            SyncStrategy::NonBlockingAbort,
        ))
        .unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(census.verdict, Verdict::CompletedClean);
        for point in MVCC_POINTS {
            assert!(
                !census.point_counts.contains_key(point),
                "{}: {point} fired in a log-propagation census",
                scenario.tag()
            );
        }
        assert!(
            census
                .point_counts
                .get("populate.chunk")
                .copied()
                .unwrap_or(0)
                > 0,
            "{}: fuzzy copy never ran in the default mode",
            scenario.tag()
        );
    }
}
