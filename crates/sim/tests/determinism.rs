//! The simulator's foundational contract: a universe is a pure
//! function of its config. Same seed → byte-identical event trace;
//! without that, a printed failing seed would be worthless.

use morph_core::SyncStrategy;
use morph_sim::{run_sim, Scenario, SimConfig, Verdict};

fn traces(cfg: &SimConfig) -> (Vec<String>, usize, Verdict) {
    let r = run_sim(cfg).unwrap_or_else(|f| panic!("{}", f.render()));
    (r.trace, r.durable_records, r.verdict)
}

#[test]
fn same_seed_same_trace_census() {
    for scenario in Scenario::ALL {
        let cfg = SimConfig::new(7, scenario, SyncStrategy::NonBlockingAbort);
        let a = traces(&cfg);
        let b = traces(&cfg);
        assert_eq!(a, b, "census trace diverged for {}", scenario.tag());
        assert_eq!(a.2, Verdict::CompletedClean);
    }
}

#[test]
fn same_seed_same_trace_killed_run() {
    // The killed run exercises the full pipeline (tear, recovery,
    // re-transformation), all of which append to the trace.
    let cfg = SimConfig::new(7, Scenario::Foj, SyncStrategy::NonBlockingAbort)
        .kill_at("propagate.batch", 5);
    let a = traces(&cfg);
    let b = traces(&cfg);
    assert_eq!(a, b, "killed-run trace diverged");
    assert_eq!(a.2, Verdict::KilledAndRecovered);
    // The durable-record count reflects the seeded torn-write offset;
    // determinism must cover it too.
    assert_eq!(a.1, b.1);
}

#[test]
fn different_seeds_diverge() {
    let mk = |seed| {
        traces(&SimConfig::new(
            seed,
            Scenario::Foj,
            SyncStrategy::NonBlockingAbort,
        ))
    };
    // Workload choices are seed-driven, so traces must differ.
    assert_ne!(mk(1).0, mk(2).0);
}

#[test]
fn armed_kill_replays_census_prefix() {
    // An armed run is the census run up to the kill: its trace must be
    // a strict prefix of the census trace (plus the KILL marker and
    // recovery milestones appended by the harness).
    let census_cfg = SimConfig::new(11, Scenario::Split, SyncStrategy::NonBlockingCommit);
    let census = run_sim(&census_cfg).unwrap_or_else(|f| panic!("{}", f.render()));
    let killed_cfg = census_cfg.clone().kill_at("propagate.batch", 3);
    let killed = run_sim(&killed_cfg).unwrap_or_else(|f| panic!("{}", f.render()));
    let kill_pos = killed
        .trace
        .iter()
        .position(|l| l.starts_with("KILL:"))
        .expect("kill marker in trace");
    assert_eq!(killed.trace[..kill_pos], census.trace[..kill_pos]);
}
