//! Kill matrix for the persistent apply pool (`apply.*` crash points).
//!
//! These points are `optional` in the registry because the default sim
//! census runs the serial `ParallelConfig {1, 1}` pipeline, which never
//! constructs a pool. This sweep runs the same scenarios under
//! `apply_shards = 4` with the epoch threshold forced to 1 so the
//! deliberately tiny sim batches still become real epochs — worker
//! threads are in flight when the kill fires — and demands the full
//! recovery oracle every time: committed user data survives the torn
//! WAL exactly, and restarting the transformation from preparation
//! (still under `apply_shards = 4`) converges to the tables of an
//! uninterrupted *serial* reference run, so every cell is also a
//! parallel ≡ serial equivalence check (Theorem 1).
//!
//! All five `apply.*` points fire on the caller thread only: a kill
//! observed mid-epoch (`apply.steal`) is deferred to the epoch fence so
//! borrowed tasks never outlive an unwinding `run_epoch`. The steal
//! point is the one genuinely timing-dependent firing (the caller only
//! steals while fence-waiting), so its kills — and late occurrences of
//! the others — accept `KillNotReached`: the clean-run oracle is still
//! checked in that case, and the census test below pins that the
//! deterministic points do fire.

use morph_core::{ParallelConfig, SyncStrategy};
use morph_sim::{run_sim, Scenario, SimConfig, Verdict};

/// Four lanes, epoch hand-off for every lane-classified run no matter
/// how short: maximum pool traffic on sim-sized batches.
fn pool_config() -> ParallelConfig {
    ParallelConfig::new(1, 4).with_min_apply_segment(1).exact()
}

const POOL_POINTS: [&str; 5] = [
    "apply.pool_spawn",
    "apply.lane_enqueue",
    "apply.steal",
    "apply.epoch_fence",
    "apply.pool_drain",
];

const SCENARIOS: [Scenario; 3] = [Scenario::Foj, Scenario::Split, Scenario::Union];

/// Kill every pool point at its first and an early-middle occurrence,
/// per scenario. `KilledAndRecovered` means the whole oracle passed;
/// `KillNotReached` is legal (e.g. no steal ever happened, or the pool
/// spawned fewer times than the armed occurrence) and still checks the
/// clean-run oracle.
#[test]
fn pool_points_survive_kills_with_workers_in_flight() {
    for scenario in SCENARIOS {
        for point in POOL_POINTS {
            for occurrence in [1usize, 3] {
                let cfg = SimConfig::new(11, scenario, SyncStrategy::NonBlockingAbort)
                    .parallel(pool_config())
                    .kill_at(point, occurrence);
                let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
                assert!(
                    matches!(
                        report.verdict,
                        Verdict::KilledAndRecovered | Verdict::KillNotReached
                    ),
                    "{} kill {point}#{occurrence}: unexpected verdict {:?}",
                    scenario.tag(),
                    report.verdict
                );
            }
        }
    }
}

/// The deterministic pool points must actually fire in a parallel
/// census — otherwise the sweep above would be vacuously green. The
/// steal counter is deliberately absent here: whether the fence-waiting
/// caller ever steals depends on worker timing.
#[test]
fn parallel_census_reaches_the_pool_points() {
    for scenario in SCENARIOS {
        let census = run_sim(
            &SimConfig::new(11, scenario, SyncStrategy::NonBlockingAbort).parallel(pool_config()),
        )
        .unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(census.verdict, Verdict::CompletedClean);
        for point in [
            "apply.pool_spawn",
            "apply.lane_enqueue",
            "apply.epoch_fence",
            "apply.pool_drain",
        ] {
            assert!(
                census.point_counts.get(point).copied().unwrap_or(0) > 0,
                "{}: {point} never fired in the parallel census; counts: {:?}",
                scenario.tag(),
                census.point_counts
            );
        }
    }
}

/// A mid-propagation kill under the pool, recovered and re-run, equals
/// the uninterrupted serial run — the pool-flavored restatement of the
/// recovery-module doc claim, across all three strategies.
#[test]
fn pooled_interrupted_restart_equals_serial_run() {
    for strategy in [
        SyncStrategy::BlockingCommit,
        SyncStrategy::NonBlockingAbort,
        SyncStrategy::NonBlockingCommit,
    ] {
        let cfg = SimConfig::new(12, Scenario::Split, strategy)
            .parallel(pool_config())
            .kill_at("propagate.batch", 2);
        let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(
            report.verdict,
            Verdict::KilledAndRecovered,
            "{strategy:?}: propagate.batch#2 never fired under the pool"
        );
    }
}
