//! Shard-scoped kill matrix: crash ONE shard of a [`ShardedDatabase`]
//! mid-migration and demand the shared-nothing contract:
//!
//! * the surviving shards never notice — their migrations complete and
//!   their targets match an uninterrupted reference run bit-for-bit;
//! * the victim recovers from its own WAL alone (committed source rows
//!   survive exactly — the Theorem-1 oracle — and the in-flight job is
//!   rediscovered and resumed by the per-shard orchestrator);
//! * the re-assembled router converges to the uninterrupted run.
//!
//! A second matrix covers the **lazy** (SLSM-style) mode: the victim is
//! killed between catalog cutover and backfill completion — at the
//! cutover pause, inside an on-access touch, inside a backfill batch,
//! and during completion. After recovery the residual set is rebuilt
//! from scratch and the first on-access read must already serve the
//! correctly transformed row, before any backfill runs.

use morph_common::{ColumnType, DbError, DbResult, Key, Schema, TableId, Value};
use morph_core::SyncStrategy;
use morph_engine::{recover_into, CrashHook, Database, ShardedDatabase};
use morph_orchestrator::{
    start_lazy_sharded, submit_sharded, Migration, MigrationSpec, Orchestrator,
};
use morph_sim::points::registry;
use morph_sim::sim_options;
use morph_txn::LockManagerConfig;
use morph_wal::{FaultBackend, FaultConfig, FaultHandle, GroupCommitConfig, LogManager, WalMode};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Minimal kill hook: dies the `occurrence`-th time execution passes
/// `point`; counts everything for later assertions.
struct KillHook {
    inner: Mutex<KillState>,
}

struct KillState {
    point: String,
    occurrence: usize,
    counts: BTreeMap<String, usize>,
    fired: bool,
}

impl KillHook {
    fn arm(point: &str, occurrence: usize) -> Arc<KillHook> {
        Arc::new(KillHook {
            inner: Mutex::new(KillState {
                point: point.to_owned(),
                occurrence,
                counts: BTreeMap::new(),
                fired: false,
            }),
        })
    }

    fn fired(&self) -> bool {
        self.inner.lock().fired
    }
}

impl CrashHook for KillHook {
    fn at(&self, _db: &Database, point: &str) -> DbResult<()> {
        let Some(mut g) = self.inner.try_lock() else {
            return Ok(());
        };
        let n = {
            let c = g.counts.entry(point.to_owned()).or_insert(0);
            *c += 1;
            *c
        };
        if g.point == point && g.occurrence == n {
            g.fired = true;
            return Err(DbError::SimulatedCrash(format!("{point}#{n}")));
        }
        Ok(())
    }
}

const SHARDS: usize = 2;
const VICTIM: usize = 0;

fn union_schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .column("v", ColumnType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn spec() -> MigrationSpec {
    Migration::union("r", "s", "u").build()
}

/// One fault-backed shard, with enough recorded to rebuild it after a
/// torn-WAL crash.
struct ShardUniverse {
    db: Arc<Database>,
    fault: FaultHandle,
    sources: Vec<(TableId, String, Schema)>,
}

struct RouterUniverse {
    sdb: ShardedDatabase,
    shards: Vec<ShardUniverse>,
    /// Committed per-shard source images at seed time, per table.
    models: Vec<BTreeMap<String, BTreeMap<Key, Vec<Value>>>>,
}

fn seed_rows(sdb: &ShardedDatabase) {
    for i in 0..24i64 {
        sdb.insert("r", vec![Value::Int(i), Value::Int(i * 10)])
            .unwrap();
        sdb.insert("s", vec![Value::Int(i), Value::Int(i * 100)])
            .unwrap();
    }
}

fn values_of(db: &Database, table: &str) -> DbResult<BTreeMap<Key, Vec<Value>>> {
    let t = db.catalog().get(table)?;
    Ok(t.snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values))
        .collect())
}

/// Router over `SHARDS` fault-backed engines, seeded through the
/// router exactly like the pristine reference.
fn build(seed: u64) -> RouterUniverse {
    let mut shards = Vec::with_capacity(SHARDS);
    for i in 0..SHARDS {
        let (backend, fault) = FaultBackend::new(FaultConfig::crash_only(seed + i as u64));
        let log = Arc::new(LogManager::with_backend_mode(
            Box::new(backend),
            WalMode::from_env(WalMode::Serial),
            GroupCommitConfig::default(),
        ));
        let db = Arc::new(Database::with_log(log, LockManagerConfig::default()));
        let mut sources = Vec::new();
        for name in ["r", "s"] {
            let t = db.create_table(name, union_schema()).unwrap();
            sources.push((t.id(), name.to_owned(), union_schema()));
        }
        shards.push(ShardUniverse { db, fault, sources });
    }
    let sdb = ShardedDatabase::from_parts(shards.iter().map(|s| Arc::clone(&s.db)).collect());
    seed_rows(&sdb);
    let models = shards
        .iter()
        .map(|s| {
            ["r", "s"]
                .iter()
                .map(|n| ((*n).to_owned(), values_of(&s.db, n).unwrap()))
                .collect()
        })
        .collect();
    RouterUniverse {
        sdb,
        shards,
        models,
    }
}

/// Tear the victim's WAL, rebuild a fresh engine, replay the durable
/// prefix — the other shards' processes are never involved.
fn recover_shard(u: &ShardUniverse) -> (Arc<Database>, Vec<morph_wal::LogRecord>) {
    let _bytes = u.fault.crash();
    let durable = u.fault.durable_records().unwrap();
    let log2 = Arc::new(LogManager::with_records(durable.clone()));
    let db2 = Arc::new(Database::with_log(log2, LockManagerConfig::default()));
    for (id, name, schema) in &u.sources {
        db2.catalog()
            .create_table_with_id(*id, name, schema.clone())
            .unwrap();
    }
    recover_into(&db2, &durable).unwrap();
    (db2, durable)
}

/// Uninterrupted eager run over a pristine router with the same key
/// space: the per-shard target images every kill must converge to
/// (routing is a pure key hash, so shard assignment is identical).
fn reference_images() -> Vec<BTreeMap<Key, Vec<Value>>> {
    let sdb = ShardedDatabase::new(SHARDS);
    for name in ["r", "s"] {
        sdb.create_table(name, union_schema()).unwrap();
    }
    seed_rows(&sdb);
    let (_orchs, mig) =
        submit_sharded(&sdb, &spec(), &sim_options(SyncStrategy::NonBlockingAbort)).unwrap();
    mig.join().unwrap();
    sdb.shards()
        .iter()
        .map(|db| values_of(db, "u").unwrap())
        .collect()
}

/// Smallest `r`-key the victim shard owns (the probe for on-access
/// touches after recovery).
fn victim_r_id(u: &RouterUniverse) -> i64 {
    let key = u.models[VICTIM]["r"]
        .keys()
        .next()
        .expect("victim shard must own at least one r row");
    match key.values()[0] {
        Value::Int(i) => i,
        ref v => panic!("unexpected key type {v:?}"),
    }
}

fn target_key(tag: &str, id: i64) -> Key {
    Key::new([Value::str(tag), Value::Int(id)])
}

/// Eager matrix: kill the victim shard at every registered
/// orchestrator state-machine transition; the survivor finishes, the
/// victim recovers and resumes from its own WAL, the router converges.
#[test]
fn shard_kill_recovers_and_router_converges() {
    let reference = reference_images();
    let points: Vec<String> = registry()
        .points
        .iter()
        .map(|p| p.name.clone())
        .filter(|n| n.starts_with("orchestrator.") && n != "orchestrator.aborted")
        .collect();
    assert!(!points.is_empty(), "registry lost the orchestrator points");
    for point in points {
        let u = build(17);
        let hook = KillHook::arm(&point, 1);
        u.shards[VICTIM].db.set_crash_hook(hook.clone());

        let (_orchs, mig) = submit_sharded(
            &u.sdb,
            &spec(),
            &sim_options(SyncStrategy::NonBlockingAbort),
        )
        .unwrap();
        let err = mig.join().expect_err("armed kill must surface");
        assert!(
            matches!(err, DbError::SimulatedCrash(_)),
            "{point}: unexpected error {err}"
        );
        assert!(hook.fired(), "{point}: kill never fired");
        u.shards[VICTIM].db.clear_crash_hook();

        // The survivor never noticed: its own migration completed and
        // matches the uninterrupted run.
        assert_eq!(
            values_of(&u.shards[1].db, "u").unwrap(),
            reference[1],
            "{point}: survivor shard diverged"
        );

        // Victim: recover from its own WAL alone. Theorem-1 oracle —
        // every committed source row survives exactly.
        let (db2, durable) = recover_shard(&u.shards[VICTIM]);
        for (name, want) in &u.models[VICTIM] {
            assert_eq!(
                &values_of(&db2, name).unwrap(),
                want,
                "{point}: committed {name} rows lost on the victim"
            );
        }
        let states = Orchestrator::scan_states(&durable);
        assert_eq!(states.len(), 1, "{point}: expected one in-flight job");
        let orch2 = Orchestrator::new(Arc::clone(&db2));
        let handles = orch2
            .recover(&durable, &sim_options(SyncStrategy::NonBlockingAbort))
            .unwrap();
        assert_eq!(handles.len(), 1, "{point}: resume must relaunch the job");
        handles.into_iter().next().unwrap().join().unwrap();

        // The re-assembled router converges to the uninterrupted run.
        let sdb2 = ShardedDatabase::from_parts(vec![Arc::clone(&db2), Arc::clone(&u.shards[1].db)]);
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(
                &values_of(sdb2.shard(i), "u").unwrap(),
                want,
                "{point}: shard {i} diverged after recovery"
            );
        }
    }
}

/// A kill during fan-out planning (`router.shard_plan`, first shard)
/// starts nothing anywhere; a clean re-submit converges.
#[test]
fn fanout_kill_starts_nothing_and_resubmits_cleanly() {
    let reference = reference_images();
    let u = build(19);
    let hook = KillHook::arm("router.shard_plan", 1);
    u.shards[0].db.set_crash_hook(hook.clone());
    let err = match submit_sharded(
        &u.sdb,
        &spec(),
        &sim_options(SyncStrategy::NonBlockingAbort),
    ) {
        Err(e) => e,
        Ok(_) => panic!("fan-out kill must surface"),
    };
    assert!(matches!(err, DbError::SimulatedCrash(_)));
    assert!(hook.fired());
    u.shards[0].db.clear_crash_hook();

    for (i, s) in u.shards.iter().enumerate() {
        assert!(
            s.db.catalog().get("u").is_err(),
            "shard {i}: no shard may have started"
        );
    }
    let (_orchs, mig) = submit_sharded(
        &u.sdb,
        &spec(),
        &sim_options(SyncStrategy::NonBlockingAbort),
    )
    .unwrap();
    mig.join().unwrap();
    for (i, want) in reference.iter().enumerate() {
        assert_eq!(&values_of(u.sdb.shard(i), "u").unwrap(), want, "shard {i}");
    }
}

/// Lazy matrix: kill the victim between catalog cutover and backfill
/// completion. After recovery the residual set is rebuilt, the first
/// on-access read serves the correctly transformed row before any
/// backfill, and both shards converge to the uninterrupted reference.
#[test]
fn lazy_shard_kill_between_cutover_and_backfill_recovers() {
    let reference = reference_images();
    for point in [
        "router.lazy_cutover",
        "router.lazy_touch",
        "router.backfill_batch",
        "router.lazy_done",
    ] {
        let u = build(23);
        let hook = KillHook::arm(point, 1);
        u.shards[VICTIM].db.set_crash_hook(hook.clone());

        // Drive lazy mode until the armed kill surfaces. Pre-crash
        // activity is reads/touches only — in lazy mode target state
        // is rebuilt from the frozen sources, never from the WAL.
        let survivor_started = if point == "router.lazy_cutover" {
            // The victim is first in the fan-out: its cutover dies
            // before the survivor is ever reached.
            let err = match start_lazy_sharded(&u.sdb, &spec()) {
                Err(e) => e,
                Ok(_) => panic!("cutover kill must surface"),
            };
            assert!(matches!(err, DbError::SimulatedCrash(_)), "{point}: {err}");
            false
        } else {
            let mig = start_lazy_sharded(&u.sdb, &spec()).unwrap();
            let err = match point {
                "router.lazy_touch" => {
                    // The first on-access touch dies inside the
                    // record transform.
                    let id = victim_r_id(&u);
                    let txn = u.shards[VICTIM].db.begin();
                    let e = u.shards[VICTIM]
                        .db
                        .read(txn, "u", &target_key("r", id))
                        .expect_err("touch kill");
                    let _ = u.shards[VICTIM].db.abort(txn);
                    e
                }
                "router.backfill_batch" => mig.shards()[VICTIM]
                    .backfill(4, 1.0)
                    .expect_err("backfill kill"),
                "router.lazy_done" => {
                    mig.shards()[VICTIM].drain_now().unwrap();
                    mig.shards()[VICTIM].finish().expect_err("finish kill")
                }
                _ => unreachable!(),
            };
            assert!(matches!(err, DbError::SimulatedCrash(_)), "{point}: {err}");
            // The survivor shard drains and finishes, unaffected.
            mig.shards()[1 - VICTIM].drain_now().unwrap();
            mig.shards()[1 - VICTIM].finish().unwrap();
            true
        };
        assert!(hook.fired(), "{point}: kill never fired");
        u.shards[VICTIM].db.clear_crash_hook();

        // Victim: tear + recover. Theorem-1 oracle on the sources; any
        // recovered target shell is dropped before the re-run (its
        // contents never reach the WAL).
        let (db2, _durable) = recover_shard(&u.shards[VICTIM]);
        for (name, want) in &u.models[VICTIM] {
            assert_eq!(
                &values_of(&db2, name).unwrap(),
                want,
                "{point}: committed {name} rows lost on the victim"
            );
        }
        if db2.catalog().get("u").is_ok() {
            db2.catalog().drop_table("u").unwrap();
        }

        // Re-run lazy on the recovered victim: cutover rebuilds the
        // residual from the recovered sources.
        let victim_router = ShardedDatabase::from_parts(vec![Arc::clone(&db2)]);
        let mig2 = start_lazy_sharded(&victim_router, &spec()).unwrap();

        // On-access before any backfill: the very first read must
        // already serve the correctly transformed row.
        let key = target_key("r", victim_r_id(&u));
        let txn = db2.begin();
        let row = db2.read(txn, "u", &key).unwrap().unwrap();
        db2.commit(txn).unwrap();
        assert_eq!(
            Some(&row),
            reference[VICTIM].get(&key),
            "{point}: on-access row wrong after recovery"
        );
        mig2.drain_now().unwrap();
        mig2.finish().unwrap();

        if !survivor_started {
            let survivor_router = ShardedDatabase::from_parts(vec![Arc::clone(&u.shards[1].db)]);
            let m = start_lazy_sharded(&survivor_router, &spec()).unwrap();
            m.drain_now().unwrap();
            m.finish().unwrap();
        }

        assert_eq!(
            values_of(&db2, "u").unwrap(),
            reference[VICTIM],
            "{point}: victim diverged after lazy recovery"
        );
        assert_eq!(
            values_of(&u.shards[1].db, "u").unwrap(),
            reference[1 - VICTIM],
            "{point}: survivor diverged"
        );
    }
}
