//! Enumerated crash coverage (not sampled): for FOJ and split, under
//! each of the three synchronization strategies, kill the
//! transformation
//!
//! * inside the fuzzy copy (`populate.chunk`),
//! * inside a propagation batch (`propagate.batch`),
//! * at every instrumented step of the strategy's synchronization
//!   (`sync.{bc,nba,nbc}.*`),
//! * and at the coarse transformation milestones,
//!
//! then demand the full recovery oracle: committed user data survives
//! the torn WAL exactly, and restarting the transformation from
//! preparation converges to the same tables as an uninterrupted run
//! (Theorem 1). A census run per cell supplies the occurrence counts
//! so the matrix enumerates real executions rather than guessing.

use morph_core::SyncStrategy;
use morph_sim::{run_sim, Scenario, SimConfig, Verdict};

const STRATEGIES: [SyncStrategy; 3] = [
    SyncStrategy::BlockingCommit,
    SyncStrategy::NonBlockingAbort,
    SyncStrategy::NonBlockingCommit,
];

/// Sync-strategy-specific crash points, in execution order.
fn sync_points(strategy: SyncStrategy) -> &'static [&'static str] {
    match strategy {
        SyncStrategy::BlockingCommit => &["sync.bc.frozen", "sync.bc.quiesced", "sync.bc.drained"],
        SyncStrategy::NonBlockingAbort => &[
            "sync.nba.latched",
            "sync.nba.drained",
            "sync.nba.treated",
            "sync.nba.switched",
        ],
        SyncStrategy::NonBlockingCommit => &[
            "sync.nbc.latched",
            "sync.nbc.drained",
            "sync.nbc.treated",
            "sync.nbc.switched",
        ],
    }
}

/// Kill `scenario` × `strategy` at every enumerated point and verify
/// the oracle each time.
fn exhaust_cell(seed: u64, scenario: Scenario, strategy: SyncStrategy) {
    let census = run_sim(&SimConfig::new(seed, scenario, strategy))
        .unwrap_or_else(|f| panic!("{}", f.render()));
    assert_eq!(census.verdict, Verdict::CompletedClean);

    let occurrences = |point: &str| -> usize {
        *census.point_counts.get(point).unwrap_or_else(|| {
            panic!(
                "{} {:?}: crash point {point} never fired; census: {:?}",
                scenario.tag(),
                strategy,
                census.point_counts
            )
        })
    };

    let mut kills: Vec<(String, usize)> = Vec::new();
    // Mid-fuzzy-copy and mid-propagation: first, middle, and last
    // occurrence of each.
    for point in ["populate.chunk", "propagate.batch"] {
        let n = occurrences(point);
        let mut occs = vec![1, n / 2 + 1, n];
        occs.dedup();
        for occ in occs {
            kills.push((point.to_owned(), occ));
        }
    }
    // Every step of this strategy's synchronization.
    for point in sync_points(strategy) {
        kills.push(((*point).to_owned(), occurrences(point)));
    }
    // Coarse milestones: after population, immediately before sync,
    // immediately after sync (targets live, sources still latched a
    // moment ago), and during finalization.
    for point in [
        "transform.populated",
        "transform.pre_sync",
        "transform.synced",
        "transform.finalizing",
    ] {
        kills.push(((*point).to_owned(), occurrences(point)));
    }

    for (point, occurrence) in kills {
        let cfg = SimConfig::new(seed, scenario, strategy).kill_at(&point, occurrence);
        let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(
            report.verdict,
            Verdict::KilledAndRecovered,
            "{} {:?}: kill {point}#{occurrence} never fired",
            scenario.tag(),
            strategy
        );
    }
}

#[test]
fn foj_survives_kills_at_every_point_all_strategies() {
    for strategy in STRATEGIES {
        exhaust_cell(1, Scenario::Foj, strategy);
    }
}

#[test]
fn split_survives_kills_at_every_point_all_strategies() {
    for strategy in STRATEGIES {
        exhaust_cell(1, Scenario::Split, strategy);
    }
}

#[test]
fn split_with_consistency_check_survives_kills() {
    // The C/U flags and certification rounds add bookkeeping log
    // records (CcBegin/CcOk) that land in the torn tail; one strategy
    // suffices on top of the plain-split matrix.
    exhaust_cell(1, Scenario::SplitCc, SyncStrategy::NonBlockingAbort);
}

#[test]
fn union_survives_kills() {
    exhaust_cell(1, Scenario::Union, SyncStrategy::NonBlockingAbort);
}

/// Regression pin for the recovery-module doc claim: a transformation
/// interrupted anywhere and restarted from preparation over the
/// recovered database ends in exactly the state of a never-interrupted
/// run. The harness's verdict asserts precisely that equivalence
/// (values, split counters, consistency flags, FOJ presence).
#[test]
fn interrupted_restart_equals_uninterrupted_run() {
    for (scenario, point) in [
        (Scenario::Foj, "populate.chunk"),
        (Scenario::Foj, "propagate.batch"),
        (Scenario::Split, "populate.chunk"),
        (Scenario::Split, "propagate.batch"),
    ] {
        for seed in [2, 3] {
            let cfg =
                SimConfig::new(seed, scenario, SyncStrategy::NonBlockingAbort).kill_at(point, 2);
            let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
            assert_eq!(report.verdict, Verdict::KilledAndRecovered);
        }
    }
}
