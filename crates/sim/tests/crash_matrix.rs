//! Enumerated crash coverage (not sampled): for FOJ and split, under
//! each of the three synchronization strategies, kill the
//! transformation at every crash point in the checked-in registry
//! (`crates/lint/manifest/crash_points.txt`) that fires in the cell's
//! census — loops at their first/middle/last occurrence, bounded steps
//! at their last — then demand the full recovery oracle: committed
//! user data survives the torn WAL exactly, and restarting the
//! transformation from preparation converges to the same tables as an
//! uninterrupted run (Theorem 1).
//!
//! The registry, not this file, decides what gets killed: a new
//! `crash_point()` fails morph-lint until registered, and once
//! registered it joins the matrix automatically. The aggregate
//! coverage test at the bottom closes the remaining gap: a registered,
//! non-optional point that fires in *no* cell's census is an error,
//! so a point cannot rot into silence.

use std::collections::BTreeSet;

use morph_core::SyncStrategy;
use morph_sim::{kill_matrix, run_sim, uncovered, Scenario, SimConfig, Verdict};

const STRATEGIES: [SyncStrategy; 3] = [
    SyncStrategy::BlockingCommit,
    SyncStrategy::NonBlockingAbort,
    SyncStrategy::NonBlockingCommit,
];

/// Kill `scenario` × `strategy` at every registry point that fired in
/// the census and verify the oracle each time.
fn exhaust_cell(seed: u64, scenario: Scenario, strategy: SyncStrategy) {
    let census = run_sim(&SimConfig::new(seed, scenario, strategy))
        .unwrap_or_else(|f| panic!("{}", f.render()));
    assert_eq!(census.verdict, Verdict::CompletedClean);

    let kills = kill_matrix(strategy, &census.point_counts);
    assert!(
        !kills.is_empty(),
        "{} {:?}: registry produced an empty kill matrix; census: {:?}",
        scenario.tag(),
        strategy,
        census.point_counts
    );

    for (point, occurrence) in kills {
        let cfg = SimConfig::new(seed, scenario, strategy).kill_at(&point, occurrence);
        let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
        assert_eq!(
            report.verdict,
            Verdict::KilledAndRecovered,
            "{} {:?}: kill {point}#{occurrence} never fired",
            scenario.tag(),
            strategy
        );
    }
}

#[test]
fn foj_survives_kills_at_every_point_all_strategies() {
    for strategy in STRATEGIES {
        exhaust_cell(1, Scenario::Foj, strategy);
    }
}

#[test]
fn split_survives_kills_at_every_point_all_strategies() {
    for strategy in STRATEGIES {
        exhaust_cell(1, Scenario::Split, strategy);
    }
}

#[test]
fn split_with_consistency_check_survives_kills() {
    // The C/U flags and certification rounds add bookkeeping log
    // records (CcBegin/CcOk) that land in the torn tail; one strategy
    // suffices on top of the plain-split matrix.
    exhaust_cell(1, Scenario::SplitCc, SyncStrategy::NonBlockingAbort);
}

#[test]
fn union_survives_kills() {
    exhaust_cell(1, Scenario::Union, SyncStrategy::NonBlockingAbort);
}

/// Aggregate registry coverage: every non-optional point applicable to
/// a strategy must fire in the census of at least one scenario under
/// that strategy — otherwise a registered crash point would be
/// silently untested (or a bogus registration would sit in the
/// manifest demanding coverage nothing can provide).
#[test]
fn every_registered_point_fires_somewhere() {
    for strategy in STRATEGIES {
        let mut missing: Option<BTreeSet<&str>> = None;
        for (seed, scenario) in [(1u64, Scenario::Foj), (1, Scenario::Split)] {
            let census = run_sim(&SimConfig::new(seed, scenario, strategy))
                .unwrap_or_else(|f| panic!("{}", f.render()));
            assert_eq!(census.verdict, Verdict::CompletedClean);
            let not_here: BTreeSet<&str> = uncovered(strategy, &census.point_counts)
                .into_iter()
                .collect();
            missing = Some(match missing {
                None => not_here,
                Some(prev) => prev.intersection(&not_here).copied().collect(),
            });
        }
        let missing = missing.unwrap_or_default();
        assert!(
            missing.is_empty(),
            "{strategy:?}: registered crash points that fired in no census: {missing:?}"
        );
    }
}

/// The per-scenario enumeration is registry-driven: the strategy's
/// sync family is present, foreign families are not.
#[test]
fn kill_points_follow_the_registry() {
    let pts = Scenario::Foj.kill_points(SyncStrategy::BlockingCommit);
    assert!(pts.contains(&"sync.bc.drained"));
    assert!(pts.contains(&"populate.chunk"));
    assert!(!pts.iter().any(|p| p.starts_with("sync.nba.")));
    let pts = Scenario::Split.kill_points(SyncStrategy::NonBlockingAbort);
    assert!(pts.contains(&"sync.nba.switched"));
    assert!(!pts.iter().any(|p| p.starts_with("sync.bc.")));
}

/// Regression pin for the recovery-module doc claim: a transformation
/// interrupted anywhere and restarted from preparation over the
/// recovered database ends in exactly the state of a never-interrupted
/// run. The harness's verdict asserts precisely that equivalence
/// (values, split counters, consistency flags, FOJ presence).
#[test]
fn interrupted_restart_equals_uninterrupted_run() {
    for (scenario, point) in [
        (Scenario::Foj, "populate.chunk"),
        (Scenario::Foj, "propagate.batch"),
        (Scenario::Split, "populate.chunk"),
        (Scenario::Split, "propagate.batch"),
    ] {
        for seed in [2, 3] {
            let cfg =
                SimConfig::new(seed, scenario, SyncStrategy::NonBlockingAbort).kill_at(point, 2);
            let report = run_sim(&cfg).unwrap_or_else(|f| panic!("{}", f.render()));
            assert_eq!(report.verdict, Verdict::KilledAndRecovered);
        }
    }
}
