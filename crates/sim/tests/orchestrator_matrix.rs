//! Orchestrator kill matrix: kill the migration state machine at every
//! `orchestrator.*` transition in the checked-in crash-point registry,
//! then recover the torn WAL and demand the §3.5 resume contract:
//!
//! * committed source data survives exactly (no lost updates — target
//!   writes bypass the log, so only orchestrator bookkeeping sits in
//!   the torn tail);
//! * [`Orchestrator::scan_states`] rediscovers the in-flight job with
//!   its full spec from the durable `MigrationState` records;
//! * [`Orchestrator::resume`] re-executes any non-`Aborted` job from
//!   preparation and converges to the same tables as an uninterrupted
//!   run, while a durably `Aborted` job stays dead (no handle, no
//!   target stragglers).
//!
//! Like `crash_matrix.rs`, the sweep is registry-driven: the
//! `orchestrator.*` entries in `crates/lint/manifest/crash_points.txt`
//! decide what gets killed, so a new state-machine transition joins
//! the matrix the moment it is registered.

use morph_common::{DbError, DbResult, Key, Schema, TableId, Value};
use morph_core::split::example1_schema;
use morph_core::SyncStrategy;
use morph_engine::{recover_into, CrashHook, Database};
use morph_orchestrator::{Migration, MigrationSpec, Orchestrator};
use morph_sim::points::registry;
use morph_sim::sim_options;
use morph_txn::LockManagerConfig;
use morph_wal::{
    FaultBackend, FaultConfig, FaultHandle, GroupCommitConfig, LogManager, MigrationPhase, WalMode,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Minimal kill hook: dies the `occurrence`-th time execution passes
/// `point`; counts everything for later assertions.
struct KillHook {
    inner: Mutex<KillState>,
}

struct KillState {
    point: String,
    occurrence: usize,
    counts: BTreeMap<String, usize>,
    fired: bool,
}

impl KillHook {
    fn arm(point: &str, occurrence: usize) -> Arc<KillHook> {
        Arc::new(KillHook {
            inner: Mutex::new(KillState {
                point: point.to_owned(),
                occurrence,
                counts: BTreeMap::new(),
                fired: false,
            }),
        })
    }

    fn fired(&self) -> bool {
        self.inner.lock().fired
    }
}

impl CrashHook for KillHook {
    fn at(&self, _db: &Database, point: &str) -> DbResult<()> {
        // Same re-entrancy guard as the harness hook: engine-level
        // commit points reached while we hold the lock are not ours.
        let Some(mut g) = self.inner.try_lock() else {
            return Ok(());
        };
        let n = {
            let c = g.counts.entry(point.to_owned()).or_insert(0);
            *c += 1;
            *c
        };
        if g.point == point && g.occurrence == n {
            g.fired = true;
            return Err(DbError::SimulatedCrash(format!("{point}#{n}")));
        }
        Ok(())
    }
}

const SOURCE: &str = "C";

fn spec() -> MigrationSpec {
    Migration::split(
        SOURCE,
        "CR",
        "CS",
        &["customer_id", "name", "postal_code"],
        "postal_code",
        &["city"],
    )
    .build()
}

/// A spec whose second stage cannot prepare (unknown table): stage 1
/// cuts over, stage 2 fails, and the orchestrator takes the clean
/// abort path — the deterministic way to reach `orchestrator.aborted`.
fn doomed_spec() -> MigrationSpec {
    Migration::split(
        SOURCE,
        "CR",
        "CS",
        &["customer_id", "name", "postal_code"],
        "postal_code",
        &["city"],
    )
    .then_union("CR", "NO_SUCH_TABLE", "U")
    .build()
}

fn seed_rows(db: &Database) -> DbResult<BTreeMap<Key, Vec<Value>>> {
    let txn = db.begin();
    for i in 0..24i64 {
        let code = i as u64 % 6;
        db.insert(
            txn,
            SOURCE,
            vec![
                Value::Int(i),
                Value::str(format!("n{i}")),
                Value::str(format!("p{code}")),
                Value::str(format!("city{code}")),
            ],
        )?;
    }
    db.commit(txn)?;
    values_of(db, SOURCE)
}

fn values_of(db: &Database, table: &str) -> DbResult<BTreeMap<Key, Vec<Value>>> {
    let t = db.catalog().get(table)?;
    Ok(t.snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values))
        .collect())
}

struct Universe {
    db: Arc<Database>,
    fault: FaultHandle,
    sources: Vec<(TableId, String, Schema)>,
    model: BTreeMap<Key, Vec<Value>>,
}

/// Fault-backed database with the seeded source table committed.
fn build(seed: u64) -> Universe {
    let (backend, fault) = FaultBackend::new(FaultConfig::crash_only(seed));
    let log = Arc::new(LogManager::with_backend_mode(
        Box::new(backend),
        WalMode::from_env(WalMode::Serial),
        GroupCommitConfig::default(),
    ));
    let db = Arc::new(Database::with_log(log, LockManagerConfig::default()));
    let t = db.create_table(SOURCE, example1_schema()).unwrap();
    let sources = vec![(t.id(), SOURCE.to_owned(), example1_schema())];
    let model = seed_rows(&db).unwrap();
    Universe {
        db,
        fault,
        sources,
        model,
    }
}

/// Tear the WAL, rebuild a fresh database, replay the durable prefix.
fn recover(u: &Universe) -> (Arc<Database>, Vec<morph_wal::LogRecord>) {
    let _bytes = u.fault.crash();
    let durable = u.fault.durable_records().unwrap();
    let log2 = Arc::new(LogManager::with_records(durable.clone()));
    let db2 = Arc::new(Database::with_log(log2, LockManagerConfig::default()));
    for (id, name, schema) in &u.sources {
        db2.catalog()
            .create_table_with_id(*id, name, schema.clone())
            .unwrap();
    }
    recover_into(&db2, &durable).unwrap();
    (db2, durable)
}

/// Reference: the same migration, uninterrupted, over the same seed
/// rows on a pristine database.
fn reference_targets(spec: &MigrationSpec) -> BTreeMap<String, BTreeMap<Key, Vec<Value>>> {
    let db = Arc::new(Database::new());
    db.create_table(SOURCE, example1_schema()).unwrap();
    seed_rows(&db).unwrap();
    let orch = Orchestrator::new(Arc::clone(&db));
    let handle = orch
        .submit(spec.clone(), sim_options(SyncStrategy::NonBlockingAbort))
        .unwrap();
    handle.join().unwrap();
    spec.final_targets()
        .into_iter()
        .map(|t| {
            let snap = values_of(&db, &t).unwrap();
            (t, snap)
        })
        .collect()
}

/// Every `orchestrator.*` point in the registry that the happy path
/// reaches, in manifest order.
fn happy_path_points() -> Vec<String> {
    registry()
        .points
        .iter()
        .map(|p| p.name.clone())
        .filter(|n| n.starts_with("orchestrator.") && n != "orchestrator.aborted")
        .collect()
}

#[test]
fn registry_lists_every_state_machine_transition() {
    let pts = happy_path_points();
    for phase in [
        "planned",
        "preparing",
        "copying",
        "propagating",
        "syncing",
        "cutover",
    ] {
        assert!(
            pts.iter().any(|p| p == &format!("orchestrator.{phase}")),
            "orchestrator.{phase} missing from crash_points.txt"
        );
    }
}

/// The matrix proper: kill at every registered transition, recover,
/// resume, converge.
#[test]
fn migration_survives_kills_at_every_transition() {
    let reference = reference_targets(&spec());
    for point in happy_path_points() {
        let u = build(7);
        let hook = KillHook::arm(&point, 1);
        u.db.set_crash_hook(hook.clone());

        let orch = Orchestrator::new(Arc::clone(&u.db));
        let handle = orch
            .submit(spec(), sim_options(SyncStrategy::NonBlockingAbort))
            .unwrap();
        let err = handle.join().expect_err("armed kill must surface");
        assert!(
            matches!(err, DbError::SimulatedCrash(_)),
            "{point}: unexpected error {err}"
        );
        assert!(hook.fired(), "{point}: kill never fired");
        u.db.clear_crash_hook();

        let (db2, durable) = recover(&u);

        // Oracle 1: no lost updates on the recovered source.
        assert_eq!(
            values_of(&db2, SOURCE).unwrap(),
            u.model,
            "{point}: committed source rows lost"
        );
        // Target writes bypass the WAL: the crash wiped them.
        assert!(
            db2.catalog().get("CR").is_err() && db2.catalog().get("CS").is_err(),
            "{point}: targets must not survive a crash"
        );

        // The durable state records rediscover the job.
        let states = Orchestrator::scan_states(&durable);
        assert_eq!(states.len(), 1, "{point}: expected one in-flight job");
        assert_ne!(
            states[0].phase,
            MigrationPhase::Aborted,
            "{point}: happy-path kill must not look aborted"
        );

        // Resume: re-run from preparation, converge to the reference.
        let orch2 = Orchestrator::new(Arc::clone(&db2));
        let handles = orch2
            .recover(&durable, &sim_options(SyncStrategy::NonBlockingAbort))
            .unwrap();
        assert_eq!(handles.len(), 1, "{point}: resume must relaunch the job");
        let reports = handles.into_iter().next().unwrap().join().unwrap();
        assert_eq!(reports.len(), 1, "{point}: one stage, one report");

        for (target, want) in &reference {
            assert_eq!(
                &values_of(&db2, target).unwrap(),
                want,
                "{point}: resumed {target} diverges from uninterrupted run"
            );
        }
        // retain_sources is set in sim_options: the frozen source
        // must still be inspectable after cutover.
        assert_eq!(values_of(&db2, SOURCE).unwrap(), u.model);
    }
}

/// A clean (non-crash) failure durably records `Aborted`, and resume
/// leaves the job dead with no target stragglers.
#[test]
fn aborted_job_stays_dead_across_recovery() {
    let u = build(11);
    let orch = Orchestrator::new(Arc::clone(&u.db));
    let handle = orch
        .submit(doomed_spec(), sim_options(SyncStrategy::NonBlockingAbort))
        .unwrap();
    let err = handle.join().expect_err("stage 2 must fail to prepare");
    assert!(
        !matches!(err, DbError::SimulatedCrash(_)),
        "clean failure expected, got {err}"
    );

    let (db2, durable) = recover(&u);
    let states = Orchestrator::scan_states(&durable);
    assert_eq!(states.len(), 1);
    assert_eq!(states[0].phase, MigrationPhase::Aborted);
    assert_eq!(states[0].stage, 1, "the failing stage is recorded");

    let orch2 = Orchestrator::new(Arc::clone(&db2));
    let handles = orch2
        .recover(&durable, &sim_options(SyncStrategy::NonBlockingAbort))
        .unwrap();
    assert!(handles.is_empty(), "aborted jobs must not resume");
    for target in ["CR", "CS", "U"] {
        assert!(
            db2.catalog().get(target).is_err(),
            "{target}: aborted migration left a straggler"
        );
    }
    assert_eq!(values_of(&db2, SOURCE).unwrap(), u.model);

    // The id space moves past the dead job: a fresh submission on the
    // recovered database must not collide with it.
    let fresh = orch2
        .submit(spec(), sim_options(SyncStrategy::NonBlockingAbort))
        .unwrap();
    assert!(fresh.id() > states[0].job);
    fresh.join().unwrap();
}

/// Kill *during* the abort conclusion (`orchestrator.aborted`): the
/// durable state may or may not include the Aborted record depending
/// on what the tear kept, but either way recovery plus resume must end
/// in a consistent state — dead-and-clean, or re-run-and-converged.
#[test]
fn kill_during_abort_conclusion_recovers_consistently() {
    let u = build(13);
    let hook = KillHook::arm("orchestrator.aborted", 1);
    u.db.set_crash_hook(hook.clone());
    let orch = Orchestrator::new(Arc::clone(&u.db));
    let handle = orch
        .submit(doomed_spec(), sim_options(SyncStrategy::NonBlockingAbort))
        .unwrap();
    let err = handle.join().expect_err("kill must surface");
    assert!(matches!(err, DbError::SimulatedCrash(_)));
    assert!(hook.fired());
    u.db.clear_crash_hook();

    let (db2, durable) = recover(&u);
    assert_eq!(values_of(&db2, SOURCE).unwrap(), u.model);

    let orch2 = Orchestrator::new(Arc::clone(&db2));
    let handles = orch2
        .recover(&durable, &sim_options(SyncStrategy::NonBlockingAbort))
        .unwrap();
    match handles.len() {
        // Aborted record made it into the durable prefix: dead.
        0 => {
            for target in ["CR", "CS", "U"] {
                assert!(db2.catalog().get(target).is_err());
            }
        }
        // Tear ate the Aborted record: the job resumes and hits the
        // same deterministic stage-2 failure, concluding cleanly.
        1 => {
            let err = handles
                .into_iter()
                .next()
                .unwrap()
                .join()
                .expect_err("stage 2 fails again on resume");
            assert!(!matches!(err, DbError::SimulatedCrash(_)));
        }
        n => panic!("expected 0 or 1 resumed jobs, got {n}"),
    }
}
