//! The transformer: orchestrates the four steps end to end.
//!
//! ```text
//! prepare → fuzzy mark → initial population → ⟳ propagate/analyze →
//! synchronize → post-sync propagation → drop sources
//! ```
//!
//! A transformation normally runs on its own thread
//! ([`Transformer::spawn_foj`] / [`Transformer::spawn_split`]) as "a
//! low priority background process" while user transactions keep
//! executing; the returned [`TransformHandle`] supports waiting and
//! aborting ("aborting the transformation simply means that log
//! propagation is stopped, and that the transformed tables are
//! deleted", §6).

use crate::cc::Readiness;
use crate::foj::FojMapping;
use crate::operator::TransformOperator;
use crate::propagate::Propagator;
use crate::report::{PopulationStats, TransformReport};
use crate::spec::{FojSpec, NonConvergencePolicy, SplitMode, SplitSpec, TransformOptions};
use crate::split::SplitMapping;
use crate::sync::synchronize;
use crate::union::{UnionMapping, UnionSpec};
use morph_common::{DbError, DbResult};
use morph_engine::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Log records allowed to accumulate behind a transformation's cursor
/// before in-memory log truncation runs (≈ tens of MB; see
/// `Transformer::drive`).
const TRUNCATE_SPAN: u64 = 262_144;

/// Entry points for running transformations.
pub struct Transformer;

/// Names involved in a transformation, for cleanup and final drops.
struct Names {
    sources: Vec<String>,
    targets: Vec<String>,
    /// Internal bookkeeping tables (P) to drop at completion.
    internal: Vec<String>,
}

impl Transformer {
    /// Run a FOJ transformation synchronously on the current thread.
    pub fn run_foj(
        db: &Arc<Database>,
        spec: FojSpec,
        options: TransformOptions,
    ) -> DbResult<TransformReport> {
        let abort = AtomicBool::new(false);
        Self::run_foj_with(db, spec, options, &abort)
    }

    /// Run a split transformation synchronously on the current thread.
    pub fn run_split(
        db: &Arc<Database>,
        spec: SplitSpec,
        options: TransformOptions,
    ) -> DbResult<TransformReport> {
        let abort = AtomicBool::new(false);
        Self::run_split_with(db, spec, options, &abort)
    }

    /// Run a union (horizontal merge) transformation synchronously.
    pub fn run_union(
        db: &Arc<Database>,
        spec: UnionSpec,
        options: TransformOptions,
    ) -> DbResult<TransformReport> {
        let abort = AtomicBool::new(false);
        Self::run_union_with(db, spec, options, &abort)
    }

    /// Spawn a union transformation on a background thread.
    pub fn spawn_union(
        db: Arc<Database>,
        spec: UnionSpec,
        options: TransformOptions,
    ) -> TransformHandle {
        let abort = Arc::new(AtomicBool::new(false));
        let abort2 = Arc::clone(&abort);
        let join = std::thread::spawn(move || Self::run_union_with(&db, spec, options, &abort2));
        TransformHandle { join, abort }
    }

    fn run_union_with(
        db: &Arc<Database>,
        spec: UnionSpec,
        options: TransformOptions,
        abort: &AtomicBool,
    ) -> DbResult<TransformReport> {
        // morph-lint: allow(nondet, phase timing stats for the report; wall time never enters table or WAL state)
        let t0 = Instant::now();
        let mapping = UnionMapping::prepare(db, &spec)?;
        let prepare = t0.elapsed();
        let names = Names {
            sources: vec![spec.r_table.clone(), spec.s_table.clone()],
            targets: vec![spec.target.clone()],
            internal: vec![],
        };
        Self::drive(db, Box::new(mapping), options, abort, t0, prepare, names)
    }

    /// Spawn a FOJ transformation on a background thread.
    pub fn spawn_foj(
        db: Arc<Database>,
        spec: FojSpec,
        options: TransformOptions,
    ) -> TransformHandle {
        let abort = Arc::new(AtomicBool::new(false));
        let abort2 = Arc::clone(&abort);
        let join = std::thread::spawn(move || Self::run_foj_with(&db, spec, options, &abort2));
        TransformHandle { join, abort }
    }

    /// Spawn a split transformation on a background thread.
    pub fn spawn_split(
        db: Arc<Database>,
        spec: SplitSpec,
        options: TransformOptions,
    ) -> TransformHandle {
        let abort = Arc::new(AtomicBool::new(false));
        let abort2 = Arc::clone(&abort);
        let join = std::thread::spawn(move || Self::run_split_with(&db, spec, options, &abort2));
        TransformHandle { join, abort }
    }

    fn run_foj_with(
        db: &Arc<Database>,
        spec: FojSpec,
        options: TransformOptions,
        abort: &AtomicBool,
    ) -> DbResult<TransformReport> {
        // morph-lint: allow(nondet, phase timing stats for the report; wall time never enters table or WAL state)
        let t0 = Instant::now();
        let mapping = FojMapping::prepare(db, &spec)?;
        let prepare = t0.elapsed();
        let names = Names {
            sources: vec![spec.r_table.clone(), spec.s_table.clone()],
            targets: vec![spec.target.clone()],
            internal: vec![],
        };
        Self::drive(db, Box::new(mapping), options, abort, t0, prepare, names)
    }

    fn run_split_with(
        db: &Arc<Database>,
        spec: SplitSpec,
        options: TransformOptions,
        abort: &AtomicBool,
    ) -> DbResult<TransformReport> {
        // morph-lint: allow(nondet, phase timing stats for the report; wall time never enters table or WAL state)
        let t0 = Instant::now();
        let mapping = SplitMapping::prepare(db, &spec)?;
        let prepare = t0.elapsed();
        let (targets, internal) = match spec.mode {
            SplitMode::SeparateR => (vec![spec.r_target.clone(), spec.s_target.clone()], vec![]),
            SplitMode::RenameInPlace => (
                vec![spec.s_target.clone()],
                vec![format!("__morph_p_{}", spec.source)],
            ),
        };
        let names = Names {
            sources: vec![spec.source.clone()],
            targets,
            internal,
        };
        Self::drive(db, Box::new(mapping), options, abort, t0, prepare, names)
    }

    /// The common four-step driver, generic over the operator.
    fn drive(
        db: &Arc<Database>,
        mut oper: Box<dyn TransformOperator>,
        options: TransformOptions,
        abort: &AtomicBool,
        t0: Instant,
        prepare: Duration,
        names: Names,
    ) -> DbResult<TransformReport> {
        let mut report = TransformReport {
            prepare,
            ..Default::default()
        };
        let deadline = options.deadline.map(|d| t0 + d);
        let cleanup = |db: &Database| Self::cleanup(db, &names);

        // --- initial population (§3.2) ---
        if let Err(e) = db.crash_point("transform.prepared") {
            cleanup(db);
            return Err(e);
        }
        // morph-lint: allow(nondet, phase timing stats for the report; wall time never enters table or WAL state)
        let p0 = Instant::now();
        let (_, start_lsn, _) = db.write_fuzzy_mark();
        let mut prop =
            Propagator::new(db, start_lsn, options.priority).with_parallel(options.parallel);
        // Pin the log at our cursor so concurrent truncation (memory
        // reclamation on long-running systems) never outruns us; the
        // guard self-releases on every exit path.
        let log_guard = db.protect_log(start_lsn);
        let populated = if options.parallel.copy_workers > 1 {
            oper.populate_parallel(
                db,
                options.population_chunk,
                options.parallel.copy_workers,
                options.priority,
            )
        } else {
            oper.populate(db, options.population_chunk)
        };
        let (rows_read, rows_written) = match populated {
            Ok(v) => v,
            Err(e) => {
                cleanup(db);
                return Err(e);
            }
        };
        if let Err(e) = db.crash_point("transform.populated") {
            cleanup(db);
            return Err(e);
        }
        report.population = PopulationStats {
            duration: p0.elapsed(),
            rows_read,
            rows_written,
        };

        // --- log propagation + analysis loop (§3.3) ---
        let mut prev_backlog = usize::MAX;
        let mut growth_streak = 0u32;
        loop {
            // Crash-simulation point *between* propagation iterations.
            if let Err(e) = db.crash_point("transform.iteration") {
                cleanup(db);
                return Err(e);
            }
            if abort.load(Ordering::Relaxed) {
                cleanup(db);
                return Err(DbError::TransformationAborted("aborted by request".into()));
            }
            // morph-lint: allow(nondet, operator deadline guard; wall-time bound on total runtime, never replayed state)
            if deadline.is_some_and(|d| Instant::now() > d) {
                cleanup(db);
                return Err(DbError::TransformationAborted(
                    "wall-clock deadline exceeded during propagation".into(),
                ));
            }
            let stats = match prop.iterate(
                db,
                &mut *oper,
                options.batch_size,
                options.cc_interval,
                abort,
            ) {
                Ok(s) => s,
                Err(e) => {
                    cleanup(db);
                    return Err(e);
                }
            };
            let backlog = stats.backlog_after;
            report.iterations.push(stats);
            // Advance the truncation horizon and reclaim log memory the
            // workload no longer needs (bounded-memory operation; the
            // §3.3 background process may run for a long time). The
            // reclamation itself is amortized: it briefly blocks
            // transaction admission and memmoves the retained log, so
            // it only runs once a sizable span has accumulated.
            log_guard.update(prop.cursor_lsn());
            if prop
                .cursor_lsn()
                .0
                .saturating_sub(db.log().truncated_until().0)
                > TRUNCATE_SPAN
            {
                db.truncate_log()?;
            }

            let readiness = oper.readiness();
            if backlog <= options.sync_threshold {
                match readiness {
                    Readiness::Ready => break,
                    Readiness::Inconsistent { keys } => {
                        // Caught up, but the data itself contradicts the
                        // functional dependency (paper Example 1).
                        if report.iterations.len() as u32 >= options.max_iterations {
                            cleanup(db);
                            return Err(DbError::InconsistentSplitData {
                                key: format!("{keys:?}"),
                                detail: "contributing rows disagree; repair the source data".into(),
                            });
                        }
                    }
                    Readiness::Pending { .. } => {}
                }
            }

            // Convergence analysis (§3.3): if the backlog refuses to
            // shrink, the workload outruns the propagator at this
            // priority.
            if backlog > options.sync_threshold && backlog >= prev_backlog {
                growth_streak += 1;
            } else {
                growth_streak = 0;
            }
            prev_backlog = backlog;
            let exhausted = report.iterations.len() as u32 >= options.max_iterations;
            if growth_streak >= 5 || exhausted {
                match options.non_convergence {
                    NonConvergencePolicy::Escalate { factor } if prop.priority() < 1.0 => {
                        prop.escalate(factor);
                        growth_streak = 0;
                    }
                    _ => {
                        cleanup(db);
                        return Err(DbError::CannotConverge {
                            iterations: report.iterations.len() as u32,
                            backlog,
                        });
                    }
                }
            }
        }

        // --- synchronization (§3.4) ---
        if let Err(e) = db.crash_point("transform.pre_sync") {
            cleanup(db);
            return Err(e);
        }
        let outcome = match synchronize(db, &mut *oper, &mut prop, &options) {
            Ok(o) => o,
            Err(e) => {
                cleanup(db);
                return Err(e);
            }
        };
        report.sync = outcome.stats;
        // Post-sync crash point: targets are published; the abort path
        // must no longer delete them, only drop the interceptor.
        if let Err(e) = db.crash_point("transform.synced") {
            if let Some(tok) = outcome.interceptor_token {
                db.remove_interceptor(tok);
            }
            return Err(e);
        }

        // --- post-synchronization propagation ---
        // morph-lint: allow(nondet, phase timing stats for the report; wall time never enters table or WAL state)
        let post0 = Instant::now();
        let post_deadline = deadline.unwrap_or_else(|| post0 + Duration::from_secs(60));
        while prop.outstanding() > 0 {
            // morph-lint: allow(nondet, operator deadline guard; wall-time bound on total runtime, never replayed state)
            if Instant::now() > post_deadline {
                if let Some(tok) = outcome.interceptor_token {
                    db.remove_interceptor(tok);
                }
                return Err(DbError::TransformationAborted(format!(
                    "{} grandfathered transactions did not finish in time",
                    prop.outstanding()
                )));
            }
            let stats = prop.iterate(
                db,
                &mut *oper,
                options.batch_size,
                options.cc_interval,
                abort,
            )?;
            report.post_records += stats.records;
            log_guard.update(prop.cursor_lsn());
            if prop
                .cursor_lsn()
                .0
                .saturating_sub(db.log().truncated_until().0)
                > TRUNCATE_SPAN
            {
                db.truncate_log()?;
            }
            if stats.records == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        if let Some(tok) = outcome.interceptor_token {
            db.remove_interceptor(tok);
        }
        report.post_duration = post0.elapsed();
        db.crash_point("transform.finalizing")?;

        // --- final catalog cleanup ---
        for name in &names.internal {
            let _ = db.catalog().drop_table(name);
        }
        // Final schema surgery — a rename-in-place split projects the
        // dependent columns away now that no old transaction can touch
        // them (briefly latches R); a no-op for the other operators.
        oper.finalize(db)?;
        if !options.retain_sources {
            for name in &names.sources {
                // Blocking commit (or a rename) may already have
                // removed the name.
                let _ = db.catalog().drop_table(name);
            }
        }
        report.cc_rounds = oper.cc_rounds();
        report.total = t0.elapsed();
        Ok(report)
    }

    /// Abort-path cleanup: "log propagation is stopped, and the
    /// transformed tables are deleted" (§6). Sources were never frozen
    /// before synchronization, so nothing else needs undoing.
    fn cleanup(db: &Database, names: &Names) {
        for name in names.targets.iter().chain(&names.internal) {
            let _ = db.catalog().drop_table(name);
        }
    }
}

/// Handle to a transformation running on a background thread.
pub struct TransformHandle {
    join: JoinHandle<DbResult<TransformReport>>,
    abort: Arc<AtomicBool>,
}

impl TransformHandle {
    /// Request the transformation abort at the next batch boundary.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Whether the background thread has finished.
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// Wait for the transformation to finish.
    pub fn join(self) -> DbResult<TransformReport> {
        self.join
            .join()
            .map_err(|_| DbError::Internal("transformer thread panicked".into()))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foj::figure1_schemas;
    use crate::spec::SyncStrategy;
    use morph_common::{Key, Value};

    fn db_with_sources(rows_r: usize, rows_s: usize) -> Arc<Database> {
        let db = Arc::new(Database::new());
        let (rs, ss) = figure1_schemas();
        db.create_table("R", rs).unwrap();
        db.create_table("S", ss).unwrap();
        let txn = db.begin();
        for i in 0..rows_r {
            db.insert(
                txn,
                "R",
                vec![
                    Value::Int(i as i64),
                    Value::str("b"),
                    Value::str(format!("j{}", i % rows_s.max(1))),
                ],
            )
            .unwrap();
        }
        for j in 0..rows_s {
            db.insert(txn, "S", vec![Value::str(format!("j{j}")), Value::str("d")])
                .unwrap();
        }
        db.commit(txn).unwrap();
        db
    }

    fn opts() -> TransformOptions {
        TransformOptions::default()
            .deadline(Duration::from_secs(30))
            .retain_sources()
    }

    #[test]
    fn quiescent_foj_end_to_end() {
        let db = db_with_sources(100, 10);
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let report = Transformer::run_foj(&db, spec, opts()).unwrap();
        assert!(report.population.rows_read >= 110);
        assert!(report.sync.latch_pause < Duration::from_millis(50));
        let t = db.catalog().get("T").unwrap();
        assert_eq!(t.len(), 100); // every S value matched
    }

    #[test]
    fn foj_under_concurrent_updates_converges() {
        let db = db_with_sources(200, 8);
        let stop = Arc::new(AtomicBool::new(false));
        let db2 = Arc::clone(&db);
        let stop2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let mut i = 0u64;
            let mut committed = 0u32;
            while !stop2.load(Ordering::Relaxed) {
                i += 1;
                let txn = db2.begin();
                let key = Key::single((i % 200) as i64);
                let res = db2.update(txn, "R", &key, &[(1, Value::str(format!("w{i}")))]);
                match res {
                    Ok(()) => {
                        if db2.commit(txn).is_ok() {
                            committed += 1;
                        }
                    }
                    Err(_) => {
                        let _ = db2.abort(txn);
                    }
                }
                // Pace the writer: unoptimized test builds make rule
                // application slower than this tight loop, which would
                // turn the test into a (legitimate) non-convergence
                // scenario. Convergence-vs-load is characterized by the
                // release-mode benches instead.
                std::thread::sleep(Duration::from_micros(50));
            }
            committed
        });

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let options = opts()
            .priority(0.8)
            .non_convergence(crate::spec::NonConvergencePolicy::Escalate { factor: 2.0 });
        let handle = Transformer::spawn_foj(Arc::clone(&db), spec, options);
        let report = handle.join().expect("transformation");
        stop.store(true, Ordering::Relaxed);
        let committed = worker.join().unwrap();
        assert!(committed > 0, "workload must have made progress");
        assert!(report.records_processed() > 0);

        // The frozen sources (retained) reflect the final state; T must
        // equal their reference FOJ. Rebuild a mapping over the
        // existing tables for verification.
        let t = db.catalog().get("T").unwrap();
        assert!(t.len() >= 200);
    }

    #[test]
    fn split_under_concurrent_updates_converges() {
        let db = Arc::new(Database::new());
        let ts = morph_common::Schema::builder()
            .column("a", morph_common::ColumnType::Int)
            .nullable("b", morph_common::ColumnType::Str)
            .nullable("c", morph_common::ColumnType::Str)
            .nullable("d", morph_common::ColumnType::Str)
            .primary_key(&["a"])
            .build()
            .unwrap();
        db.create_table("T", ts).unwrap();
        let txn = db.begin();
        for i in 0..300i64 {
            let c = format!("c{}", i % 20);
            db.insert(
                txn,
                "T",
                vec![
                    Value::Int(i),
                    Value::str("b"),
                    Value::str(&c),
                    Value::str(format!("dep-{c}")),
                ],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let db2 = Arc::clone(&db);
        let stop2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                i += 1;
                let txn = db2.begin();
                // Non-split, non-dependent column updates keep the FD
                // intact without coordinating with other writers.
                let key = Key::single((i % 300) as i64);
                match db2.update(txn, "T", &key, &[(1, Value::str(format!("w{i}")))]) {
                    Ok(()) => {
                        let _ = db2.commit(txn);
                    }
                    Err(_) => {
                        let _ = db2.abort(txn);
                    }
                }
            }
        });

        let spec = SplitSpec::new("T", "R2", "S2", &["a", "b", "c"], "c", &["d"]);
        let handle = Transformer::spawn_split(Arc::clone(&db), spec, opts());
        let report = handle.join().expect("transformation");
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();

        let r2 = db.catalog().get("R2").unwrap();
        let s2 = db.catalog().get("S2").unwrap();
        assert_eq!(r2.len(), 300);
        assert_eq!(s2.len(), 20);
        // Every S counter adds up to the R count.
        let total: u32 = s2.snapshot().iter().map(|(_, row)| row.counter).sum();
        assert_eq!(total as usize, 300);
        assert!(report.sync.latch_pause < Duration::from_millis(100));

        // The retained source equals the targets (final verification).
        let m = {
            // Rebuild a mapping view for the verifier over the existing
            // tables: prepare() would recreate tables, so verify
            // manually through reference_split.
            let t = db.catalog().get("T").unwrap();
            let t_rows: Vec<Vec<Value>> = t.snapshot().into_iter().map(|(_, r)| r.values).collect();
            t_rows
        };
        assert_eq!(m.len(), 300);
    }

    #[test]
    fn doomed_transactions_abort_under_nonblocking_abort() {
        let db = db_with_sources(50, 5);
        // A long-lived transaction holding locks on R at sync time.
        let old = db.begin();
        db.update(old, "R", &Key::single(1), &[(1, Value::str("dirty"))])
            .unwrap();

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let db2 = Arc::clone(&db);
        let handle =
            Transformer::spawn_foj(db2, spec, opts().strategy(SyncStrategy::NonBlockingAbort));
        // Wait until the old transaction is doomed, then roll it back
        // (a real client would see TxnDoomed on its next operation).
        let t0 = Instant::now();
        loop {
            match db.update(old, "R", &Key::single(2), &[(1, Value::str("x"))]) {
                Err(DbError::TxnDoomed(_)) => {
                    db.abort(old).unwrap();
                    break;
                }
                Err(DbError::TableFrozen(_)) => {
                    // Frozen before doomed is also possible — still
                    // meant to abort.
                    db.abort(old).unwrap();
                    break;
                }
                Ok(()) => {
                    if t0.elapsed() > Duration::from_secs(20) {
                        panic!("old transaction never doomed");
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let report = handle.join().expect("transformation");
        assert!(report.sync.old_txns >= 1);
        // Dirty update was rolled back: T must not contain it.
        let t = db.catalog().get("T").unwrap();
        let rows = t.snapshot();
        assert!(rows.iter().all(|(_, r)| r.values[1] != Value::str("dirty")));
    }

    #[test]
    fn nonblocking_commit_lets_old_txn_finish() {
        let db = db_with_sources(50, 5);
        let old = db.begin();
        db.update(old, "R", &Key::single(1), &[(1, Value::str("survives"))])
            .unwrap();

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let handle = Transformer::spawn_foj(
            Arc::clone(&db),
            spec,
            opts().strategy(SyncStrategy::NonBlockingCommit),
        );
        // Wait for sync to pass (the source freezes for others but the
        // old transaction keeps working).
        let t0 = Instant::now();
        while db.catalog().get("R").unwrap().state() == morph_storage::TableState::Active {
            if t0.elapsed() > Duration::from_secs(20) {
                panic!("sync never happened");
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // The old transaction continues and commits.
        db.update(old, "R", &Key::single(2), &[(1, Value::str("late"))])
            .unwrap();
        db.commit(old).unwrap();

        let report = handle.join().expect("transformation");
        assert_eq!(report.sync.strategy, SyncStrategy::NonBlockingCommit);
        let t = db.catalog().get("T").unwrap();
        let rows = t.snapshot();
        assert!(
            rows.iter()
                .any(|(_, r)| r.values[1] == Value::str("survives")),
            "committed old-txn work must be in T"
        );
        assert!(rows.iter().any(|(_, r)| r.values[1] == Value::str("late")));
    }

    #[test]
    fn blocking_commit_strategy_completes() {
        let db = db_with_sources(40, 4);
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let report =
            Transformer::run_foj(&db, spec, opts().strategy(SyncStrategy::BlockingCommit)).unwrap();
        assert_eq!(report.sync.strategy, SyncStrategy::BlockingCommit);
        assert_eq!(db.catalog().get("T").unwrap().len(), 40);
    }

    #[test]
    fn abort_deletes_targets_and_leaves_sources_alone() {
        let db = db_with_sources(20_000, 10);
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        // Low priority plus a tight deadline: the 20k-row population at
        // 1% priority cannot finish within it, so the abort path runs
        // deterministically (an explicit abort() is raced in as well).
        let handle = Transformer::spawn_foj(
            Arc::clone(&db),
            spec,
            TransformOptions::default()
                .priority(0.01)
                .deadline(Duration::from_millis(250)),
        );
        std::thread::sleep(Duration::from_millis(20));
        handle.abort();
        let err = handle.join().unwrap_err();
        assert!(matches!(
            err,
            DbError::TransformationAborted(_) | DbError::CannotConverge { .. }
        ));
        assert!(!db.catalog().exists("T"), "targets must be deleted");
        assert!(db.catalog().exists("R") && db.catalog().exists("S"));
        // Sources stay fully usable.
        let txn = db.begin();
        db.update(txn, "R", &Key::single(0), &[(1, Value::str("after"))])
            .unwrap();
        db.commit(txn).unwrap();
    }

    #[test]
    fn rename_in_place_split_end_to_end() {
        let db = Arc::new(Database::new());
        let ts = morph_common::Schema::builder()
            .column("a", morph_common::ColumnType::Int)
            .nullable("c", morph_common::ColumnType::Str)
            .nullable("d", morph_common::ColumnType::Str)
            .primary_key(&["a"])
            .build()
            .unwrap();
        db.create_table("T", ts).unwrap();
        let txn = db.begin();
        for i in 0..50i64 {
            let c = format!("c{}", i % 5);
            db.insert(
                txn,
                "T",
                vec![
                    Value::Int(i),
                    Value::str(&c),
                    Value::str(format!("dep-{c}")),
                ],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();

        let spec = SplitSpec::new("T", "R", "S", &["a", "c"], "c", &["d"]).rename_in_place();
        let report = Transformer::run_split(&db, spec, opts()).unwrap();
        assert!(report.total > Duration::ZERO);
        // T is gone (renamed), R has the projected schema, S exists.
        assert!(!db.catalog().exists("T"));
        let r = db.catalog().get("R").unwrap();
        assert_eq!(r.schema().arity(), 2); // a, c — d projected away
        assert_eq!(r.len(), 50);
        assert_eq!(db.catalog().get("S").unwrap().len(), 5);
        assert!(!db.catalog().exists("__morph_p_T"));
    }
}
