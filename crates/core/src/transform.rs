//! The transformer: orchestrates the four steps end to end.
//!
//! ```text
//! prepare → fuzzy mark → initial population → ⟳ propagate/analyze →
//! synchronize → post-sync propagation → drop sources
//! ```
//!
//! A transformation normally runs on its own thread
//! ([`Transformer::spawn_foj`] / [`Transformer::spawn_split`]) as "a
//! low priority background process" while user transactions keep
//! executing; the returned [`TransformHandle`] supports waiting and
//! aborting ("aborting the transformation simply means that log
//! propagation is stopped, and that the transformed tables are
//! deleted", §6).

use crate::cc::Readiness;
use crate::foj::FojMapping;
use crate::operator::TransformOperator;
use crate::pool::ApplyPool;
use crate::progress::{Progress, ProgressHandle, ProgressPhase};
use crate::propagate::Propagator;
use crate::report::{PopulationStats, TransformReport};
use crate::spec::{
    FojSpec, NonConvergencePolicy, SplitMode, SplitSpec, TransformMode, TransformOptions,
};
use crate::split::SplitMapping;
use crate::sync::synchronize;
use crate::union::{UnionMapping, UnionSpec};
use morph_common::{DbError, DbResult};
use morph_engine::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Log records allowed to accumulate behind a transformation's cursor
/// before in-memory log truncation runs (≈ tens of MB; see
/// `Transformer::drive`).
const TRUNCATE_SPAN: u64 = 262_144;

/// Entry points for running transformations.
pub struct Transformer;

/// Names involved in a transformation, for cleanup and final drops.
pub(crate) struct Names {
    sources: Vec<String>,
    targets: Vec<String>,
    /// Internal bookkeeping tables (P) to drop at completion.
    internal: Vec<String>,
}

/// A compiled transformation plan: which operator to run, over which
/// tables. This is the seam between the declarative migration
/// front-end (`morph-orchestrator`) and the §3 pipeline — a
/// declarative `MigrationSpec` compiles down to one plan per stage,
/// and a plan is everything [`TransformJob::prepare`] needs.
#[derive(Clone, Debug)]
pub enum TransformPlan {
    /// Full outer join of two tables (§4.1).
    Foj(FojSpec),
    /// Vertical split with duplicate elimination (§5).
    Split(SplitSpec),
    /// Horizontal merge of two same-schema tables.
    Union(UnionSpec),
}

impl TransformPlan {
    /// Source tables the plan reads (and freezes at synchronization).
    pub fn source_tables(&self) -> Vec<String> {
        match self {
            TransformPlan::Foj(s) => vec![s.r_table.clone(), s.s_table.clone()],
            TransformPlan::Split(s) => vec![s.source.clone()],
            TransformPlan::Union(s) => vec![s.r_table.clone(), s.s_table.clone()],
        }
    }

    /// Target tables the plan creates (or renames into).
    pub fn target_tables(&self) -> Vec<String> {
        match self {
            TransformPlan::Foj(s) => vec![s.target.clone()],
            TransformPlan::Split(s) => vec![s.r_target.clone(), s.s_target.clone()],
            TransformPlan::Union(s) => vec![s.target.clone()],
        }
    }

    /// Every table name the plan touches — the conflict-detection set
    /// used by the orchestrator's job registry.
    pub fn tables(&self) -> Vec<String> {
        let mut all = self.source_tables();
        all.extend(self.target_tables());
        all
    }

    /// Prepare the operator (creates target tables) and collect the
    /// name sets used for cleanup and final drops.
    pub(crate) fn prepare_operator(
        &self,
        db: &Arc<Database>,
    ) -> DbResult<(Box<dyn TransformOperator>, Names)> {
        match self {
            TransformPlan::Foj(spec) => {
                let mapping = FojMapping::prepare(db, spec)?;
                let names = Names {
                    sources: vec![spec.r_table.clone(), spec.s_table.clone()],
                    targets: vec![spec.target.clone()],
                    internal: vec![],
                };
                Ok((Box::new(mapping), names))
            }
            TransformPlan::Split(spec) => {
                let mapping = SplitMapping::prepare(db, spec)?;
                let (targets, internal) = match spec.mode {
                    SplitMode::SeparateR => {
                        (vec![spec.r_target.clone(), spec.s_target.clone()], vec![])
                    }
                    SplitMode::RenameInPlace => (
                        vec![spec.s_target.clone()],
                        vec![format!("__morph_p_{}", spec.source)],
                    ),
                };
                let names = Names {
                    sources: vec![spec.source.clone()],
                    targets,
                    internal,
                };
                Ok((Box::new(mapping), names))
            }
            TransformPlan::Union(spec) => {
                let mapping = UnionMapping::prepare(db, spec)?;
                let names = Names {
                    sources: vec![spec.r_table.clone(), spec.s_table.clone()],
                    targets: vec![spec.target.clone()],
                    internal: vec![],
                };
                Ok((Box::new(mapping), names))
            }
        }
    }
}

/// A transformation broken into its §3 phases, each a separate method,
/// so a driver (the synchronous [`Transformer`] wrappers or the
/// crash-recoverable orchestrator) can persist state between phases,
/// pause between propagation iterations, and publish live progress.
///
/// The phase sequence is `prepare → copy → propagate → synchronize →
/// finish`; each method performs exactly the cleanup the monolithic
/// driver used to perform on its error paths (targets dropped before
/// synchronization, only the lock interceptor removed after).
pub struct TransformJob {
    db: Arc<Database>,
    oper: Box<dyn TransformOperator>,
    options: TransformOptions,
    names: Names,
    report: TransformReport,
    t0: Instant,
    deadline: Option<Instant>,
    prop: Option<Propagator>,
    log_guard: Option<morph_engine::LogProtection>,
    interceptor_token: Option<u64>,
    progress: Arc<Progress>,
    synced: bool,
}

impl TransformJob {
    /// Compile and prepare a plan: creates target tables and returns a
    /// job parked before the copy phase.
    pub fn prepare(
        db: &Arc<Database>,
        plan: &TransformPlan,
        options: TransformOptions,
    ) -> DbResult<TransformJob> {
        Self::prepare_with_progress(db, plan, options, Progress::new())
    }

    /// Like [`TransformJob::prepare`], but publishing into
    /// caller-supplied counters — a multi-stage migration threads one
    /// [`Progress`] through all its stages so observers see a single
    /// continuous stream.
    pub fn prepare_with_progress(
        db: &Arc<Database>,
        plan: &TransformPlan,
        options: TransformOptions,
        progress: Arc<Progress>,
    ) -> DbResult<TransformJob> {
        // morph-lint: allow(nondet, phase timing stats for the report; wall time never enters table or WAL state)
        let t0 = Instant::now();
        let (oper, names) = plan.prepare_operator(db)?;
        let prepare = t0.elapsed();
        let deadline = options.deadline.map(|d| t0 + d);
        progress.set_phase(ProgressPhase::Preparing);
        Ok(TransformJob {
            db: Arc::clone(db),
            oper,
            options,
            names,
            report: TransformReport {
                prepare,
                ..Default::default()
            },
            t0,
            deadline,
            prop: None,
            log_guard: None,
            interceptor_token: None,
            progress,
            synced: false,
        })
    }

    /// Cheap read-only view of the job's live counters; safe to poll
    /// from any thread without touching engine locks.
    pub fn progress(&self) -> ProgressHandle {
        ProgressHandle::new(Arc::clone(&self.progress))
    }

    /// Whether synchronization has completed (targets are published;
    /// aborting must no longer delete them).
    pub fn synced(&self) -> bool {
        self.synced
    }

    /// Target tables this job creates.
    pub fn target_names(&self) -> &[String] {
        &self.names.targets
    }

    /// Source tables this job reads.
    pub fn source_names(&self) -> &[String] {
        &self.names.sources
    }

    /// Initial fuzzy population (§3.2): writes the fuzzy mark, pins the
    /// log at the propagation cursor and copies the sources.
    pub fn copy(&mut self) -> DbResult<()> {
        self.progress.set_phase(ProgressPhase::Copying);
        if let Err(e) = self.db.crash_point("transform.prepared") {
            self.cleanup();
            return Err(e);
        }
        // morph-lint: allow(nondet, phase timing stats for the report; wall time never enters table or WAL state)
        let p0 = Instant::now();
        let (_, start_lsn, _) = self.db.write_fuzzy_mark();
        if self.options.mode == TransformMode::Snapshot {
            // Snapshot-mode population: pin one clean MVCC cut, shared
            // by every source table, for the scan loops to read
            // through. Taken *after* the fuzzy mark — propagation
            // still starts at `start_lsn`, so records the cut already
            // reflects are re-applied idempotently, exactly as over a
            // fuzzy image; starting propagation at the snapshot
            // instead would lose updates of transactions active at the
            // mark (the §3.2 trap the mark exists to close).
            if !self.db.mvcc_enabled() {
                self.db.enable_mvcc();
            }
            let snap = match self.db.begin_snapshot() {
                Ok(s) => s,
                Err(e) => {
                    self.cleanup();
                    return Err(e);
                }
            };
            for id in self.oper.source_ids() {
                self.db.register_copy_snapshot(id, Arc::clone(&snap));
            }
        }
        let mut prop = Propagator::new(&self.db, start_lsn, self.options.priority)
            .with_parallel(self.options.parallel);
        let apply_width = self.options.parallel.effective_apply_shards();
        if apply_width > 1 {
            // Spawn the persistent apply pool once, here, as a
            // crash-instrumented step of the job; every parallel batch
            // until `finish` reuses these workers. Serial jobs never
            // reach the pool (or its crash point).
            let pool = match ApplyPool::for_db(apply_width, Arc::clone(&self.db)) {
                Ok(pool) => pool,
                Err(e) => {
                    self.cleanup();
                    return Err(e);
                }
            };
            prop = prop.with_pool(Arc::new(pool));
        }
        self.prop = Some(prop);
        // Pin the log at our cursor so concurrent truncation (memory
        // reclamation on long-running systems) never outruns us; the
        // guard self-releases on every exit path.
        self.log_guard = Some(self.db.protect_log(start_lsn));
        let populated = if self.options.parallel.copy_workers > 1 {
            self.oper.populate_parallel(
                &self.db,
                self.options.population_chunk,
                self.options.parallel.copy_workers,
                self.options.priority,
            )
        } else {
            self.oper.populate(&self.db, self.options.population_chunk)
        };
        let (rows_read, rows_written) = match populated {
            Ok(v) => v,
            Err(e) => {
                self.cleanup();
                return Err(e);
            }
        };
        // Population is done: release the clean cut (and its GC pin).
        self.clear_copy_snapshots();
        if let Err(e) = self.db.crash_point("transform.populated") {
            self.cleanup();
            return Err(e);
        }
        self.report.population = PopulationStats {
            duration: p0.elapsed(),
            rows_read,
            rows_written,
        };
        self.progress.set_rows_copied(rows_written);
        Ok(())
    }

    /// Log propagation + convergence analysis loop (§3.3). `pause`
    /// parks the job between iterations without releasing anything;
    /// the deadline clock keeps ticking while parked.
    pub fn propagate(&mut self, abort: &AtomicBool, pause: Option<&AtomicBool>) -> DbResult<()> {
        self.progress.set_phase(ProgressPhase::Propagating);
        let mut prev_backlog = usize::MAX;
        let mut growth_streak = 0u32;
        loop {
            // Live pause gate: the orchestrator parks the job between
            // iterations; abort still wins while parked.
            while pause.is_some_and(|p| p.load(Ordering::Relaxed)) {
                if abort.load(Ordering::Relaxed) {
                    self.cleanup();
                    return Err(DbError::TransformationAborted("aborted by request".into()));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            // Crash-simulation point *between* propagation iterations.
            if let Err(e) = self.db.crash_point("transform.iteration") {
                self.cleanup();
                return Err(e);
            }
            if abort.load(Ordering::Relaxed) {
                self.cleanup();
                return Err(DbError::TransformationAborted("aborted by request".into()));
            }
            // morph-lint: allow(nondet, operator deadline guard; wall-time bound on total runtime, never replayed state)
            if self.deadline.is_some_and(|d| Instant::now() > d) {
                self.cleanup();
                return Err(DbError::TransformationAborted(
                    "wall-clock deadline exceeded during propagation".into(),
                ));
            }
            let iterated = {
                let TransformJob {
                    db,
                    oper,
                    prop,
                    options,
                    ..
                } = &mut *self;
                let Some(prop) = prop.as_mut() else {
                    return Err(DbError::Internal("propagate before copy".into()));
                };
                prop.iterate(
                    db,
                    &mut **oper,
                    options.batch_size,
                    options.cc_interval,
                    abort,
                )
            };
            let stats = match iterated {
                Ok(s) => s,
                Err(e) => {
                    self.cleanup();
                    return Err(e);
                }
            };
            let backlog = stats.backlog_after;
            self.progress.add_records(stats.records);
            self.progress.set_backlog(backlog);
            self.progress.add_iteration();
            self.report.iterations.push(stats);
            // Advance the truncation horizon and reclaim log memory the
            // workload no longer needs (bounded-memory operation; the
            // §3.3 background process may run for a long time). The
            // reclamation itself is amortized: it briefly blocks
            // transaction admission and memmoves the retained log, so
            // it only runs once a sizable span has accumulated.
            self.advance_truncation()?;

            let readiness = self.oper.readiness();
            if backlog <= self.options.sync_threshold {
                match readiness {
                    Readiness::Ready => break,
                    Readiness::Inconsistent { keys } => {
                        // Caught up, but the data itself contradicts the
                        // functional dependency (paper Example 1).
                        if self.report.iterations.len() as u32 >= self.options.max_iterations {
                            self.cleanup();
                            return Err(DbError::InconsistentSplitData {
                                key: format!("{keys:?}"),
                                detail: "contributing rows disagree; repair the source data".into(),
                            });
                        }
                    }
                    Readiness::Pending { .. } => {}
                }
            }

            // Convergence analysis (§3.3): if the backlog refuses to
            // shrink, the workload outruns the propagator at this
            // priority.
            if backlog > self.options.sync_threshold && backlog >= prev_backlog {
                growth_streak += 1;
            } else {
                growth_streak = 0;
            }
            prev_backlog = backlog;
            let exhausted = self.report.iterations.len() as u32 >= self.options.max_iterations;
            if growth_streak >= 5 || exhausted {
                let priority = self.prop.as_ref().map_or(1.0, |p| p.priority());
                match self.options.non_convergence {
                    NonConvergencePolicy::Escalate { factor } if priority < 1.0 => {
                        if let Some(p) = self.prop.as_mut() {
                            p.escalate(factor);
                        }
                        growth_streak = 0;
                    }
                    _ => {
                        self.cleanup();
                        return Err(DbError::CannotConverge {
                            iterations: self.report.iterations.len() as u32,
                            backlog,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Synchronization (§3.4): freeze sources under the configured
    /// strategy and publish the targets.
    pub fn synchronize(&mut self) -> DbResult<()> {
        self.progress.set_phase(ProgressPhase::Syncing);
        if let Err(e) = self.db.crash_point("transform.pre_sync") {
            self.cleanup();
            return Err(e);
        }
        let synced = {
            let TransformJob {
                db,
                oper,
                prop,
                options,
                ..
            } = &mut *self;
            let Some(prop) = prop.as_mut() else {
                return Err(DbError::Internal("synchronize before copy".into()));
            };
            synchronize(db, &mut **oper, prop, options)
        };
        let outcome = match synced {
            Ok(o) => o,
            Err(e) => {
                self.cleanup();
                return Err(e);
            }
        };
        self.report.sync = outcome.stats;
        self.interceptor_token = outcome.interceptor_token;
        self.synced = true;
        // Post-sync crash point: targets are published; the abort path
        // must no longer delete them, only drop the interceptor.
        if let Err(e) = self.db.crash_point("transform.synced") {
            self.remove_interceptor();
            return Err(e);
        }
        Ok(())
    }

    /// Post-synchronization propagation (drain grandfathered
    /// transactions), final catalog cleanup and cutover. Returns the
    /// complete report; the job's only remaining use afterwards is its
    /// progress handle.
    pub fn finish(&mut self, abort: &AtomicBool) -> DbResult<TransformReport> {
        // morph-lint: allow(nondet, phase timing stats for the report; wall time never enters table or WAL state)
        let post0 = Instant::now();
        let post_deadline = self
            .deadline
            .unwrap_or_else(|| post0 + Duration::from_secs(60));
        while self.prop.as_ref().is_some_and(|p| p.outstanding() > 0) {
            // morph-lint: allow(nondet, operator deadline guard; wall-time bound on total runtime, never replayed state)
            if Instant::now() > post_deadline {
                let outstanding = self.prop.as_ref().map_or(0, |p| p.outstanding());
                self.remove_interceptor();
                return Err(DbError::TransformationAborted(format!(
                    "{outstanding} grandfathered transactions did not finish in time"
                )));
            }
            let stats = {
                let TransformJob {
                    db,
                    oper,
                    prop,
                    options,
                    ..
                } = &mut *self;
                let Some(prop) = prop.as_mut() else {
                    return Err(DbError::Internal("finish before copy".into()));
                };
                prop.iterate(
                    db,
                    &mut **oper,
                    options.batch_size,
                    options.cc_interval,
                    abort,
                )?
            };
            self.report.post_records += stats.records;
            self.progress.add_records(stats.records);
            self.advance_truncation()?;
            if stats.records == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        self.remove_interceptor();
        self.report.post_duration = post0.elapsed();
        self.db.crash_point("transform.finalizing")?;

        // --- final catalog cleanup ---
        for name in &self.names.internal {
            let _ = self.db.catalog().drop_table(name);
        }
        // Final schema surgery — a rename-in-place split projects the
        // dependent columns away now that no old transaction can touch
        // them (briefly latches R); a no-op for the other operators.
        self.oper.finalize(&self.db)?;
        if !self.options.retain_sources {
            for name in &self.names.sources {
                // Blocking commit (or a rename) may already have
                // removed the name.
                let _ = self.db.catalog().drop_table(name);
            }
        }
        self.report.cc_rounds = self.oper.cc_rounds();
        self.report.total = self.t0.elapsed();
        self.progress.set_phase(ProgressPhase::CutOver);
        // Release the log pin and propagation state; the report is the
        // job's final product. The pool is drained first (with its
        // crash point) so worker threads never outlive the job.
        if let Some(prop) = self.prop.as_mut() {
            self.report.pool = prop.pool_stats();
            prop.shutdown_pool()?;
        }
        self.log_guard = None;
        self.prop = None;
        Ok(std::mem::take(&mut self.report))
    }

    /// Abort-path cleanup: "log propagation is stopped, and the
    /// transformed tables are deleted" (§6). Sources were never frozen
    /// before synchronization, so nothing else needs undoing. After
    /// synchronization the targets are published and survive; only the
    /// interceptor would remain to remove (and it is removed on the
    /// post-sync error paths directly).
    pub fn cleanup(&self) {
        // Unpin any copy snapshot first (idempotent): a job that dies
        // during population must not leave a stale snapshot pinning
        // version GC forever.
        self.clear_copy_snapshots();
        if self.synced {
            return;
        }
        for name in self.names.targets.iter().chain(&self.names.internal) {
            let _ = self.db.catalog().drop_table(name);
        }
        self.progress.set_phase(ProgressPhase::Aborted);
    }

    /// Release the snapshot-mode copy pins for every source table.
    fn clear_copy_snapshots(&self) {
        for id in self.oper.source_ids() {
            self.db.clear_copy_snapshot(id);
        }
    }

    fn remove_interceptor(&mut self) {
        if let Some(tok) = self.interceptor_token.take() {
            self.db.remove_interceptor(tok);
        }
    }

    /// Advance the log-truncation horizon to the propagation cursor and
    /// reclaim the span behind it once large enough.
    fn advance_truncation(&mut self) -> DbResult<()> {
        let Some(prop) = self.prop.as_ref() else {
            return Ok(());
        };
        let cursor = prop.cursor_lsn();
        if let Some(guard) = &self.log_guard {
            guard.update(cursor);
        }
        if cursor.0.saturating_sub(self.db.log().truncated_until().0) > TRUNCATE_SPAN {
            self.db.truncate_log()?;
        }
        Ok(())
    }
}

impl Transformer {
    /// Run a FOJ transformation synchronously on the current thread.
    pub fn run_foj(
        db: &Arc<Database>,
        spec: FojSpec,
        options: TransformOptions,
    ) -> DbResult<TransformReport> {
        let abort = AtomicBool::new(false);
        Self::run_foj_with(db, spec, options, &abort)
    }

    /// Run a split transformation synchronously on the current thread.
    pub fn run_split(
        db: &Arc<Database>,
        spec: SplitSpec,
        options: TransformOptions,
    ) -> DbResult<TransformReport> {
        let abort = AtomicBool::new(false);
        Self::run_split_with(db, spec, options, &abort)
    }

    /// Run a union (horizontal merge) transformation synchronously.
    pub fn run_union(
        db: &Arc<Database>,
        spec: UnionSpec,
        options: TransformOptions,
    ) -> DbResult<TransformReport> {
        let abort = AtomicBool::new(false);
        Self::run_union_with(db, spec, options, &abort)
    }

    /// Spawn a union transformation on a background thread.
    pub fn spawn_union(
        db: Arc<Database>,
        spec: UnionSpec,
        options: TransformOptions,
    ) -> TransformHandle {
        let abort = Arc::new(AtomicBool::new(false));
        let abort2 = Arc::clone(&abort);
        let join = std::thread::spawn(move || Self::run_union_with(&db, spec, options, &abort2));
        TransformHandle { join, abort }
    }

    fn run_union_with(
        db: &Arc<Database>,
        spec: UnionSpec,
        options: TransformOptions,
        abort: &AtomicBool,
    ) -> DbResult<TransformReport> {
        Self::run_plan(db, &TransformPlan::Union(spec), options, abort)
    }

    /// Spawn a FOJ transformation on a background thread.
    pub fn spawn_foj(
        db: Arc<Database>,
        spec: FojSpec,
        options: TransformOptions,
    ) -> TransformHandle {
        let abort = Arc::new(AtomicBool::new(false));
        let abort2 = Arc::clone(&abort);
        let join = std::thread::spawn(move || Self::run_foj_with(&db, spec, options, &abort2));
        TransformHandle { join, abort }
    }

    /// Spawn a split transformation on a background thread.
    pub fn spawn_split(
        db: Arc<Database>,
        spec: SplitSpec,
        options: TransformOptions,
    ) -> TransformHandle {
        let abort = Arc::new(AtomicBool::new(false));
        let abort2 = Arc::clone(&abort);
        let join = std::thread::spawn(move || Self::run_split_with(&db, spec, options, &abort2));
        TransformHandle { join, abort }
    }

    fn run_foj_with(
        db: &Arc<Database>,
        spec: FojSpec,
        options: TransformOptions,
        abort: &AtomicBool,
    ) -> DbResult<TransformReport> {
        Self::run_plan(db, &TransformPlan::Foj(spec), options, abort)
    }

    fn run_split_with(
        db: &Arc<Database>,
        spec: SplitSpec,
        options: TransformOptions,
        abort: &AtomicBool,
    ) -> DbResult<TransformReport> {
        Self::run_plan(db, &TransformPlan::Split(spec), options, abort)
    }

    /// Run a compiled [`TransformPlan`] through all phases on the
    /// current thread — the synchronous equivalent of what the
    /// orchestrator drives one persisted phase at a time.
    pub fn run_plan(
        db: &Arc<Database>,
        plan: &TransformPlan,
        options: TransformOptions,
        abort: &AtomicBool,
    ) -> DbResult<TransformReport> {
        let mut job = TransformJob::prepare(db, plan, options)?;
        job.copy()?;
        job.propagate(abort, None)?;
        job.synchronize()?;
        job.finish(abort)
    }
}

/// Handle to a transformation running on a background thread.
pub struct TransformHandle {
    join: JoinHandle<DbResult<TransformReport>>,
    abort: Arc<AtomicBool>,
}

impl TransformHandle {
    /// Request the transformation abort at the next batch boundary.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Whether the background thread has finished.
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// Wait for the transformation to finish.
    pub fn join(self) -> DbResult<TransformReport> {
        self.join
            .join()
            .map_err(|_| DbError::Internal("transformer thread panicked".into()))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foj::figure1_schemas;
    use crate::spec::SyncStrategy;
    use morph_common::{Key, Value};

    fn db_with_sources(rows_r: usize, rows_s: usize) -> Arc<Database> {
        let db = Arc::new(Database::new());
        let (rs, ss) = figure1_schemas();
        db.create_table("R", rs).unwrap();
        db.create_table("S", ss).unwrap();
        let txn = db.begin();
        for i in 0..rows_r {
            db.insert(
                txn,
                "R",
                vec![
                    Value::Int(i as i64),
                    Value::str("b"),
                    Value::str(format!("j{}", i % rows_s.max(1))),
                ],
            )
            .unwrap();
        }
        for j in 0..rows_s {
            db.insert(txn, "S", vec![Value::str(format!("j{j}")), Value::str("d")])
                .unwrap();
        }
        db.commit(txn).unwrap();
        db
    }

    fn opts() -> TransformOptions {
        TransformOptions::default()
            .deadline(Duration::from_secs(30))
            .retain_sources()
    }

    #[test]
    fn quiescent_foj_end_to_end() {
        let db = db_with_sources(100, 10);
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let report = Transformer::run_foj(&db, spec, opts()).unwrap();
        assert!(report.population.rows_read >= 110);
        assert!(report.sync.latch_pause < Duration::from_millis(50));
        let t = db.catalog().get("T").unwrap();
        assert_eq!(t.len(), 100); // every S value matched
    }

    #[test]
    fn snapshot_mode_foj_end_to_end() {
        let db = db_with_sources(100, 10);
        db.enable_mvcc();
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let report = Transformer::run_foj(
            &db,
            spec,
            opts().transform_mode(crate::spec::TransformMode::Snapshot),
        )
        .unwrap();
        assert!(report.population.rows_read >= 110);
        assert_eq!(db.catalog().get("T").unwrap().len(), 100);
        // The copy's clean cut is released once population finishes.
        assert_eq!(db.live_snapshots(), 0);
    }

    #[test]
    fn snapshot_mode_split_under_writers_matches_sources() {
        let db = db_with_sources(150, 6);
        db.enable_mvcc();
        let stop = Arc::new(AtomicBool::new(false));
        let db2 = Arc::clone(&db);
        let stop2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                i += 1;
                let txn = db2.begin();
                let key = Key::single((i % 150) as i64);
                match db2.update(txn, "R", &key, &[(1, Value::str(format!("w{i}")))]) {
                    Ok(()) => {
                        let _ = db2.commit(txn);
                    }
                    Err(_) => {
                        let _ = db2.abort(txn);
                    }
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        });
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let handle = Transformer::spawn_foj(
            Arc::clone(&db),
            spec,
            opts().transform_mode(crate::spec::TransformMode::Snapshot),
        );
        let report = handle.join().expect("snapshot-mode transformation");
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        assert!(report.population.rows_read >= 150);
        // Propagation over the clean cut caught the concurrent writes.
        assert!(db.catalog().get("T").unwrap().len() >= 150);
        assert_eq!(db.live_snapshots(), 0);
    }

    #[test]
    fn foj_under_concurrent_updates_converges() {
        let db = db_with_sources(200, 8);
        let stop = Arc::new(AtomicBool::new(false));
        let db2 = Arc::clone(&db);
        let stop2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let mut i = 0u64;
            let mut committed = 0u32;
            while !stop2.load(Ordering::Relaxed) {
                i += 1;
                let txn = db2.begin();
                let key = Key::single((i % 200) as i64);
                let res = db2.update(txn, "R", &key, &[(1, Value::str(format!("w{i}")))]);
                match res {
                    Ok(()) => {
                        if db2.commit(txn).is_ok() {
                            committed += 1;
                        }
                    }
                    Err(_) => {
                        let _ = db2.abort(txn);
                    }
                }
                // Pace the writer: unoptimized test builds make rule
                // application slower than this tight loop, which would
                // turn the test into a (legitimate) non-convergence
                // scenario. Convergence-vs-load is characterized by the
                // release-mode benches instead.
                std::thread::sleep(Duration::from_micros(50));
            }
            committed
        });

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let options = opts()
            .priority(0.8)
            .non_convergence(crate::spec::NonConvergencePolicy::Escalate { factor: 2.0 });
        let handle = Transformer::spawn_foj(Arc::clone(&db), spec, options);
        let report = handle.join().expect("transformation");
        stop.store(true, Ordering::Relaxed);
        let committed = worker.join().unwrap();
        assert!(committed > 0, "workload must have made progress");
        assert!(report.records_processed() > 0);

        // The frozen sources (retained) reflect the final state; T must
        // equal their reference FOJ. Rebuild a mapping over the
        // existing tables for verification.
        let t = db.catalog().get("T").unwrap();
        assert!(t.len() >= 200);
    }

    #[test]
    fn split_under_concurrent_updates_converges() {
        let db = Arc::new(Database::new());
        let ts = morph_common::Schema::builder()
            .column("a", morph_common::ColumnType::Int)
            .nullable("b", morph_common::ColumnType::Str)
            .nullable("c", morph_common::ColumnType::Str)
            .nullable("d", morph_common::ColumnType::Str)
            .primary_key(&["a"])
            .build()
            .unwrap();
        db.create_table("T", ts).unwrap();
        let txn = db.begin();
        for i in 0..300i64 {
            let c = format!("c{}", i % 20);
            db.insert(
                txn,
                "T",
                vec![
                    Value::Int(i),
                    Value::str("b"),
                    Value::str(&c),
                    Value::str(format!("dep-{c}")),
                ],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let db2 = Arc::clone(&db);
        let stop2 = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                i += 1;
                let txn = db2.begin();
                // Non-split, non-dependent column updates keep the FD
                // intact without coordinating with other writers.
                let key = Key::single((i % 300) as i64);
                match db2.update(txn, "T", &key, &[(1, Value::str(format!("w{i}")))]) {
                    Ok(()) => {
                        let _ = db2.commit(txn);
                    }
                    Err(_) => {
                        let _ = db2.abort(txn);
                    }
                }
            }
        });

        let spec = SplitSpec::new("T", "R2", "S2", &["a", "b", "c"], "c", &["d"]);
        let handle = Transformer::spawn_split(Arc::clone(&db), spec, opts());
        let report = handle.join().expect("transformation");
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();

        let r2 = db.catalog().get("R2").unwrap();
        let s2 = db.catalog().get("S2").unwrap();
        assert_eq!(r2.len(), 300);
        assert_eq!(s2.len(), 20);
        // Every S counter adds up to the R count.
        let total: u32 = s2.snapshot().iter().map(|(_, row)| row.counter).sum();
        assert_eq!(total as usize, 300);
        assert!(report.sync.latch_pause < Duration::from_millis(100));

        // The retained source equals the targets (final verification).
        let m = {
            // Rebuild a mapping view for the verifier over the existing
            // tables: prepare() would recreate tables, so verify
            // manually through reference_split.
            let t = db.catalog().get("T").unwrap();
            let t_rows: Vec<Vec<Value>> = t.snapshot().into_iter().map(|(_, r)| r.values).collect();
            t_rows
        };
        assert_eq!(m.len(), 300);
    }

    #[test]
    fn doomed_transactions_abort_under_nonblocking_abort() {
        let db = db_with_sources(50, 5);
        // A long-lived transaction holding locks on R at sync time.
        let old = db.begin();
        db.update(old, "R", &Key::single(1), &[(1, Value::str("dirty"))])
            .unwrap();

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let db2 = Arc::clone(&db);
        let handle =
            Transformer::spawn_foj(db2, spec, opts().strategy(SyncStrategy::NonBlockingAbort));
        // Wait until the old transaction is doomed, then roll it back
        // (a real client would see TxnDoomed on its next operation).
        let t0 = Instant::now();
        loop {
            match db.update(old, "R", &Key::single(2), &[(1, Value::str("x"))]) {
                Err(DbError::TxnDoomed(_)) => {
                    db.abort(old).unwrap();
                    break;
                }
                Err(DbError::TableFrozen(_)) => {
                    // Frozen before doomed is also possible — still
                    // meant to abort.
                    db.abort(old).unwrap();
                    break;
                }
                Ok(()) => {
                    if t0.elapsed() > Duration::from_secs(20) {
                        panic!("old transaction never doomed");
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let report = handle.join().expect("transformation");
        assert!(report.sync.old_txns >= 1);
        // Dirty update was rolled back: T must not contain it.
        let t = db.catalog().get("T").unwrap();
        let rows = t.snapshot();
        assert!(rows.iter().all(|(_, r)| r.values[1] != Value::str("dirty")));
    }

    #[test]
    fn nonblocking_commit_lets_old_txn_finish() {
        let db = db_with_sources(50, 5);
        let old = db.begin();
        db.update(old, "R", &Key::single(1), &[(1, Value::str("survives"))])
            .unwrap();

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let handle = Transformer::spawn_foj(
            Arc::clone(&db),
            spec,
            opts().strategy(SyncStrategy::NonBlockingCommit),
        );
        // Wait for sync to pass (the source freezes for others but the
        // old transaction keeps working).
        let t0 = Instant::now();
        while db.catalog().get("R").unwrap().state() == morph_storage::TableState::Active {
            if t0.elapsed() > Duration::from_secs(20) {
                panic!("sync never happened");
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // The old transaction continues and commits.
        db.update(old, "R", &Key::single(2), &[(1, Value::str("late"))])
            .unwrap();
        db.commit(old).unwrap();

        let report = handle.join().expect("transformation");
        assert_eq!(report.sync.strategy, SyncStrategy::NonBlockingCommit);
        let t = db.catalog().get("T").unwrap();
        let rows = t.snapshot();
        assert!(
            rows.iter()
                .any(|(_, r)| r.values[1] == Value::str("survives")),
            "committed old-txn work must be in T"
        );
        assert!(rows.iter().any(|(_, r)| r.values[1] == Value::str("late")));
    }

    #[test]
    fn blocking_commit_strategy_completes() {
        let db = db_with_sources(40, 4);
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let report =
            Transformer::run_foj(&db, spec, opts().strategy(SyncStrategy::BlockingCommit)).unwrap();
        assert_eq!(report.sync.strategy, SyncStrategy::BlockingCommit);
        assert_eq!(db.catalog().get("T").unwrap().len(), 40);
    }

    #[test]
    fn abort_deletes_targets_and_leaves_sources_alone() {
        let db = db_with_sources(20_000, 10);
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        // Low priority plus a tight deadline: the 20k-row population at
        // 1% priority cannot finish within it, so the abort path runs
        // deterministically (an explicit abort() is raced in as well).
        let handle = Transformer::spawn_foj(
            Arc::clone(&db),
            spec,
            TransformOptions::default()
                .priority(0.01)
                .deadline(Duration::from_millis(250)),
        );
        std::thread::sleep(Duration::from_millis(20));
        handle.abort();
        let err = handle.join().unwrap_err();
        assert!(matches!(
            err,
            DbError::TransformationAborted(_) | DbError::CannotConverge { .. }
        ));
        assert!(!db.catalog().exists("T"), "targets must be deleted");
        assert!(db.catalog().exists("R") && db.catalog().exists("S"));
        // Sources stay fully usable.
        let txn = db.begin();
        db.update(txn, "R", &Key::single(0), &[(1, Value::str("after"))])
            .unwrap();
        db.commit(txn).unwrap();
    }

    #[test]
    fn phase_methods_drive_a_foj_end_to_end() {
        let db = db_with_sources(80, 8);
        let plan = TransformPlan::Foj(FojSpec::new("R", "S", "T", "c", "c"));
        assert_eq!(plan.source_tables(), vec!["R", "S"]);
        assert_eq!(plan.target_tables(), vec!["T"]);
        let mut job = TransformJob::prepare(&db, &plan, opts()).unwrap();
        let h = job.progress();
        assert_eq!(h.phase(), ProgressPhase::Preparing);
        let abort = AtomicBool::new(false);
        job.copy().unwrap();
        assert!(h.rows_copied() >= 80);
        job.propagate(&abort, None).unwrap();
        assert!(h.iterations() >= 1);
        assert!(!job.synced());
        job.synchronize().unwrap();
        assert!(job.synced());
        let report = job.finish(&abort).unwrap();
        assert_eq!(h.phase(), ProgressPhase::CutOver);
        assert!(report.total > Duration::ZERO);
        assert_eq!(db.catalog().get("T").unwrap().len(), 80);
    }

    #[test]
    fn pause_parks_propagation_until_released() {
        let db = db_with_sources(60, 6);
        let plan = TransformPlan::Foj(FojSpec::new("R", "S", "T", "c", "c"));
        let mut job = TransformJob::prepare(&db, &plan, opts()).unwrap();
        let h = job.progress();
        let abort = AtomicBool::new(false);
        job.copy().unwrap();
        let pause = Arc::new(AtomicBool::new(true));
        let p2 = Arc::clone(&pause);
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            p2.store(false, Ordering::Relaxed);
        });
        let t0 = Instant::now();
        job.propagate(&abort, Some(&pause)).unwrap();
        // The gate must have parked us until the releaser fired.
        assert!(t0.elapsed() >= Duration::from_millis(100));
        releaser.join().unwrap();
        job.synchronize().unwrap();
        job.finish(&abort).unwrap();
        assert_eq!(h.phase(), ProgressPhase::CutOver);
    }

    #[test]
    fn abort_wins_while_paused_and_cleans_targets() {
        let db = db_with_sources(30, 3);
        let plan = TransformPlan::Foj(FojSpec::new("R", "S", "T", "c", "c"));
        let mut job = TransformJob::prepare(&db, &plan, opts()).unwrap();
        job.copy().unwrap();
        let abort = Arc::new(AtomicBool::new(false));
        let pause = Arc::new(AtomicBool::new(true));
        let a2 = Arc::clone(&abort);
        let aborter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            a2.store(true, Ordering::Relaxed);
        });
        let err = job.propagate(&abort, Some(&pause)).unwrap_err();
        aborter.join().unwrap();
        assert!(matches!(err, DbError::TransformationAborted(_)));
        assert!(!db.catalog().exists("T"), "abort path must drop targets");
        assert!(db.catalog().exists("R") && db.catalog().exists("S"));
    }

    #[test]
    fn rename_in_place_split_end_to_end() {
        let db = Arc::new(Database::new());
        let ts = morph_common::Schema::builder()
            .column("a", morph_common::ColumnType::Int)
            .nullable("c", morph_common::ColumnType::Str)
            .nullable("d", morph_common::ColumnType::Str)
            .primary_key(&["a"])
            .build()
            .unwrap();
        db.create_table("T", ts).unwrap();
        let txn = db.begin();
        for i in 0..50i64 {
            let c = format!("c{}", i % 5);
            db.insert(
                txn,
                "T",
                vec![
                    Value::Int(i),
                    Value::str(&c),
                    Value::str(format!("dep-{c}")),
                ],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();

        let spec = SplitSpec::new("T", "R", "S", &["a", "c"], "c", &["d"]).rename_in_place();
        let report = Transformer::run_split(&db, spec, opts()).unwrap();
        assert!(report.total > Duration::ZERO);
        // T is gone (renamed), R has the projected schema, S exists.
        assert!(!db.catalog().exists("T"));
        let r = db.catalog().get("R").unwrap();
        assert_eq!(r.schema().arity(), 2); // a, c — d projected away
        assert_eq!(r.len(), 50);
        assert_eq!(db.catalog().get("S").unwrap().len(), 5);
        assert!(!db.catalog().exists("__morph_p_T"));
    }
}
