//! Comparison baselines.
//!
//! Two approaches the paper positions itself against:
//!
//! * [`blocking_foj`] / [`blocking_split`] — the classic `insert into …
//!   select` transformation (§1): block the involved tables, copy,
//!   switch. Correct and simple; unavailable for the whole copy. The
//!   ablation bench measures that unavailability window against the
//!   framework's sub-millisecond synchronization pause.
//! * [`TriggerMaintenance`] — Ronström's method (§2.1): triggers inside
//!   user transactions keep the transformed table up to date while a
//!   reorganizer scans. The paper argues the per-transaction overhead
//!   is significant (as with immediate materialized views); the
//!   ablation bench quantifies it. This implementation piggybacks the
//!   engine's interceptor hook: every source-table operation
//!   synchronously applies the corresponding FOJ rule to the target
//!   *inside the user transaction's critical path*.

use crate::foj::FojMapping;
use crate::spec::FojSpec;
use crate::spec::SplitSpec;
use crate::split::SplitMapping;
use morph_common::{DbError, DbResult, Lsn, TxnId};
use morph_engine::{Database, OpInterceptor, PlannedOp};
use morph_storage::Table;
use morph_wal::LogOp;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a blocking transformation cost.
#[derive(Clone, Debug)]
pub struct BlockingReport {
    /// How long the source tables were unavailable to new transactions.
    pub blocked: Duration,
    /// Rows written into the transformed tables.
    pub rows_written: usize,
}

fn freeze_and_wait(db: &Database, sources: &[Arc<Table>], deadline: Duration) -> DbResult<()> {
    let mut holders: HashSet<TxnId> = HashSet::new();
    for txn in db.active_txns() {
        if sources
            .iter()
            .any(|s| !db.locks().held_keys_in(txn, s.id()).is_empty())
        {
            holders.insert(txn);
        }
    }
    for s in sources {
        s.freeze(holders.clone());
    }
    // morph-lint: allow(nondet, freeze-wait deadline; wall-time bound on blocking, never replayed state)
    let until = Instant::now() + deadline;
    while holders.iter().any(|t| db.is_active(*t)) {
        // morph-lint: allow(nondet, freeze-wait deadline; wall-time bound on blocking, never replayed state)
        if Instant::now() > until {
            for s in sources {
                s.reactivate();
            }
            return Err(DbError::TransformationAborted(
                "blocking baseline: lock holders did not finish".into(),
            ));
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    Ok(())
}

/// Blocking `insert into T select … from R full outer join S`.
pub fn blocking_foj(db: &Arc<Database>, spec: &FojSpec) -> DbResult<BlockingReport> {
    let mapping = FojMapping::prepare(db, spec)?;
    let sources = vec![Arc::clone(mapping.r_table()), Arc::clone(mapping.s_table())];
    // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
    let t0 = Instant::now();
    freeze_and_wait(db, &sources, Duration::from_secs(30))?;
    // Sources are quiescent: the "fuzzy" scan is now an exact scan.
    let (_, rows_written) = mapping.populate(4096)?;
    for s in &sources {
        db.catalog().drop_table(&s.name())?;
    }
    Ok(BlockingReport {
        blocked: t0.elapsed(),
        rows_written,
    })
}

/// Blocking split of T into R and S.
pub fn blocking_split(db: &Arc<Database>, spec: &SplitSpec) -> DbResult<BlockingReport> {
    let mut mapping = SplitMapping::prepare(db, spec)?;
    let source = Arc::clone(mapping.t_table());
    // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
    let t0 = Instant::now();
    freeze_and_wait(db, std::slice::from_ref(&source), Duration::from_secs(30))?;
    let (_, rows_written) = mapping.populate(4096)?;
    db.catalog().drop_table(&source.name())?;
    Ok(BlockingReport {
        blocked: t0.elapsed(),
        rows_written,
    })
}

/// Ronström-style synchronous (trigger) maintenance of a FOJ target.
///
/// While installed, every insert/update/delete on R or S applies the
/// corresponding propagation rule to T *before* the user operation
/// proceeds — the work rides inside the user transaction, which is
/// exactly the overhead the paper's log-based design avoids.
pub struct TriggerMaintenance {
    mapping: Arc<FojMapping>,
    token: u64,
}

struct TriggerHook {
    mapping: Arc<FojMapping>,
    /// Serializes rule application (the propagator is single-threaded
    /// in the log-based design; triggers must synchronize explicitly —
    /// another cost of the approach).
    gate: Mutex<()>,
}

impl OpInterceptor for TriggerHook {
    fn before_op(
        &self,
        db: &Database,
        _txn: TxnId,
        table: &Table,
        op: &PlannedOp<'_>,
    ) -> DbResult<()> {
        let ids = self.mapping.source_ids();
        if !ids.contains(&table.id()) {
            return Ok(());
        }
        let lsn = Lsn(db.log().last_lsn().0 + 1);
        let log_op = match op {
            PlannedOp::Insert { values } => LogOp::Insert {
                table: table.id(),
                row: values.to_vec(),
            },
            PlannedOp::Delete { key } => {
                let old = table
                    .get(key)
                    .map(|r| r.values)
                    .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
                LogOp::Delete {
                    table: table.id(),
                    key: (*key).clone(),
                    old,
                }
            }
            PlannedOp::Update { key, cols } => {
                let row = table
                    .get(key)
                    .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
                let old: Vec<(usize, morph_common::Value)> = cols
                    .iter()
                    .map(|(i, _)| (*i, row.values[*i].clone()))
                    .collect();
                LogOp::Update {
                    table: table.id(),
                    key: (*key).clone(),
                    old,
                    new: cols.to_vec(),
                }
            }
            PlannedOp::Read { .. } => return Ok(()),
        };
        let _g = self.gate.lock();
        self.mapping.apply(lsn, &log_op)
    }
}

impl TriggerMaintenance {
    /// Prepare the target, install the triggers, and populate with a
    /// consistent scan (triggers keep it current from here on).
    pub fn install(db: &Arc<Database>, spec: &FojSpec) -> DbResult<TriggerMaintenance> {
        let mapping = Arc::new(FojMapping::prepare(db, spec)?);
        let token = db.add_interceptor(Arc::new(TriggerHook {
            mapping: Arc::clone(&mapping),
            gate: Mutex::new(()),
        }));
        mapping.populate(4096)?;
        Ok(TriggerMaintenance { mapping, token })
    }

    /// The maintained target mapping.
    pub fn mapping(&self) -> &FojMapping {
        &self.mapping
    }

    /// Uninstall the triggers (the mapping stays readable).
    pub fn uninstall(&self, db: &Database) {
        db.remove_interceptor(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foj::figure1_schemas;
    use morph_common::{Key, Value};

    fn db_with_sources() -> Arc<Database> {
        let db = Arc::new(Database::new());
        let (rs, ss) = figure1_schemas();
        db.create_table("R", rs).unwrap();
        db.create_table("S", ss).unwrap();
        let txn = db.begin();
        for i in 0..50 {
            db.insert(
                txn,
                "R",
                vec![
                    Value::Int(i),
                    Value::str("b"),
                    Value::str(format!("j{}", i % 5)),
                ],
            )
            .unwrap();
        }
        for j in 0..5 {
            db.insert(txn, "S", vec![Value::str(format!("j{j}")), Value::str("d")])
                .unwrap();
        }
        db.commit(txn).unwrap();
        db
    }

    #[test]
    fn blocking_foj_copies_everything_and_drops_sources() {
        let db = db_with_sources();
        let report = blocking_foj(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
        assert_eq!(report.rows_written, 50);
        assert!(report.blocked > Duration::ZERO);
        assert!(!db.catalog().exists("R"));
        assert!(db.catalog().exists("T"));
        // New transactions were blocked during the copy; now they go to T.
        assert_eq!(db.catalog().get("T").unwrap().len(), 50);
    }

    #[test]
    fn blocking_split_works() {
        let db = Arc::new(Database::new());
        let ts = morph_common::Schema::builder()
            .column("a", morph_common::ColumnType::Int)
            .nullable("c", morph_common::ColumnType::Str)
            .nullable("d", morph_common::ColumnType::Str)
            .primary_key(&["a"])
            .build()
            .unwrap();
        db.create_table("T", ts).unwrap();
        let txn = db.begin();
        for i in 0..30i64 {
            let c = format!("c{}", i % 3);
            db.insert(
                txn,
                "T",
                vec![Value::Int(i), Value::str(&c), Value::str(format!("d-{c}"))],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let spec = SplitSpec::new("T", "R", "S", &["a", "c"], "c", &["d"]);
        let report = blocking_split(&db, &spec).unwrap();
        assert!(report.rows_written >= 30);
        assert!(!db.catalog().exists("T"));
        assert_eq!(db.catalog().get("R").unwrap().len(), 30);
        assert_eq!(db.catalog().get("S").unwrap().len(), 3);
    }

    #[test]
    fn trigger_maintenance_keeps_target_current() {
        let db = db_with_sources();
        let tm = TriggerMaintenance::install(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
        // Ops after installation flow through the trigger synchronously.
        let txn = db.begin();
        db.insert(
            txn,
            "R",
            vec![Value::Int(100), Value::str("new"), Value::str("j0")],
        )
        .unwrap();
        db.update(txn, "R", &Key::single(1), &[(1, Value::str("upd"))])
            .unwrap();
        db.delete(txn, "R", &Key::single(2)).unwrap();
        db.commit(txn).unwrap();
        crate::foj::verify_against_reference(tm.mapping()).expect("trigger kept T current");
        tm.uninstall(&db);
        // After uninstall, changes no longer propagate: deleting a
        // source row leaves T stale relative to the reference.
        let txn = db.begin();
        db.delete(txn, "R", &Key::single(3)).unwrap();
        db.commit(txn).unwrap();
        assert!(crate::foj::verify_against_reference(tm.mapping()).is_err());
    }
}
