//! Union (horizontal merge) transformation — the first of the "other
//! relational operators" the paper's conclusion calls for (§7).
//!
//! Two source tables with identical schemas (say, regional shards
//! `customers_eu` and `customers_us`) are merged into one table whose
//! primary key is the source key prefixed with a *provenance* tag, so
//! colliding keys from the two sources remain distinct and every
//! transformed row traces back to exactly one source row.
//!
//! Because each target row mirrors exactly one source row, target rows
//! *do* have valid state identifiers, and the propagation rules are the
//! simple LSN-gated forms (the same discipline as the split rules'
//! R side, §5.2) — making union also a minimal, readable template for
//! implementing further [`TransformOperator`]s.

use crate::operator::{
    drive_segments, scan_source_partitioned, scan_source_throttled, CoalescePolicy, LaneScratch,
    LaneTag, SegmentRun, TransformOperator,
};
use crate::pool::{ApplyPool, EpochTask};
use crate::throttle::Throttle;
use morph_common::{ColumnType, DbError, DbResult, Key, Lsn, Schema, TableId, Value};
use morph_engine::Database;
use morph_storage::{shard_stride, Row, Table, WriteSession};
use morph_wal::LogOp;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Specification of a union transformation: R ∪ S → T.
#[derive(Clone, Debug)]
pub struct UnionSpec {
    /// First source table.
    pub r_table: String,
    /// Second source table (same schema as the first).
    pub s_table: String,
    /// Name of the merged target table.
    pub target: String,
    /// Name for the provenance column prepended to the target schema
    /// (holds the source table's name).
    pub provenance_col: String,
}

impl UnionSpec {
    /// Build a spec with the default provenance column name `__src`.
    pub fn new(r_table: &str, s_table: &str, target: &str) -> UnionSpec {
        UnionSpec {
            r_table: r_table.to_owned(),
            s_table: s_table.to_owned(),
            target: target.to_owned(),
            provenance_col: "__src".to_owned(),
        }
    }
}

/// Column mapping and rule engine for one union transformation.
pub struct UnionMapping {
    r: Arc<Table>,
    s: Arc<Table>,
    t: Arc<Table>,
    r_tag: Value,
    s_tag: Value,
}

impl UnionMapping {
    /// Preparation step: validate schema equality and create the
    /// target (provenance column first, then the source columns; key =
    /// provenance ⧺ source key).
    pub fn prepare(db: &Database, spec: &UnionSpec) -> DbResult<UnionMapping> {
        let r = db.catalog().get(&spec.r_table)?;
        let s = db.catalog().get(&spec.s_table)?;
        if r.schema() != s.schema() {
            return Err(DbError::InvalidSchema(
                "union sources must have identical schemas".into(),
            ));
        }
        let src_schema = r.schema();
        if src_schema.position_of(&spec.provenance_col).is_some() {
            return Err(DbError::InvalidSchema(format!(
                "provenance column {:?} collides with a source column",
                spec.provenance_col
            )));
        }
        let mut b = Schema::builder().column(&spec.provenance_col, ColumnType::Str);
        for c in src_schema.columns() {
            b = if c.nullable {
                b.nullable(&c.name, c.ty)
            } else {
                b.column(&c.name, c.ty)
            };
        }
        let mut key_names: Vec<&str> = vec![&spec.provenance_col];
        for &p in src_schema.pkey() {
            key_names.push(&src_schema.columns()[p].name);
        }
        let t_schema = b.primary_key(&key_names).build()?;
        let t = db.catalog().create_table(&spec.target, t_schema)?;
        // Shard T by the source-key suffix (skipping the provenance
        // tag): a source row and its target row then route to the same
        // shard index, which both the parallel fuzzy copy (partitioned
        // source scans writing under masked target sessions) and the
        // sharded apply's lane classification rely on.
        t.set_shard_key((1..=src_schema.pkey().len()).collect())?;
        Ok(UnionMapping {
            r_tag: Value::str(spec.r_table.clone()),
            s_tag: Value::str(spec.s_table.clone()),
            r,
            s,
            t,
        })
    }

    /// The merged target table.
    pub fn t_table(&self) -> &Arc<Table> {
        &self.t
    }

    /// Source tables whose log records are relevant.
    pub fn source_ids(&self) -> Vec<TableId> {
        vec![self.r.id(), self.s.id()]
    }

    fn tag_for(&self, table: TableId) -> &Value {
        if table == self.r.id() {
            &self.r_tag
        } else {
            &self.s_tag
        }
    }

    /// Target row for a source row.
    fn t_row(&self, table: TableId, src: &[Value]) -> Vec<Value> {
        let mut out = Vec::with_capacity(src.len() + 1);
        out.push(self.tag_for(table).clone());
        out.extend_from_slice(src);
        out
    }

    /// Target key for a source key.
    pub fn t_key(&self, table: TableId, key: &Key) -> Key {
        let mut vals = Vec::with_capacity(key.arity() + 1);
        vals.push(self.tag_for(table).clone());
        vals.extend(key.values().iter().cloned());
        Key(vals)
    }

    /// Shift source column positions by the provenance column.
    fn t_cols(cols: &[(usize, Value)]) -> Vec<(usize, Value)> {
        cols.iter().map(|(i, v)| (*i + 1, v.clone())).collect()
    }

    /// Initial population: fuzzy-scan both sources (unthrottled).
    pub fn populate(&self, chunk_size: usize) -> DbResult<(usize, usize)> {
        self.populate_throttled(chunk_size, &mut Throttle::new(1.0))
    }

    /// Initial population paying the given throttle per fuzzy-scan
    /// chunk; each chunk is written under one target write session.
    pub fn populate_throttled(
        &self,
        chunk_size: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        self.populate_with(None, chunk_size, throttle)
    }

    /// [`UnionMapping::populate_throttled`] with the database handle
    /// threaded through so the fuzzy scan reports per-chunk crash
    /// points (crash simulation).
    pub(crate) fn populate_with(
        &self,
        db: Option<&Database>,
        chunk_size: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        let t = Arc::clone(&self.t);
        let mut read = 0;
        let mut written = 0;
        for src in [&self.r, &self.s] {
            let src_id = src.id();
            read += scan_source_throttled(db, src, chunk_size, throttle, |chunk| {
                let mut ts = t.write_session();
                for (_, row) in chunk {
                    let values = self.t_row(src_id, &row.values);
                    match ts.insert_row(Row::new(values, row.lsn)) {
                        Ok(_) | Err(DbError::DuplicateKey(_)) => written += 1,
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            })?;
        }
        Ok((read, written))
    }

    /// Parallel initial population: each source is scanned by `workers`
    /// threads over disjoint shard classes, and because T's shard key
    /// aligns target routing with source routing, each scan worker can
    /// insert its rows directly under a masked target session — no
    /// cross-thread handoff at all.
    pub(crate) fn populate_parallel_with(
        &self,
        db: Option<&Database>,
        chunk_size: usize,
        workers: usize,
        priority: f64,
    ) -> DbResult<(usize, usize)> {
        let workers = shard_stride(workers.max(1));
        if workers <= 1 {
            return self.populate_with(db, chunk_size, &mut Throttle::new(priority));
        }
        let t = Arc::clone(&self.t);
        let written = AtomicUsize::new(0);
        let mut read = 0;
        for src in [&self.r, &self.s] {
            let src_id = src.id();
            let sink = |w: usize, chunk: Vec<(Key, Row)>| {
                let mut ts = t.write_session_masked(workers, w);
                let mut n = 0usize;
                for (_, row) in chunk {
                    let values = self.t_row(src_id, &row.values);
                    match ts.insert_row(Row::new(values, row.lsn)) {
                        Ok(_) | Err(DbError::DuplicateKey(_)) => n += 1,
                        Err(e) => return Err(e),
                    }
                }
                written.fetch_add(n, Ordering::Relaxed);
                Ok(())
            };
            read += scan_source_partitioned(db, src, chunk_size, workers, priority, &sink)?;
        }
        Ok((read, written.load(Ordering::Relaxed)))
    }

    /// Apply one logged source operation (LSN-gated, like the split
    /// rules' R side).
    pub fn apply(&self, lsn: Lsn, op: &LogOp) -> DbResult<()> {
        let t = Arc::clone(&self.t);
        let mut ts = t.write_session();
        self.apply_in(&mut ts, lsn, op)
    }

    /// Rule dispatch within an open target write session.
    fn apply_in(&self, ts: &mut WriteSession<'_>, lsn: Lsn, op: &LogOp) -> DbResult<()> {
        let table = op.table();
        if table != self.r.id() && table != self.s.id() {
            return Ok(());
        }
        match op {
            LogOp::Insert { row, .. } => {
                let tkey = self.t_key(table, &self.r.schema().key_of(row));
                if ts.contains(&tkey) {
                    return Ok(()); // already reflected
                }
                ts.insert_row(Row::new(self.t_row(table, row), lsn))
                    .map(|_| ())
            }
            LogOp::Delete { key, .. } => {
                let tkey = self.t_key(table, key);
                match ts.get(&tkey) {
                    None => Ok(()),
                    Some(row) if row.lsn >= lsn => Ok(()), // newer state
                    Some(_) => ts.delete(&tkey).map(|_| ()),
                }
            }
            LogOp::Update { key, new, .. } => {
                let tkey = self.t_key(table, key);
                match ts.get(&tkey) {
                    None => Ok(()),
                    Some(row) if row.lsn >= lsn => Ok(()),
                    Some(_) => ts.update(&tkey, &Self::t_cols(new), lsn).map(|_| ()),
                }
            }
        }
    }

    /// Immutable data needed to mirror source locks (non-blocking
    /// commit interceptor).
    pub fn mirror_map(&self) -> crate::sync::MirrorMap {
        crate::sync::MirrorMap::Union {
            r_id: self.r.id(),
            s_id: self.s.id(),
            t_id: self.t.id(),
            r_tag: self.r_tag.clone(),
            s_tag: self.s_tag.clone(),
            src_pk: self.r.schema().pkey().to_vec(),
        }
    }

    /// Target records affected by a source-record lock (sync transfer).
    pub fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)> {
        if table != self.r.id() && table != self.s.id() {
            return Vec::new();
        }
        vec![(self.t.id(), self.t_key(table, key))]
    }
}

impl TransformOperator for UnionMapping {
    fn source_ids(&self) -> Vec<TableId> {
        UnionMapping::source_ids(self)
    }

    fn apply(&mut self, lsn: Lsn, op: &LogOp) -> DbResult<()> {
        UnionMapping::apply(self, lsn, op)
    }

    fn apply_batch(&mut self, batch: &[(Lsn, &LogOp)]) -> DbResult<()> {
        let t = Arc::clone(&self.t);
        let mut ts = t.write_session();
        for &(lsn, op) in batch {
            self.apply_in(&mut ts, lsn, op)?;
        }
        Ok(())
    }

    /// Sharded apply. Every union rule is a direct key operation on the
    /// target row mirroring the record's source row, LSN-gated — so the
    /// lane of a record is simply the target shard its source key
    /// routes to. Only updates that move a source primary key (two
    /// subjects, possibly two shards) are barriers.
    fn apply_batch_sharded(
        &mut self,
        batch: &[(Lsn, &LogOp)],
        pool: &ApplyPool,
        scratch: &mut LaneScratch,
    ) -> DbResult<()> {
        let stride = shard_stride(pool.width().max(1));
        if stride <= 1 {
            return self.apply_batch(batch);
        }
        let schema = self.r.schema();
        let src_pk = schema.pkey().to_vec();
        let this = &*self;
        drive_segments(
            batch,
            stride,
            scratch,
            |op| match op {
                LogOp::Insert { row, .. } => {
                    LaneTag::Class(this.t.shard_of_component(schema.key_of(row).values()))
                }
                LogOp::Delete { key, .. } => {
                    LaneTag::Class(this.t.shard_of_component(key.values()))
                }
                LogOp::Update { key, new, .. } => {
                    if new.iter().any(|(i, _)| src_pk.contains(i)) {
                        LaneTag::Barrier
                    } else {
                        LaneTag::Class(this.t.shard_of_component(key.values()))
                    }
                }
            },
            |seg| match seg {
                SegmentRun::Serial(records) => {
                    let mut ts = this.t.write_session();
                    for &(lsn, op) in records {
                        this.apply_in(&mut ts, lsn, op)?;
                    }
                    Ok(())
                }
                SegmentRun::Parallel(slice, lane_runs) => {
                    let tasks: Vec<EpochTask> = lane_runs
                        .iter()
                        .enumerate()
                        .filter(|(_, run)| !run.is_empty())
                        .map(|(w, run)| {
                            Box::new(move || {
                                let mut ts = this.t.write_session_masked(stride, w);
                                for &ri in run {
                                    let (lsn, op) = slice[ri as usize];
                                    this.apply_in(&mut ts, lsn, op)?;
                                }
                                Ok(())
                            }) as EpochTask
                        })
                        .collect();
                    pool.run_epoch(tasks)
                }
            },
        )
    }

    fn coalesce_policy(&self) -> CoalescePolicy {
        // Purely LSN-gated, one target row per source row: an update may
        // swallow earlier same-column updates, a delete everything.
        CoalescePolicy::Full
    }

    fn populate_throttled(
        &mut self,
        db: &Database,
        chunk: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        UnionMapping::populate_with(self, Some(db), chunk, throttle)
    }

    fn populate_parallel(
        &mut self,
        db: &Database,
        chunk: usize,
        workers: usize,
        priority: f64,
    ) -> DbResult<(usize, usize)> {
        UnionMapping::populate_parallel_with(self, Some(db), chunk, workers, priority)
    }

    fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)> {
        UnionMapping::target_keys_for(self, table, key)
    }

    fn mirror_map(&self) -> crate::sync::MirrorMap {
        UnionMapping::mirror_map(self)
    }
}

/// Compare T against the union of the current source contents.
pub fn verify_against_reference(m: &UnionMapping) -> Result<(), String> {
    let mut expected: Vec<Vec<Value>> = Vec::new();
    for src in [&m.r, &m.s] {
        for (_, row) in src.snapshot() {
            expected.push(m.t_row(src.id(), &row.values));
        }
    }
    expected.sort();
    let mut got: Vec<Vec<Value>> = m.t.snapshot().into_iter().map(|(_, r)| r.values).collect();
    got.sort();
    if expected != got {
        return Err(format!(
            "union mismatch:\nexpected {expected:?}\ngot      {got:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Database, UnionMapping) {
        let db = Database::new();
        let schema = || {
            Schema::builder()
                .column("id", ColumnType::Int)
                .nullable("v", ColumnType::Str)
                .primary_key(&["id"])
                .build()
                .unwrap()
        };
        db.create_table("eu", schema()).unwrap();
        db.create_table("us", schema()).unwrap();
        let m = UnionMapping::prepare(&db, &UnionSpec::new("eu", "us", "all")).unwrap();
        (db, m)
    }

    #[test]
    fn prepare_validates() {
        let db = Database::new();
        let a = Schema::builder()
            .column("id", ColumnType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let b = Schema::builder()
            .column("id", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap();
        db.create_table("a", a).unwrap();
        db.create_table("b", b).unwrap();
        assert!(matches!(
            UnionMapping::prepare(&db, &UnionSpec::new("a", "b", "t")),
            Err(DbError::InvalidSchema(_))
        ));
    }

    #[test]
    fn colliding_source_keys_stay_distinct() {
        let (db, m) = setup();
        let r_id = db.catalog().get("eu").unwrap().id();
        let s_id = db.catalog().get("us").unwrap().id();
        for (t, lsn) in [(r_id, 1), (s_id, 2)] {
            m.apply(
                Lsn(lsn),
                &LogOp::Insert {
                    table: t,
                    row: vec![Value::Int(7), Value::str("x")],
                },
            )
            .unwrap();
        }
        assert_eq!(m.t_table().len(), 2);
        verify_against_reference(&m).unwrap_err(); // sources are empty!
    }

    #[test]
    fn lsn_gates_protect_fresher_rows() {
        let (db, m) = setup();
        let r_id = db.catalog().get("eu").unwrap().id();
        db.catalog()
            .get("eu")
            .unwrap()
            .insert(vec![Value::Int(1), Value::str("new")], Lsn(10))
            .unwrap();
        m.populate(4).unwrap();
        // A stale logged update must not regress the fresher image.
        m.apply(
            Lsn(5),
            &LogOp::Update {
                table: r_id,
                key: Key::single(1),
                old: vec![(1, Value::str("old"))],
                new: vec![(1, Value::str("mid"))],
            },
        )
        .unwrap();
        assert_eq!(
            m.t_table()
                .get(&m.t_key(r_id, &Key::single(1)))
                .unwrap()
                .values[2],
            Value::str("new")
        );
        verify_against_reference(&m).unwrap();
    }

    #[test]
    fn randomized_ops_match_reference() {
        for seed in 0..8u64 {
            let (db, m) = setup();
            let mut rng = StdRng::seed_from_u64(seed * 7 + 1);
            let tables = ["eu", "us"];
            let mut lsn = 0u64;
            for step in 0..300 {
                lsn += 1;
                let name = tables[rng.gen_range(0..2)];
                let src = db.catalog().get(name).unwrap();
                let key = Key::single(rng.gen_range(0..16i64));
                match rng.gen_range(0..3) {
                    0 => {
                        if src.get(&key).is_none() {
                            let row = vec![key.0[0].clone(), Value::str(format!("v{step}"))];
                            src.insert(row.clone(), Lsn(lsn)).unwrap();
                            m.apply(
                                Lsn(lsn),
                                &LogOp::Insert {
                                    table: src.id(),
                                    row,
                                },
                            )
                            .unwrap();
                        }
                    }
                    1 => {
                        if src.get(&key).is_some() {
                            let old = src.delete(&key).unwrap();
                            m.apply(
                                Lsn(lsn),
                                &LogOp::Delete {
                                    table: src.id(),
                                    key,
                                    old: old.values,
                                },
                            )
                            .unwrap();
                        }
                    }
                    _ => {
                        if src.get(&key).is_some() {
                            let cols = vec![(1usize, Value::str(format!("u{step}")))];
                            let out = src.update(&key, &cols, Lsn(lsn)).unwrap();
                            m.apply(
                                Lsn(lsn),
                                &LogOp::Update {
                                    table: src.id(),
                                    key,
                                    old: out.old_cols,
                                    new: cols,
                                },
                            )
                            .unwrap();
                        }
                    }
                }
            }
            if let Err(e) = verify_against_reference(&m) {
                panic!("seed {seed}: {e}");
            }
        }
    }
}
