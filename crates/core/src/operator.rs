//! The operator contract behind the transformation framework.
//!
//! The paper develops one *framework* (§3: preparation → fuzzy
//! population → log propagation → synchronization) and then plugs
//! concrete transformations into it: full outer join with propagation
//! rules 1–7 (§4), vertical split with rules 8–11 (§5), and sketches of
//! further operators (§7). [`TransformOperator`] is that plug point:
//! everything the framework layers (`Propagator`, `Transformer`, the
//! synchronization strategies) need from a transformation, with the
//! operator-independent machinery written once against the trait.
//!
//! ## Method ↔ paper map
//!
//! | method                  | paper                                            |
//! |-------------------------|--------------------------------------------------|
//! | [`populate_throttled`]  | §3.2 initial population by fuzzy read            |
//! | [`apply`]               | §3.3 log propagation: FOJ rules 1–7 are          |
//! |                         | *content-based* (no LSN gating; they decide from |
//! |                         | the current T image, §4.2), split rules 8–11 and |
//! |                         | union are *LSN-gated* (state identifiers, §5.2)  |
//! | [`apply_batch`]         | batched §3.3 drain: one target-latch acquisition |
//! |                         | per batch instead of per record                  |
//! | [`apply_batch_sharded`] | §3.3 drain partitioned into subject-disjoint     |
//! |                         | lanes handed to a persistent work-stealing pool  |
//! | [`populate_parallel`]   | §3.2 fuzzy copy partitioned over scan threads    |
//! | [`on_control`]          | §5.3 `CcBegin`/`CcOk` consistency-checker records|
//! | [`maintenance`]         | §5.3 checker rounds between propagation batches  |
//! | [`readiness`]           | §5.3 gating: sync may not start while S-records  |
//! |                         | remain in the *unknown* state                    |
//! | [`target_keys_for`],    | §3.4/§4.3 lock transfer: source record locks are |
//! | [`mirror_map`]          | mirrored onto the transformed tables             |
//! | [`renames_source`],     | §5.2 rename-in-place variant: the source keeps   |
//! | [`publish`],            | living as the R-side target, is renamed at sync  |
//! | [`finalize`]            | and projected down once the old txns drain       |
//!
//! [`populate_throttled`]: TransformOperator::populate_throttled
//! [`populate_parallel`]: TransformOperator::populate_parallel
//! [`apply`]: TransformOperator::apply
//! [`apply_batch`]: TransformOperator::apply_batch
//! [`apply_batch_sharded`]: TransformOperator::apply_batch_sharded
//! [`on_control`]: TransformOperator::on_control
//! [`maintenance`]: TransformOperator::maintenance
//! [`readiness`]: TransformOperator::readiness
//! [`target_keys_for`]: TransformOperator::target_keys_for
//! [`mirror_map`]: TransformOperator::mirror_map
//! [`renames_source`]: TransformOperator::renames_source
//! [`publish`]: TransformOperator::publish
//! [`finalize`]: TransformOperator::finalize

use crate::cc::Readiness;
use crate::pool::ApplyPool;
use crate::sync::MirrorMap;
use crate::throttle::Throttle;
use morph_common::{DbResult, Key, Lsn, TableId};
use morph_engine::Database;
use morph_storage::{shard_stride, Row, Table};
use morph_wal::{LogOp, LogRecord};
use std::sync::Arc;
use std::time::Instant;

/// How aggressively the propagator may coalesce a batch of log records
/// for one source row before handing it to [`TransformOperator::apply_batch`].
///
/// Coalescing drops *superseded* records — ones whose effect on the
/// transformed tables is provably erased by a later record in the same
/// batch — so the operator applies fewer rules per batch. How much can
/// be dropped safely depends on the operator's propagation rules:
///
/// * FOJ rules 5–7 guard on the *current content* of T (an update whose
///   old image no longer matches is skipped, §4.2), so an intermediate
///   update can be load-bearing: only deletes may swallow earlier
///   records ([`CoalescePolicy::DeleteOnly`]).
/// * Split rules 8–11 gate purely on LSNs and reference counters; an
///   intermediate absorb/release of a transient split value nets to
///   zero, so updates may also swallow earlier updates of the same
///   columns ([`CoalescePolicy::Full`]).
/// * The §5.3 consistency checker must observe *every* touch of an
///   S-record to invalidate in-flight certification rounds, so a
///   checking split forbids coalescing entirely ([`CoalescePolicy::None`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoalescePolicy {
    /// Apply every record verbatim.
    None,
    /// A delete erases earlier pending records for its row.
    DeleteOnly,
    /// Deletes erase earlier records; an update also erases earlier
    /// updates of a subset of its columns.
    Full,
}

/// A transformation operator pluggable into the framework: the paper's
/// propagation-rule sets (§4 FOJ, §5 split, §7 others) behind one
/// object-safe contract.
///
/// `Propagator` drives [`apply_batch`]/[`on_control`]/[`maintenance`],
/// `Transformer` drives [`populate_throttled`]/[`readiness`]/
/// [`finalize`], and the synchronization strategies drive
/// [`target_keys_for`]/[`mirror_map`]/[`renames_source`]/[`publish`].
///
/// [`apply_batch`]: TransformOperator::apply_batch
/// [`on_control`]: TransformOperator::on_control
/// [`maintenance`]: TransformOperator::maintenance
/// [`populate_throttled`]: TransformOperator::populate_throttled
/// [`readiness`]: TransformOperator::readiness
/// [`finalize`]: TransformOperator::finalize
/// [`target_keys_for`]: TransformOperator::target_keys_for
/// [`mirror_map`]: TransformOperator::mirror_map
/// [`renames_source`]: TransformOperator::renames_source
/// [`publish`]: TransformOperator::publish
pub trait TransformOperator: Send {
    /// Source tables whose log records feed the propagation rules.
    fn source_ids(&self) -> Vec<TableId>;

    /// Apply one relevant log record through the propagation rules
    /// (§3.3). Must be idempotent with respect to re-application after
    /// a crash (Theorem 1): FOJ achieves this by content checks, split
    /// and union by LSN gating.
    fn apply(&mut self, lsn: Lsn, op: &LogOp) -> DbResult<()>;

    /// Apply a batch of relevant records. The default simply loops over
    /// [`TransformOperator::apply`]; operators override this to open
    /// one write session per target table for the whole batch, paying
    /// one latch round trip per batch instead of per record.
    fn apply_batch(&mut self, batch: &[(Lsn, &LogOp)]) -> DbResult<()> {
        for &(lsn, op) in batch {
            self.apply(lsn, op)?;
        }
        Ok(())
    }

    /// Apply a batch with up to `pool.width()` concurrent apply lanes.
    /// Each operator partitions the batch into *subject-disjoint*
    /// lanes — record classes whose propagation-rule reads and writes
    /// provably stay inside one storage-shard class of the target —
    /// and hands the lanes to the persistent [`ApplyPool`] as one
    /// epoch per parallel segment, each lane applying under a masked
    /// write session. Records whose effects may cross lanes (and any
    /// record the operator cannot classify) act as full barriers:
    /// the batch is cut there, the barrier run is applied serially in
    /// log order, and the surrounding epochs fence around it.
    /// `scratch` carries the reusable lane-index buffers so
    /// segmentation allocates nothing per batch.
    ///
    /// The default falls back to the serial [`TransformOperator::apply_batch`];
    /// a 1-wide pool must be byte-identical to the serial path.
    fn apply_batch_sharded(
        &mut self,
        batch: &[(Lsn, &LogOp)],
        pool: &ApplyPool,
        scratch: &mut LaneScratch,
    ) -> DbResult<()> {
        let _ = (pool, scratch);
        self.apply_batch(batch)
    }

    /// How much record coalescing this operator's rules tolerate.
    fn coalesce_policy(&self) -> CoalescePolicy {
        CoalescePolicy::DeleteOnly
    }

    /// Columns of `table` whose update must reach the rules verbatim
    /// (beyond primary-key columns, which always act as barriers): an
    /// update touching one of them voids all pending coalescing for its
    /// row and is itself never dropped.
    ///
    /// The FOJ delete rules guard on the *logged pre-image* of the join
    /// attribute (§4.2) — dropping an intermediate join-attribute
    /// update would make a later delete's guard compare against stale
    /// target content and misfire. A split's S-side columns feed shared
    /// S-records whose transient states other rows' rule 11 moves can
    /// read, so they are barriers likewise.
    fn coalesce_barrier_cols(&self, _table: TableId) -> Vec<usize> {
        Vec::new()
    }

    /// Initial population by fuzzy read (§3.2), paying the priority
    /// throttle per chunk. Returns `(rows_read, rows_written)`. The
    /// database handle feeds the per-chunk crash point
    /// (`populate.chunk`) that the deterministic crash harness kills
    /// fuzzy copies at.
    fn populate_throttled(
        &mut self,
        db: &Database,
        chunk: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)>;

    /// Unthrottled population (tests and full-priority runs).
    fn populate(&mut self, db: &Database, chunk: usize) -> DbResult<(usize, usize)> {
        self.populate_throttled(db, chunk, &mut Throttle::new(1.0))
    }

    /// Initial population with `workers` scan threads over disjoint
    /// key-space partitions (§3.2 parallelized). The priority budget is
    /// divided among the workers ([`worker_share`]) so the aggregate
    /// duty cycle still honors `priority`. Returns
    /// `(rows_read, rows_written)`.
    ///
    /// The default ignores `workers` and runs the serial populate so
    /// operators without a parallel implementation stay correct.
    fn populate_parallel(
        &mut self,
        db: &Database,
        chunk: usize,
        workers: usize,
        priority: f64,
    ) -> DbResult<(usize, usize)> {
        let _ = (workers, priority);
        self.populate(db, chunk)
    }

    /// Target keys a record lock on `(table, key)` must be mirrored to
    /// during lock transfer (§3.4). Reads the *transformed* tables, so
    /// it stays correct while the sources are latched.
    fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)>;

    /// Closed-form source-op → target-keys mapping for the non-blocking
    /// commit interceptor (§4.3), usable without reading the sources.
    fn mirror_map(&self) -> MirrorMap;

    /// Whether synchronization may start (§5.3: a checking split is not
    /// ready while any S-record flag is unknown).
    fn readiness(&self) -> Readiness {
        Readiness::Ready
    }

    /// Periodic maintenance between propagation batches — the split
    /// consistency checker's certification rounds (§5.3).
    fn maintenance(&mut self, _db: &Database) -> DbResult<()> {
        Ok(())
    }

    /// React to a non-data control record the propagator encountered
    /// (`CcBegin`/`CcOk`, §5.3).
    fn on_control(&mut self, _lsn: Lsn, _rec: &LogRecord) -> DbResult<()> {
        Ok(())
    }

    /// Completed consistency-checker rounds (reporting).
    fn cc_rounds(&self) -> usize {
        0
    }

    /// Whether this operator keeps a source table alive as a target
    /// (§5.2 rename-in-place): synchronization must then neither freeze
    /// nor drop that source.
    fn renames_source(&self) -> bool {
        false
    }

    /// Publish the targets under their final catalog names. Called by
    /// synchronization while the sources are latched; only meaningful
    /// when [`TransformOperator::renames_source`] is true.
    fn publish(&self, _db: &Database) -> DbResult<()> {
        Ok(())
    }

    /// Final schema surgery after all grandfathered transactions ended
    /// (§5.2: project the renamed source down to the R-side columns).
    fn finalize(&self, _db: &Database) -> DbResult<()> {
        Ok(())
    }
}

/// Source table handles of an operator, resolved through the catalog.
pub fn source_tables(db: &Database, op: &dyn TransformOperator) -> DbResult<Vec<Arc<Table>>> {
    op.source_ids()
        .into_iter()
        .map(|id| db.catalog().get_by_id(id))
        .collect()
}

/// Shared driver for the §3.2 fuzzy population scan: stream one source
/// table in primary-key chunks, paying the priority throttle for the
/// work each chunk took. All three operators' `populate_throttled`
/// implementations are built on this.
///
/// With a database handle the scan reports the `populate.chunk` crash
/// point between chunks (no write session is open there, so the crash
/// harness may both inject workload and kill the run at that point).
pub(crate) fn scan_source_throttled(
    db: Option<&Database>,
    table: &Arc<Table>,
    chunk: usize,
    throttle: &mut Throttle,
    mut sink: impl FnMut(Vec<(Key, Row)>) -> DbResult<()>,
) -> DbResult<usize> {
    // Snapshot-mode population (`TransformMode::Snapshot`): a pinned
    // copy snapshot replaces the fuzzy image with a clean MVCC cut.
    // Same chunking, same throttle; only the read mechanism differs —
    // and the propagation that follows starts from the fuzzy mark
    // either way, so Theorem 1 is untouched (a clean cut is a special
    // case of a fuzzy image).
    if let Some(d) = db {
        if let Some(snap) = d.copy_snapshot_for(table.id()) {
            let mut scan = table.snapshot_scan(chunk, snap.lsn(), d.commit_table());
            let mut rows = 0usize;
            loop {
                d.crash_point("copy.snapshot_scan")?;
                // morph-lint: allow(nondet, chunk timing feeds throttle pacing and stats only; wall time never enters table or WAL state)
                let t0 = Instant::now();
                let batch = scan.next_chunk();
                if batch.is_empty() {
                    return Ok(rows);
                }
                rows += batch.len();
                sink(batch)?;
                throttle.pay(t0.elapsed());
            }
        }
    }
    let mut scan = table.fuzzy_scan(chunk);
    let mut rows = 0usize;
    loop {
        if let Some(db) = db {
            db.crash_point("populate.chunk")?;
        }
        // morph-lint: allow(nondet, chunk timing feeds throttle pacing and stats only; wall time never enters table or WAL state)
        let t0 = Instant::now();
        let batch = scan.next_chunk();
        if batch.is_empty() {
            return Ok(rows);
        }
        rows += batch.len();
        sink(batch)?;
        throttle.pay(t0.elapsed());
    }
}

/// Per-worker priority share for an `n`-way parallel fuzzy copy: the
/// duty cycles sum to the configured priority, so `n` workers at
/// `p / n` interfere with user transactions no more than one worker at
/// `p`. Full priority stays full per worker — there is no budget to
/// divide when the transformation may use the whole machine.
pub(crate) fn worker_share(priority: f64, workers: usize) -> f64 {
    if priority >= 1.0 {
        1.0
    } else {
        (priority / workers.max(1) as f64).max(1e-4)
    }
}

/// Parallel variant of [`scan_source_throttled`]: partition the source's
/// storage shards into `workers` disjoint classes and stream each class
/// on its own scoped thread, each worker paying its own
/// [`worker_share`] of the priority budget. The sink receives
/// `(worker, chunk)` pairs and must be `Sync`; chunks of different
/// workers arrive concurrently, chunks of one worker arrive in key
/// order. Returns the total rows read.
pub(crate) fn scan_source_partitioned<F>(
    db: Option<&Database>,
    table: &Arc<Table>,
    chunk: usize,
    workers: usize,
    priority: f64,
    sink: &F,
) -> DbResult<usize>
where
    F: Fn(usize, Vec<(Key, Row)>) -> DbResult<()> + Sync,
{
    let workers = shard_stride(workers.max(1));
    if workers <= 1 {
        let mut throttle = Throttle::new(priority);
        return scan_source_throttled(db, table, chunk, &mut throttle, |batch| sink(0, batch));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || -> DbResult<usize> {
                    // Snapshot-mode branch, as in `scan_source_throttled`:
                    // each worker reads its shard class through the same
                    // pinned clean cut.
                    if let Some(d) = db {
                        if let Some(snap) = d.copy_snapshot_for(table.id()) {
                            let mut scan = table.snapshot_scan_partition(
                                chunk,
                                w,
                                workers,
                                snap.lsn(),
                                d.commit_table(),
                            );
                            let mut throttle = Throttle::new(worker_share(priority, workers));
                            let mut rows = 0usize;
                            loop {
                                d.crash_point("copy.snapshot_scan")?;
                                // morph-lint: allow(nondet, chunk timing feeds throttle pacing and stats only; wall time never enters table or WAL state)
                                let t0 = Instant::now();
                                let batch = scan.next_chunk();
                                if batch.is_empty() {
                                    return Ok(rows);
                                }
                                rows += batch.len();
                                sink(w, batch)?;
                                throttle.pay(t0.elapsed());
                            }
                        }
                    }
                    let mut scan = table.fuzzy_scan_partition(chunk, w, workers);
                    let mut throttle = Throttle::new(worker_share(priority, workers));
                    let mut rows = 0usize;
                    loop {
                        if let Some(db) = db {
                            db.crash_point("populate.chunk")?;
                        }
                        // morph-lint: allow(nondet, chunk timing feeds throttle pacing and stats only; wall time never enters table or WAL state)
                        let t0 = Instant::now();
                        let batch = scan.next_chunk();
                        if batch.is_empty() {
                            return Ok(rows);
                        }
                        rows += batch.len();
                        sink(w, batch)?;
                        throttle.pay(t0.elapsed());
                    }
                })
            })
            .collect();
        let mut total = 0usize;
        let mut first_err = None;
        for h in handles {
            // morph-lint: allow(panic, re-raises a worker panic at the join point; mapping it to DbError would bury the original panic site)
            match h.join().expect("population scan worker panicked") {
                Ok(n) => total += n,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    })
}

/// Lane classification of one log record for sharded apply.
pub(crate) enum LaneTag {
    /// The record's rule reads and writes stay inside the given lane
    /// (a storage-shard class of the target); it may run concurrently
    /// with records of other lanes.
    Class(usize),
    /// The record's effects may cross lanes — it must observe every
    /// earlier record and be observed by every later one.
    Barrier,
}

/// Reusable lane-index buffers for [`drive_segments`]. Owned by the
/// `Propagator` (one per pipeline) and threaded through
/// [`TransformOperator::apply_batch_sharded`], so segmentation reuses
/// the same allocations batch after batch — the arena half of killing
/// per-batch churn on the apply hot path. Indices are `u32` offsets
/// into the current parallel run's slice, which keeps the buffers
/// compact and makes "merge back to log order" a no-op (the slice
/// *is* log order).
pub struct LaneScratch {
    lanes: Vec<Vec<u32>>,
    /// Minimum parallel-run length worth an epoch hand-off; runs
    /// shorter than this are demoted to serial. Defaults to
    /// [`PARALLEL_SEGMENT_MIN`]; the propagator overrides it from
    /// [`ParallelConfig::min_apply_segment`] so tests and the crash
    /// simulator can force epochs on tiny batches.
    ///
    /// [`ParallelConfig::min_apply_segment`]: crate::spec::ParallelConfig::min_apply_segment
    min_segment: usize,
}

impl Default for LaneScratch {
    fn default() -> LaneScratch {
        LaneScratch {
            lanes: Vec::new(),
            min_segment: PARALLEL_SEGMENT_MIN,
        }
    }
}

impl LaneScratch {
    /// Override the epoch-worthiness threshold (propagator only).
    pub(crate) fn set_min_segment(&mut self, min: usize) {
        self.min_segment = min.max(1);
    }

    /// Cleared lane buffers for a `stride`-wide segmentation; grows
    /// once and is reused thereafter.
    fn lanes_for(&mut self, stride: usize) -> &mut [Vec<u32>] {
        if self.lanes.len() < stride {
            self.lanes.resize_with(stride, Vec::new);
        }
        for lane in &mut self.lanes[..stride] {
            lane.clear();
        }
        &mut self.lanes[..stride]
    }
}

/// Below this record count a parallel segment is applied serially:
/// epoch handoff plus per-lane session setup costs more than the work
/// it would parallelize. The segment's slice is already in log order,
/// so the serial fallback needs no merge.
pub const PARALLEL_SEGMENT_MIN: usize = 128;

/// One run the segmenter hands to the apply callback, in log order.
pub(crate) enum SegmentRun<'r, 'a, 'b> {
    /// Contiguous barrier (or too-small parallel) records; apply in
    /// slice order on the caller — the sub-slice *is* log order.
    Serial(&'b [(Lsn, &'a LogOp)]),
    /// A parallel run: the run's sub-slice plus per-lane `u32` index
    /// lists into that sub-slice, each lane LSN-ascending.
    Parallel(&'b [(Lsn, &'a LogOp)], &'r [Vec<u32>]),
}

/// Cut a batch into alternating serial/parallel runs by classifying
/// each record, and drive `emit` over them in log order. Consecutive
/// barrier records form one [`SegmentRun::Serial`]; consecutive
/// lane-classified records form one [`SegmentRun::Parallel`]. Parallel
/// runs below the scratch's epoch threshold (default
/// [`PARALLEL_SEGMENT_MIN`]) are demoted to `Serial` — the sub-slice
/// is already in log order, so nothing is merged.
///
/// A single `emit` callback (rather than separate serial/parallel
/// ones) lets an operator hold `&mut self` for the serial arm while
/// the parallel arm reborrows `&*self` for its `Send` tasks. Nothing
/// is allocated here beyond what `scratch` retains between calls.
pub(crate) fn drive_segments<'a, 'b>(
    batch: &'b [(Lsn, &'a LogOp)],
    lanes: usize,
    scratch: &mut LaneScratch,
    mut classify: impl FnMut(&LogOp) -> LaneTag,
    mut emit: impl FnMut(SegmentRun<'_, 'a, 'b>) -> DbResult<()>,
) -> DbResult<()> {
    let stride = lanes.max(1);
    let min_segment = scratch.min_segment.max(1);
    let lane_buf = scratch.lanes_for(stride);

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Run {
        None,
        Serial,
        Parallel,
    }
    let mut run = Run::None;
    let mut start = 0usize;

    for (i, &(_, op)) in batch.iter().enumerate() {
        match classify(op) {
            LaneTag::Barrier => {
                if run == Run::Parallel {
                    let slice = &batch[start..i];
                    if slice.len() < min_segment {
                        emit(SegmentRun::Serial(slice))?;
                    } else {
                        emit(SegmentRun::Parallel(slice, lane_buf))?;
                    }
                    for lane in lane_buf.iter_mut() {
                        lane.clear();
                    }
                }
                if run != Run::Serial {
                    start = i;
                    run = Run::Serial;
                }
            }
            LaneTag::Class(class) => {
                if run == Run::Serial {
                    emit(SegmentRun::Serial(&batch[start..i]))?;
                }
                if run != Run::Parallel {
                    start = i;
                    run = Run::Parallel;
                }
                lane_buf[class % stride].push((i - start) as u32);
            }
        }
    }
    match run {
        Run::None => {}
        Run::Serial => emit(SegmentRun::Serial(&batch[start..]))?,
        Run::Parallel => {
            let slice = &batch[start..];
            if slice.len() < min_segment {
                emit(SegmentRun::Serial(slice))?;
            } else {
                emit(SegmentRun::Parallel(slice, lane_buf))?;
            }
        }
    }
    Ok(())
}
