//! The operator contract behind the transformation framework.
//!
//! The paper develops one *framework* (§3: preparation → fuzzy
//! population → log propagation → synchronization) and then plugs
//! concrete transformations into it: full outer join with propagation
//! rules 1–7 (§4), vertical split with rules 8–11 (§5), and sketches of
//! further operators (§7). [`TransformOperator`] is that plug point:
//! everything the framework layers (`Propagator`, `Transformer`, the
//! synchronization strategies) need from a transformation, with the
//! operator-independent machinery written once against the trait.
//!
//! ## Method ↔ paper map
//!
//! | method                  | paper                                            |
//! |-------------------------|--------------------------------------------------|
//! | [`populate_throttled`]  | §3.2 initial population by fuzzy read            |
//! | [`apply`]               | §3.3 log propagation: FOJ rules 1–7 are          |
//! |                         | *content-based* (no LSN gating; they decide from |
//! |                         | the current T image, §4.2), split rules 8–11 and |
//! |                         | union are *LSN-gated* (state identifiers, §5.2)  |
//! | [`apply_batch`]         | batched §3.3 drain: one target-latch acquisition |
//! |                         | per batch instead of per record                  |
//! | [`on_control`]          | §5.3 `CcBegin`/`CcOk` consistency-checker records|
//! | [`maintenance`]         | §5.3 checker rounds between propagation batches  |
//! | [`readiness`]           | §5.3 gating: sync may not start while S-records  |
//! |                         | remain in the *unknown* state                    |
//! | [`target_keys_for`],    | §3.4/§4.3 lock transfer: source record locks are |
//! | [`mirror_map`]          | mirrored onto the transformed tables             |
//! | [`renames_source`],     | §5.2 rename-in-place variant: the source keeps   |
//! | [`publish`],            | living as the R-side target, is renamed at sync  |
//! | [`finalize`]            | and projected down once the old txns drain       |
//!
//! [`populate_throttled`]: TransformOperator::populate_throttled
//! [`apply`]: TransformOperator::apply
//! [`apply_batch`]: TransformOperator::apply_batch
//! [`on_control`]: TransformOperator::on_control
//! [`maintenance`]: TransformOperator::maintenance
//! [`readiness`]: TransformOperator::readiness
//! [`target_keys_for`]: TransformOperator::target_keys_for
//! [`mirror_map`]: TransformOperator::mirror_map
//! [`renames_source`]: TransformOperator::renames_source
//! [`publish`]: TransformOperator::publish
//! [`finalize`]: TransformOperator::finalize

use crate::cc::Readiness;
use crate::sync::MirrorMap;
use crate::throttle::Throttle;
use morph_common::{DbResult, Key, Lsn, TableId};
use morph_engine::Database;
use morph_storage::{Row, Table};
use morph_wal::{LogOp, LogRecord};
use std::sync::Arc;
use std::time::Instant;

/// How aggressively the propagator may coalesce a batch of log records
/// for one source row before handing it to [`TransformOperator::apply_batch`].
///
/// Coalescing drops *superseded* records — ones whose effect on the
/// transformed tables is provably erased by a later record in the same
/// batch — so the operator applies fewer rules per batch. How much can
/// be dropped safely depends on the operator's propagation rules:
///
/// * FOJ rules 5–7 guard on the *current content* of T (an update whose
///   old image no longer matches is skipped, §4.2), so an intermediate
///   update can be load-bearing: only deletes may swallow earlier
///   records ([`CoalescePolicy::DeleteOnly`]).
/// * Split rules 8–11 gate purely on LSNs and reference counters; an
///   intermediate absorb/release of a transient split value nets to
///   zero, so updates may also swallow earlier updates of the same
///   columns ([`CoalescePolicy::Full`]).
/// * The §5.3 consistency checker must observe *every* touch of an
///   S-record to invalidate in-flight certification rounds, so a
///   checking split forbids coalescing entirely ([`CoalescePolicy::None`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoalescePolicy {
    /// Apply every record verbatim.
    None,
    /// A delete erases earlier pending records for its row.
    DeleteOnly,
    /// Deletes erase earlier records; an update also erases earlier
    /// updates of a subset of its columns.
    Full,
}

/// A transformation operator pluggable into the framework: the paper's
/// propagation-rule sets (§4 FOJ, §5 split, §7 others) behind one
/// object-safe contract.
///
/// `Propagator` drives [`apply_batch`]/[`on_control`]/[`maintenance`],
/// `Transformer` drives [`populate_throttled`]/[`readiness`]/
/// [`finalize`], and the synchronization strategies drive
/// [`target_keys_for`]/[`mirror_map`]/[`renames_source`]/[`publish`].
///
/// [`apply_batch`]: TransformOperator::apply_batch
/// [`on_control`]: TransformOperator::on_control
/// [`maintenance`]: TransformOperator::maintenance
/// [`populate_throttled`]: TransformOperator::populate_throttled
/// [`readiness`]: TransformOperator::readiness
/// [`finalize`]: TransformOperator::finalize
/// [`target_keys_for`]: TransformOperator::target_keys_for
/// [`mirror_map`]: TransformOperator::mirror_map
/// [`renames_source`]: TransformOperator::renames_source
/// [`publish`]: TransformOperator::publish
pub trait TransformOperator: Send {
    /// Source tables whose log records feed the propagation rules.
    fn source_ids(&self) -> Vec<TableId>;

    /// Apply one relevant log record through the propagation rules
    /// (§3.3). Must be idempotent with respect to re-application after
    /// a crash (Theorem 1): FOJ achieves this by content checks, split
    /// and union by LSN gating.
    fn apply(&mut self, lsn: Lsn, op: &LogOp) -> DbResult<()>;

    /// Apply a batch of relevant records. The default simply loops over
    /// [`TransformOperator::apply`]; operators override this to open
    /// one write session per target table for the whole batch, paying
    /// one latch round trip per batch instead of per record.
    fn apply_batch(&mut self, batch: &[(Lsn, LogOp)]) -> DbResult<()> {
        for (lsn, op) in batch {
            self.apply(*lsn, op)?;
        }
        Ok(())
    }

    /// How much record coalescing this operator's rules tolerate.
    fn coalesce_policy(&self) -> CoalescePolicy {
        CoalescePolicy::DeleteOnly
    }

    /// Columns of `table` whose update must reach the rules verbatim
    /// (beyond primary-key columns, which always act as barriers): an
    /// update touching one of them voids all pending coalescing for its
    /// row and is itself never dropped.
    ///
    /// The FOJ delete rules guard on the *logged pre-image* of the join
    /// attribute (§4.2) — dropping an intermediate join-attribute
    /// update would make a later delete's guard compare against stale
    /// target content and misfire. A split's S-side columns feed shared
    /// S-records whose transient states other rows' rule 11 moves can
    /// read, so they are barriers likewise.
    fn coalesce_barrier_cols(&self, _table: TableId) -> Vec<usize> {
        Vec::new()
    }

    /// Initial population by fuzzy read (§3.2), paying the priority
    /// throttle per chunk. Returns `(rows_read, rows_written)`. The
    /// database handle feeds the per-chunk crash point
    /// (`populate.chunk`) that the deterministic crash harness kills
    /// fuzzy copies at.
    fn populate_throttled(
        &mut self,
        db: &Database,
        chunk: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)>;

    /// Unthrottled population (tests and full-priority runs).
    fn populate(&mut self, db: &Database, chunk: usize) -> DbResult<(usize, usize)> {
        self.populate_throttled(db, chunk, &mut Throttle::new(1.0))
    }

    /// Target keys a record lock on `(table, key)` must be mirrored to
    /// during lock transfer (§3.4). Reads the *transformed* tables, so
    /// it stays correct while the sources are latched.
    fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)>;

    /// Closed-form source-op → target-keys mapping for the non-blocking
    /// commit interceptor (§4.3), usable without reading the sources.
    fn mirror_map(&self) -> MirrorMap;

    /// Whether synchronization may start (§5.3: a checking split is not
    /// ready while any S-record flag is unknown).
    fn readiness(&self) -> Readiness {
        Readiness::Ready
    }

    /// Periodic maintenance between propagation batches — the split
    /// consistency checker's certification rounds (§5.3).
    fn maintenance(&mut self, _db: &Database) -> DbResult<()> {
        Ok(())
    }

    /// React to a non-data control record the propagator encountered
    /// (`CcBegin`/`CcOk`, §5.3).
    fn on_control(&mut self, _lsn: Lsn, _rec: &LogRecord) -> DbResult<()> {
        Ok(())
    }

    /// Completed consistency-checker rounds (reporting).
    fn cc_rounds(&self) -> usize {
        0
    }

    /// Whether this operator keeps a source table alive as a target
    /// (§5.2 rename-in-place): synchronization must then neither freeze
    /// nor drop that source.
    fn renames_source(&self) -> bool {
        false
    }

    /// Publish the targets under their final catalog names. Called by
    /// synchronization while the sources are latched; only meaningful
    /// when [`TransformOperator::renames_source`] is true.
    fn publish(&self, _db: &Database) -> DbResult<()> {
        Ok(())
    }

    /// Final schema surgery after all grandfathered transactions ended
    /// (§5.2: project the renamed source down to the R-side columns).
    fn finalize(&self, _db: &Database) -> DbResult<()> {
        Ok(())
    }
}

/// Source table handles of an operator, resolved through the catalog.
pub fn source_tables(db: &Database, op: &dyn TransformOperator) -> DbResult<Vec<Arc<Table>>> {
    op.source_ids()
        .into_iter()
        .map(|id| db.catalog().get_by_id(id))
        .collect()
}

/// Shared driver for the §3.2 fuzzy population scan: stream one source
/// table in primary-key chunks, paying the priority throttle for the
/// work each chunk took. All three operators' `populate_throttled`
/// implementations are built on this.
///
/// With a database handle the scan reports the `populate.chunk` crash
/// point between chunks (no write session is open there, so the crash
/// harness may both inject workload and kill the run at that point).
pub(crate) fn scan_source_throttled(
    db: Option<&Database>,
    table: &Arc<Table>,
    chunk: usize,
    throttle: &mut Throttle,
    mut sink: impl FnMut(Vec<(Key, Row)>) -> DbResult<()>,
) -> DbResult<usize> {
    let mut scan = table.fuzzy_scan(chunk);
    let mut rows = 0usize;
    loop {
        if let Some(db) = db {
            db.crash_point("populate.chunk")?;
        }
        let t0 = Instant::now();
        let batch = scan.next_chunk();
        if batch.is_empty() {
            return Ok(rows);
        }
        rows += batch.len();
        sink(batch)?;
        throttle.pay(t0.elapsed());
    }
}
