//! Full outer join transformation: mapping, propagation rules 1–7 and
//! the many-to-many generalization (§4).
//!
//! ## Data model
//!
//! The transformed table T holds every column of R followed by every
//! column of S except S's join column (the join attribute appears once,
//! Figure 1). T's storage key is R's primary key extended with the
//! join attribute (one-to-many) or with S's primary key (many-to-many)
//! so that NULL-extended rows (`t_null_x`, `t_y_null`) remain uniquely
//! addressable. Which halves of a row are populated is tracked in the
//! row's [`Presence`] metadata.
//!
//! ## No state identifiers
//!
//! As the paper argues (§4.2), a T-row is the join of two source rows
//! and cannot carry a single valid LSN; the rules below therefore
//! decide purely from *content* — existence and presence lookups
//! through the indexes created by the preparation step — and are
//! idempotent. Theorem 1 (sequential propagation from the first record
//! of the oldest transaction active at the fuzzy mark) guarantees rows
//! are never older than the log record being applied, which makes
//! "found ⇒ already reflected ⇒ ignore" sound.

use morph_common::{ColumnType, DbError, DbResult, Key, Lsn, Schema, TableId, Value};
use morph_engine::Database;
use morph_storage::row::Presence;
use morph_storage::{Row, Table, WriteSession};
use morph_wal::LogOp;
use std::collections::BTreeSet;
use std::sync::Arc;

use crate::operator::{
    drive_segments, scan_source_partitioned, scan_source_throttled, worker_share, LaneScratch,
    LaneTag, SegmentRun, TransformOperator,
};
use crate::pool::{ApplyPool, EpochTask};
use crate::spec::FojSpec;
use crate::throttle::Throttle;
use morph_storage::shard_stride;

const LEFT: Presence = Presence {
    left: true,
    right: false,
};
const RIGHT: Presence = Presence {
    left: false,
    right: true,
};

/// Column mapping and rule engine for one FOJ transformation.
pub struct FojMapping {
    r: Arc<Table>,
    s: Arc<Table>,
    t: Arc<Table>,
    r_arity: usize,
    s_arity: usize,
    /// Join column position in R / S.
    r_join: usize,
    s_join: usize,
    /// Primary-key column positions in R / S.
    r_pk: Vec<usize>,
    s_pk: Vec<usize>,
    /// S column -> T column position (join column maps onto R's).
    s_to_t: Vec<usize>,
    /// T-side index positions.
    idx_rpk: usize,
    idx_join: usize,
    idx_spk: usize,
    many: bool,
}

impl FojMapping {
    /// Preparation step (§3.1/§4.1): create T with the required
    /// candidate keys and the join-attribute / S-key indexes.
    pub fn prepare(db: &Database, spec: &FojSpec) -> DbResult<FojMapping> {
        let r = db.catalog().get(&spec.r_table)?;
        let s = db.catalog().get(&spec.s_table)?;
        let rs = r.schema();
        let ss = s.schema();
        let r_join = rs.require(&spec.r_join_col)?;
        let s_join = ss.require(&spec.s_join_col)?;

        // T layout: R columns, then S columns minus the join column.
        // Every T column is nullable (outer join NULL-extends).
        let mut b = Schema::builder();
        let mut t_names: Vec<String> = Vec::new();
        for c in rs.columns() {
            b = b.nullable(&c.name, c.ty);
            t_names.push(c.name.clone());
        }
        let mut s_to_t = vec![usize::MAX; ss.arity()];
        s_to_t[s_join] = r_join;
        for (i, c) in ss.columns().iter().enumerate() {
            if i == s_join {
                continue;
            }
            let name = if t_names.iter().any(|n| n == &c.name) {
                format!("{}_s", c.name)
            } else {
                c.name.clone()
            };
            b = b.nullable(&name, c.ty);
            s_to_t[i] = t_names.len();
            t_names.push(name);
        }

        // T's storage key: R-pk ⧺ join (1:N) or R-pk ⧺ S-pk (m:n).
        let mut key_cols: Vec<usize> = rs.pkey().to_vec();
        if spec.many_to_many {
            key_cols.extend(ss.pkey().iter().map(|&p| s_to_t[p]));
        } else if !rs.pkey().contains(&r_join) {
            key_cols.push(r_join);
        }
        // Dedup while preserving order (join col may already be in R-pk).
        let mut seen = BTreeSet::new();
        key_cols.retain(|c| seen.insert(*c));
        let key_names: Vec<&str> = key_cols.iter().map(|&c| t_names[c].as_str()).collect();
        let t_schema = b.primary_key(&key_names).build()?;

        let t = db.catalog().create_table(&spec.target, t_schema)?;
        let rpk_names: Vec<&str> = rs.pkey().iter().map(|&p| t_names[p].as_str()).collect();
        let idx_rpk = t.add_index("__rpk", &rpk_names, false)?;
        let idx_join = t.add_index("__join", &[&t_names[r_join]], false)?;
        let spk_names: Vec<&str> = ss
            .pkey()
            .iter()
            .map(|&p| t_names[s_to_t[p]].as_str())
            .collect();
        let idx_spk = t.add_index("__spk", &spk_names, false)?;

        // Shard T by the R-pk prefix of its storage key: every row of
        // subject y lives in shard(y) regardless of its join value, so
        // a non-join R-update's rule reads (the `__rpk` probe) stay
        // inside one shard — the lane classification the sharded apply
        // path relies on. R-pk columns are distinct, so after dedup
        // they are exactly the first `pkey().len()` key positions.
        t.set_shard_key((0..rs.pkey().len()).collect())?;

        Ok(FojMapping {
            r,
            s,
            t,
            r_arity: rs.arity(),
            s_arity: ss.arity(),
            r_join,
            s_join,
            r_pk: rs.pkey().to_vec(),
            s_pk: ss.pkey().to_vec(),
            s_to_t,
            idx_rpk,
            idx_join,
            idx_spk,
            many: spec.many_to_many,
        })
    }

    /// Source table R.
    pub fn r_table(&self) -> &Arc<Table> {
        &self.r
    }

    /// Source table S.
    pub fn s_table(&self) -> &Arc<Table> {
        &self.s
    }

    /// The transformed table T.
    pub fn t_table(&self) -> &Arc<Table> {
        &self.t
    }

    // --- row construction ----------------------------------------------

    fn t_arity(&self) -> usize {
        self.t.schema().arity()
    }

    /// T row from an R row alone (joined with `s_null`).
    pub fn t_from_r(&self, r_vals: &[Value]) -> Vec<Value> {
        let mut t = vec![Value::Null; self.t_arity()];
        t[..self.r_arity].clone_from_slice(r_vals);
        t
    }

    /// T row from an S row alone (joined with `r_null`).
    pub fn t_from_s(&self, s_vals: &[Value]) -> Vec<Value> {
        let mut t = vec![Value::Null; self.t_arity()];
        for (i, v) in s_vals.iter().enumerate() {
            t[self.s_to_t[i]] = v.clone();
        }
        t
    }

    /// T row joining an R row and an S row.
    pub fn t_join(&self, r_vals: &[Value], s_vals: &[Value]) -> Vec<Value> {
        let mut t = self.t_from_r(r_vals);
        for (i, v) in s_vals.iter().enumerate() {
            t[self.s_to_t[i]] = v.clone();
        }
        t
    }

    /// Extract the R half of a T row.
    pub fn r_part(&self, t_vals: &[Value]) -> Vec<Value> {
        t_vals[..self.r_arity].to_vec()
    }

    /// Extract the S half of a T row.
    pub fn s_part(&self, t_vals: &[Value]) -> Vec<Value> {
        (0..self.s_arity)
            .map(|i| t_vals[self.s_to_t[i]].clone())
            .collect()
    }

    // --- keys -------------------------------------------------------------

    fn rpk_of_r(&self, r_vals: &[Value]) -> Key {
        Key::project(r_vals, &self.r_pk)
    }

    fn spk_of_s(&self, s_vals: &[Value]) -> Key {
        Key::project(s_vals, &self.s_pk)
    }

    fn spk_of_t(&self, t_vals: &[Value]) -> Key {
        Key::new(self.s_pk.iter().map(|&p| t_vals[self.s_to_t[p]].clone()))
    }

    fn rpk_of_t(&self, t_vals: &[Value]) -> Key {
        Key::project(t_vals, &self.r_pk)
    }

    fn join_key(&self, v: &Value) -> Key {
        Key::new([v.clone()])
    }

    // --- write helpers -----------------------------------------------------

    /// Insert a T row, treating an existing identical key as "already
    /// reflected" (Theorem 1). Writes through the open session on T.
    fn insert_t(
        &self,
        ts: &mut WriteSession<'_>,
        values: Vec<Value>,
        presence: Presence,
        lsn: Lsn,
    ) -> DbResult<()> {
        match ts.insert_row(Row {
            values,
            lsn,
            counter: 1,
            flag: morph_storage::ConsistencyFlag::Consistent,
            presence,
            writer: morph_storage::SYSTEM,
        }) {
            Ok(_) => Ok(()),
            Err(DbError::DuplicateKey(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Update columns of a T row and set its presence; tolerates the
    /// row having vanished (a newer state, per Theorem 1). Returns the
    /// row's (possibly moved) key.
    fn set_row(
        &self,
        ts: &mut WriteSession<'_>,
        key: &Key,
        cols: &[(usize, Value)],
        presence: Presence,
        lsn: Lsn,
    ) -> DbResult<Option<Key>> {
        match ts.update(key, cols, lsn) {
            Ok(out) => {
                ts.with_row_mut(&out.new_key, |r| r.presence = presence);
                Ok(Some(out.new_key))
            }
            Err(DbError::KeyNotFound(_)) | Err(DbError::DuplicateKey(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Column updates that fill the R half of a T row.
    fn r_fill_cols(&self, r_vals: &[Value]) -> Vec<(usize, Value)> {
        r_vals.iter().cloned().enumerate().collect()
    }

    /// Column updates that fill the S half of a T row.
    fn s_fill_cols(&self, s_vals: &[Value]) -> Vec<(usize, Value)> {
        s_vals
            .iter()
            .enumerate()
            .map(|(i, v)| (self.s_to_t[i], v.clone()))
            .collect()
    }

    /// Column updates that clear the S half (back to `s_null`), leaving
    /// the join column alone (the R half still carries it).
    fn s_clear_cols(&self) -> Vec<(usize, Value)> {
        (0..self.s_arity)
            .filter(|&i| i != self.s_join)
            .map(|i| (self.s_to_t[i], Value::Null))
            .collect()
    }

    // --- dispatch ------------------------------------------------------------

    /// Apply one logged source-table operation to T. Operations on
    /// other tables must be filtered out by the caller. Opens a write
    /// session on T for the single record; the batched path
    /// ([`TransformOperator::apply_batch`]) shares one session across a
    /// whole batch.
    pub fn apply(&self, lsn: Lsn, op: &LogOp) -> DbResult<()> {
        let t = Arc::clone(&self.t);
        let mut ts = t.write_session();
        self.apply_in(&mut ts, lsn, op)
    }

    /// Rule dispatch against an already-open session on T.
    fn apply_in(&self, ts: &mut WriteSession<'_>, lsn: Lsn, op: &LogOp) -> DbResult<()> {
        if op.table() == self.r.id() {
            match op {
                LogOp::Insert { row, .. } => self.r_insert(ts, row, lsn),
                LogOp::Delete { key, .. } => self.r_delete(ts, key, lsn),
                LogOp::Update { key, old, new, .. } => self.r_update(ts, key, old, new, lsn),
            }
        } else if op.table() == self.s.id() {
            match op {
                LogOp::Insert { row, .. } => self.s_insert(ts, row, lsn),
                LogOp::Delete { key, .. } => self.s_delete(ts, key, lsn),
                LogOp::Update { key, old, new, .. } => self.s_update(ts, key, old, new, lsn),
            }
        } else {
            Ok(())
        }
    }

    /// Tables this rule set reads ops for.
    pub fn source_ids(&self) -> Vec<TableId> {
        vec![self.r.id(), self.s.id()]
    }

    /// T keys affected by a lock on a source record — the
    /// synchronization step transfers source locks through this
    /// (§3.4/§4.3).
    pub fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)> {
        let idx = if table == self.r.id() {
            self.idx_rpk
        } else if table == self.s.id() {
            self.idx_spk
        } else {
            return Vec::new();
        };
        self.t
            .index_lookup(idx, key)
            .into_iter()
            .map(|k| (self.t.id(), k))
            .collect()
    }

    /// Initial population (§3.2/§4.1): fuzzy-scan both sources, apply
    /// the FOJ operator, insert the initial image into T. Returns
    /// `(rows_read, rows_written)`.
    pub fn populate(&self, chunk_size: usize) -> DbResult<(usize, usize)> {
        self.populate_throttled(chunk_size, &mut Throttle::new(1.0))
    }

    /// Like [`FojMapping::populate`] but paying the given throttle per
    /// chunk of work, so a low-priority population interleaves with
    /// user transactions at fine granularity (§3.3: the transformation
    /// is "a low priority background process").
    pub fn populate_throttled(
        &self,
        chunk_size: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        self.populate_with(None, chunk_size, throttle)
    }

    /// [`FojMapping::populate_throttled`] with the database handle
    /// threaded through so the fuzzy scan reports per-chunk crash
    /// points (crash simulation).
    pub(crate) fn populate_with(
        &self,
        db: Option<&Database>,
        chunk_size: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        use std::time::Instant;
        let mut r_rows: Vec<Vec<Value>> = Vec::new();
        let mut read = scan_source_throttled(db, &self.r, chunk_size, throttle, |batch| {
            r_rows.extend(batch.into_iter().map(|(_, row)| row.values));
            Ok(())
        })?;
        let mut s_rows: Vec<Vec<Value>> = Vec::new();
        read += scan_source_throttled(db, &self.s, chunk_size, throttle, |batch| {
            s_rows.extend(batch.into_iter().map(|(_, row)| row.values));
            Ok(())
        })?;
        // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
        let t0 = Instant::now();
        let image = reference_foj(self, &r_rows, &s_rows);
        throttle.pay(t0.elapsed());
        let written = image.len();
        // Insert the image chunk-wise, one write session per chunk, so
        // the latch is held only briefly while concurrent writers run.
        let mut it = image.into_iter().peekable();
        while it.peek().is_some() {
            if let Some(db) = db {
                db.crash_point("populate.chunk")?;
            }
            // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
            let t0 = Instant::now();
            let t = Arc::clone(&self.t);
            let mut ts = t.write_session();
            for (values, presence) in it.by_ref().take(chunk_size.max(1)) {
                // Duplicate keys can occur if a concurrent writer
                // slipped a row into the scans twice-joined; the rules
                // repair it.
                let _ = self.insert_t(&mut ts, values, presence, Lsn::ZERO);
            }
            drop(ts);
            throttle.pay(t0.elapsed());
        }
        Ok((read, written))
    }

    /// Parallel initial population: both sources are fuzzy-scanned by
    /// `workers` threads over disjoint shard classes, the image is
    /// joined once, then bucketed by T's shard routing and inserted by
    /// `workers` threads under masked write sessions (each bucket's
    /// rows live entirely in its worker's shard class, so the sessions
    /// never contend). Each thread pays [`worker_share`] of the
    /// priority budget.
    pub(crate) fn populate_parallel_with(
        &self,
        db: Option<&Database>,
        chunk_size: usize,
        workers: usize,
        priority: f64,
    ) -> DbResult<(usize, usize)> {
        use std::time::Instant;
        let workers = shard_stride(workers.max(1));
        if workers <= 1 {
            return self.populate_with(db, chunk_size, &mut Throttle::new(priority));
        }
        let r_acc: std::sync::Mutex<Vec<Vec<Value>>> = std::sync::Mutex::new(Vec::new());
        let r_sink = |_w: usize, batch: Vec<(Key, Row)>| {
            let mut rows: Vec<Vec<Value>> = batch.into_iter().map(|(_, row)| row.values).collect();
            r_acc
                .lock()
                .expect("scan collector poisoned") // morph-lint: allow(panic, std mutex poison implies a lane already panicked; that panic is re-raised at the join)
                .append(&mut rows);
            Ok(())
        };
        let mut read =
            scan_source_partitioned(db, &self.r, chunk_size, workers, priority, &r_sink)?;
        let s_acc: std::sync::Mutex<Vec<Vec<Value>>> = std::sync::Mutex::new(Vec::new());
        let s_sink = |_w: usize, batch: Vec<(Key, Row)>| {
            let mut rows: Vec<Vec<Value>> = batch.into_iter().map(|(_, row)| row.values).collect();
            s_acc
                .lock()
                .expect("scan collector poisoned") // morph-lint: allow(panic, std mutex poison implies a lane already panicked; that panic is re-raised at the join)
                .append(&mut rows);
            Ok(())
        };
        read += scan_source_partitioned(db, &self.s, chunk_size, workers, priority, &s_sink)?;
        let r_rows = r_acc.into_inner().expect("scan collector poisoned"); // morph-lint: allow(panic, into_inner poison implies a scan worker panicked; scan_source_partitioned already surfaced it)
        let s_rows = s_acc.into_inner().expect("scan collector poisoned"); // morph-lint: allow(panic, into_inner poison implies a scan worker panicked; scan_source_partitioned already surfaced it)
        let image = reference_foj(self, &r_rows, &s_rows);
        let written = image.len();
        let schema = self.t.schema();
        let mut buckets: Vec<Vec<(Vec<Value>, Presence)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (values, presence) in image {
            let key = schema.key_of(&values);
            buckets[self.t.shard_of_key(&key) % workers].push((values, presence));
        }
        std::thread::scope(|scope| -> DbResult<()> {
            let handles: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(w, bucket)| {
                    let t = Arc::clone(&self.t);
                    scope.spawn(move || -> DbResult<()> {
                        let mut throttle = Throttle::new(worker_share(priority, workers));
                        let mut it = bucket.into_iter().peekable();
                        while it.peek().is_some() {
                            if let Some(db) = db {
                                db.crash_point("populate.chunk")?;
                            }
                            // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
                            let t0 = Instant::now();
                            let mut ts = t.write_session_masked(workers, w);
                            for (values, presence) in it.by_ref().take(chunk_size.max(1)) {
                                let _ = self.insert_t(&mut ts, values, presence, Lsn::ZERO);
                            }
                            drop(ts);
                            throttle.pay(t0.elapsed());
                        }
                        Ok(())
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("population worker panicked")?; // morph-lint: allow(panic, re-raises a worker panic at the join point; mapping it to DbError would bury the original panic site)
            }
            Ok(())
        })?;
        Ok((read, written))
    }

    /// Immutable data needed to mirror source-table locks onto T from
    /// arbitrary threads (the non-blocking-commit interceptor).
    pub fn mirror_map(&self) -> crate::sync::MirrorMap {
        crate::sync::MirrorMap::Foj {
            r_id: self.r.id(),
            s_id: self.s.id(),
            t: Arc::clone(&self.t),
            idx_rpk: self.idx_rpk,
            idx_join: self.idx_join,
            idx_spk: self.idx_spk,
            r_pk: self.r_pk.clone(),
            r_join: self.r_join,
            s_join: self.s_join,
            many: self.many,
        }
    }

    // --- Rule 1: insert r^y_x ------------------------------------------------

    fn r_insert(&self, ts: &mut WriteSession<'_>, r_vals: &[Value], lsn: Lsn) -> DbResult<()> {
        let y = self.rpk_of_r(r_vals);
        if !ts.index_lookup(self.idx_rpk, &y).is_empty() {
            return Ok(()); // t^y exists: already reflected (Theorem 1)
        }
        let x = &r_vals[self.r_join];
        if x.is_null() {
            // A NULL join attribute never matches: standalone row.
            return self.insert_t(ts, self.t_from_r(r_vals), LEFT, lsn);
        }
        let rows_x = ts.index_rows(self.idx_join, &self.join_key(x));

        if !self.many {
            if let Some((k, _)) = rows_x
                .iter()
                .find(|(_, row)| row.presence.right && !row.presence.left)
            {
                // t_null_x found: absorb r into it.
                self.set_row(ts, k, &self.r_fill_cols(r_vals), Presence::BOTH, lsn)?;
            } else if let Some((_, row)) = rows_x.iter().find(|(_, row)| row.presence.right) {
                // t^v_x found: borrow its S half.
                let s_vals = self.s_part(&row.values);
                self.insert_t(ts, self.t_join(r_vals, &s_vals), Presence::BOTH, lsn)?;
            } else {
                self.insert_t(ts, self.t_from_r(r_vals), LEFT, lsn)?;
            }
            return Ok(());
        }

        // Many-to-many: join r with every distinct S-row carrying x,
        // consuming r_null placeholders as they get matched.
        let mut seen = BTreeSet::new();
        let mut matched = false;
        for (k, row) in &rows_x {
            if !row.presence.right {
                continue;
            }
            let spk = self.spk_of_t(&row.values);
            if seen.insert(spk) {
                let s_vals = self.s_part(&row.values);
                self.insert_t(ts, self.t_join(r_vals, &s_vals), Presence::BOTH, lsn)?;
                matched = true;
                if !row.presence.left {
                    // It was a t_null_x placeholder; s now has a match.
                    let _ = ts.delete(k);
                }
            }
        }
        if !matched {
            self.insert_t(ts, self.t_from_r(r_vals), LEFT, lsn)?;
        }
        Ok(())
    }

    // --- Rule 3: delete r^y ----------------------------------------------------

    fn r_delete(&self, ts: &mut WriteSession<'_>, y: &Key, lsn: Lsn) -> DbResult<()> {
        let rows_y = ts.index_rows(self.idx_rpk, y);
        if rows_y.is_empty() {
            return Ok(()); // already reflected
        }
        let doomed: BTreeSet<&Key> = rows_y.iter().map(|(k, _)| k).collect();
        for (k, row) in &rows_y {
            if row.presence.right {
                // Guarantee the S half survives somewhere (FOJ).
                let spk = self.spk_of_t(&row.values);
                let survives = ts
                    .index_rows(self.idx_spk, &spk)
                    .iter()
                    .any(|(k2, r2)| !doomed.contains(k2) && r2.presence.right);
                if !survives {
                    let s_vals = self.s_part(&row.values);
                    self.insert_t(ts, self.t_from_s(&s_vals), RIGHT, lsn)?;
                }
            }
            let _ = ts.delete(k);
        }
        Ok(())
    }

    // --- Rules 5 & 7 (R side): update r ------------------------------------------

    fn r_update(
        &self,
        ts: &mut WriteSession<'_>,
        y: &Key,
        old: &[(usize, Value)],
        new: &[(usize, Value)],
        lsn: Lsn,
    ) -> DbResult<()> {
        let rows_y = ts.index_rows(self.idx_rpk, y);
        if rows_y.is_empty() {
            return Ok(()); // Theorem 1: newer state already reflected
        }
        let join_changed = new.iter().any(|(i, _)| *i == self.r_join);

        if !join_changed {
            // Rule 7 (R side): update the R columns in place.
            for (k, row) in &rows_y {
                self.set_row(ts, k, new, row.presence, lsn)?;
            }
            return Ok(());
        }

        // Rule 5: the join attribute moves from x to z.
        let x_old = old
            .iter()
            .find(|(i, _)| *i == self.r_join)
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null);
        // Paper guard: if the row's current join value is not x, a newer
        // state is already reflected — skip.
        if rows_y[0].1.values[self.r_join] != x_old {
            return Ok(());
        }
        let r_new = {
            let mut r = self.r_part(&rows_y[0].1.values);
            for (i, v) in new {
                if *i < r.len() {
                    r[*i] = v.clone();
                }
            }
            r
        };

        // Delete side: remove r's old contributions, preserving S halves.
        let doomed: BTreeSet<&Key> = rows_y.iter().map(|(k, _)| k).collect();
        for (k, row) in &rows_y {
            if row.presence.right {
                let spk = self.spk_of_t(&row.values);
                let survives = ts
                    .index_rows(self.idx_spk, &spk)
                    .iter()
                    .any(|(k2, r2)| !doomed.contains(k2) && r2.presence.right);
                if !survives {
                    let s_vals = self.s_part(&row.values);
                    self.insert_t(ts, self.t_from_s(&s_vals), RIGHT, lsn)?;
                }
            }
            let _ = ts.delete(k);
        }

        // Insert side: r_new joins whatever carries z.
        let z = r_new[self.r_join].clone();
        if z.is_null() {
            return self.insert_t(ts, self.t_from_r(&r_new), LEFT, lsn);
        }
        let rows_z = ts.index_rows(self.idx_join, &self.join_key(&z));
        if !self.many {
            if let Some((k2, _)) = rows_z
                .iter()
                .find(|(_, r2)| r2.presence.right && !r2.presence.left)
            {
                self.set_row(ts, k2, &self.r_fill_cols(&r_new), Presence::BOTH, lsn)?;
            } else if let Some((_, r2)) = rows_z.iter().find(|(_, r2)| r2.presence.right) {
                let s_vals = self.s_part(&r2.values);
                self.insert_t(ts, self.t_join(&r_new, &s_vals), Presence::BOTH, lsn)?;
            } else {
                self.insert_t(ts, self.t_from_r(&r_new), LEFT, lsn)?;
            }
            return Ok(());
        }
        let mut seen = BTreeSet::new();
        let mut matched = false;
        for (k2, r2) in &rows_z {
            if !r2.presence.right {
                continue;
            }
            let spk = self.spk_of_t(&r2.values);
            if seen.insert(spk) {
                let s_vals = self.s_part(&r2.values);
                self.insert_t(ts, self.t_join(&r_new, &s_vals), Presence::BOTH, lsn)?;
                matched = true;
                if !r2.presence.left {
                    let _ = ts.delete(k2);
                }
            }
        }
        if !matched {
            self.insert_t(ts, self.t_from_r(&r_new), LEFT, lsn)?;
        }
        Ok(())
    }

    // --- Rule 2: insert s^x -------------------------------------------------------

    fn s_insert(&self, ts: &mut WriteSession<'_>, s_vals: &[Value], lsn: Lsn) -> DbResult<()> {
        let x = &s_vals[self.s_join];
        if self.many {
            let u = self.spk_of_s(s_vals);
            if !ts.index_lookup(self.idx_spk, &u).is_empty() {
                return Ok(()); // already reflected
            }
            if x.is_null() {
                return self.insert_t(ts, self.t_from_s(s_vals), RIGHT, lsn);
            }
            let rows_x = ts.index_rows(self.idx_join, &self.join_key(x));
            let mut seen = BTreeSet::new();
            let mut matched = false;
            for (k, row) in &rows_x {
                if !row.presence.left {
                    continue;
                }
                let ypk = self.rpk_of_t(&row.values);
                if seen.insert(ypk) {
                    let r_vals = self.r_part(&row.values);
                    self.insert_t(ts, self.t_join(&r_vals, s_vals), Presence::BOTH, lsn)?;
                    matched = true;
                    if !row.presence.right {
                        // r's placeholder is now matched.
                        let _ = ts.delete(k);
                    }
                }
            }
            if !matched {
                self.insert_t(ts, self.t_from_s(s_vals), RIGHT, lsn)?;
            }
            return Ok(());
        }

        if x.is_null() {
            return self.insert_t(ts, self.t_from_s(s_vals), RIGHT, lsn);
        }
        let rows_x = ts.index_rows(self.idx_join, &self.join_key(x));
        if rows_x.is_empty() {
            return self.insert_t(ts, self.t_from_s(s_vals), RIGHT, lsn);
        }
        // Fill every row still joined with s_null; rows already joined
        // with a real S row are up to date (Theorem 1).
        let fill = self.s_fill_cols(s_vals);
        let mut filled = false;
        for (k, row) in &rows_x {
            if !row.presence.right {
                self.set_row(ts, k, &fill, Presence::BOTH, lsn)?;
                filled = true;
            }
        }
        if filled {
            // Defensive: if a t_null_x placeholder coexisted with the
            // rows we just filled, s^x is now represented by real join
            // partners and the placeholder must go.
            for (k, row) in &rows_x {
                if row.presence.right && !row.presence.left {
                    let _ = ts.delete(k);
                }
            }
        }
        Ok(())
    }

    // --- Rule 4: delete s^x ----------------------------------------------------------

    fn s_delete(&self, ts: &mut WriteSession<'_>, spk: &Key, lsn: Lsn) -> DbResult<()> {
        let rows_u = ts.index_rows(self.idx_spk, spk);
        if rows_u.is_empty() {
            return Ok(());
        }
        let _ = lsn;
        for (k, row) in &rows_u {
            if !row.presence.right {
                continue; // spurious (left rows can't carry this spk)
            }
            if row.presence.left {
                if self.many {
                    // Keep r alive if this was its last pairing.
                    let ypk = self.rpk_of_t(&row.values);
                    let survives = ts
                        .index_rows(self.idx_rpk, &ypk)
                        .iter()
                        .any(|(k2, r2)| k2 != k && r2.presence.left);
                    if !survives {
                        let r_vals = self.r_part(&row.values);
                        self.insert_t(ts, self.t_from_r(&r_vals), LEFT, lsn)?;
                    }
                    let _ = ts.delete(k);
                } else {
                    // One-to-many: clear the S half in place.
                    self.set_row(ts, k, &self.s_clear_cols(), LEFT, lsn)?;
                }
            } else {
                // t_null_x placeholder: remove it.
                let _ = ts.delete(k);
            }
        }
        Ok(())
    }

    // --- Rules 6 & 7 (S side): update s --------------------------------------------------

    fn s_update(
        &self,
        ts: &mut WriteSession<'_>,
        spk: &Key,
        old: &[(usize, Value)],
        new: &[(usize, Value)],
        lsn: Lsn,
    ) -> DbResult<()> {
        let join_changed = new.iter().any(|(i, _)| *i == self.s_join);
        let rows_u = ts.index_rows(self.idx_spk, spk);
        if rows_u.is_empty() {
            return Ok(()); // not reflected / newer state
        }

        if !join_changed {
            // Rule 7 (S side): update S columns in every carrying row.
            let cols: Vec<(usize, Value)> = new
                .iter()
                .map(|(i, v)| (self.s_to_t[*i], v.clone()))
                .collect();
            for (k, row) in &rows_u {
                if row.presence.right {
                    self.set_row(ts, k, &cols, row.presence, lsn)?;
                }
            }
            return Ok(());
        }

        // Rule 6: the S join attribute moves from x to z. Extract the
        // current S image first ("sx is used to extract the attribute
        // values of sz since the log does not include this
        // information").
        let Some((_, src)) = rows_u.iter().find(|(_, r)| r.presence.right) else {
            return Ok(());
        };
        // Paper-style guard: if the row's join value no longer matches
        // the logged pre-image, a newer state is reflected — skip.
        let x_old = old
            .iter()
            .find(|(i, _)| *i == self.s_join)
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null);
        if src.values[self.s_to_t[self.s_join]] != x_old {
            return Ok(());
        }
        let mut s_new = self.s_part(&src.values);
        for (i, v) in new {
            if *i < s_new.len() {
                s_new[*i] = v.clone();
            }
        }

        // Delete side (like delete of s^x)…
        self.s_delete(ts, spk, lsn)?;
        // …followed by insert of s^z.
        self.s_insert(ts, &s_new, lsn)
    }
}

impl TransformOperator for FojMapping {
    fn source_ids(&self) -> Vec<TableId> {
        FojMapping::source_ids(self)
    }

    /// FOJ propagation rules 1–7 (§4.2). Content-based idempotence: no
    /// LSN gating, decisions come from presence/index lookups on T.
    fn apply(&mut self, lsn: Lsn, op: &LogOp) -> DbResult<()> {
        FojMapping::apply(self, lsn, op)
    }

    /// One write session on T for the whole batch — a single latch
    /// round trip instead of one per record.
    fn apply_batch(&mut self, batch: &[(Lsn, &LogOp)]) -> DbResult<()> {
        let t = Arc::clone(&self.t);
        let mut ts = t.write_session();
        for &(lsn, op) in batch {
            self.apply_in(&mut ts, lsn, op)?;
        }
        Ok(())
    }

    /// Sharded apply. Only R-updates touching neither the join
    /// attribute nor an R-pk column get a lane: their rule (rule 7,
    /// R side) probes `__rpk`(y) alone, and T is sharded by the R-pk
    /// key prefix, so every row of subject y — whatever its join value,
    /// including rows materialized by a fuzzy copy racing ahead of the
    /// log — lives in the lane's shard class. Every other record type
    /// probes by join value or S-key, whose carrying rows span subjects
    /// (and thus shards), so it is a barrier.
    fn apply_batch_sharded(
        &mut self,
        batch: &[(Lsn, &LogOp)],
        pool: &ApplyPool,
        scratch: &mut LaneScratch,
    ) -> DbResult<()> {
        let stride = shard_stride(pool.width().max(1));
        if stride <= 1 {
            return self.apply_batch(batch);
        }
        let r_id = self.r.id();
        let this = &*self;
        drive_segments(
            batch,
            stride,
            scratch,
            |op| match op {
                LogOp::Update { key, new, .. }
                    if op.table() == r_id
                        && !new
                            .iter()
                            .any(|(i, _)| *i == this.r_join || this.r_pk.contains(i)) =>
                {
                    LaneTag::Class(this.t.shard_of_component(key.values()))
                }
                _ => LaneTag::Barrier,
            },
            |seg| match seg {
                SegmentRun::Serial(records) => {
                    let mut ts = this.t.write_session();
                    for &(lsn, op) in records {
                        this.apply_in(&mut ts, lsn, op)?;
                    }
                    Ok(())
                }
                SegmentRun::Parallel(slice, lane_runs) => {
                    // One epoch per parallel segment: each non-empty
                    // lane is one sequential task under a masked write
                    // session; the epoch fence replaces the old
                    // scoped-spawn join.
                    let tasks: Vec<EpochTask> = lane_runs
                        .iter()
                        .enumerate()
                        .filter(|(_, run)| !run.is_empty())
                        .map(|(w, run)| {
                            Box::new(move || {
                                let mut ts = this.t.write_session_masked(stride, w);
                                for &ri in run {
                                    let (lsn, op) = slice[ri as usize];
                                    this.apply_in(&mut ts, lsn, op)?;
                                }
                                Ok(())
                            }) as EpochTask
                        })
                        .collect();
                    pool.run_epoch(tasks)
                }
            },
        )
    }

    /// Rules 5 and 6 guard on the *logged pre-image* of the join
    /// attribute against T's current content; an intermediate update
    /// can therefore be load-bearing and only deletes may coalesce
    /// earlier records away.
    fn coalesce_policy(&self) -> crate::operator::CoalescePolicy {
        crate::operator::CoalescePolicy::DeleteOnly
    }

    /// The join attribute is the column those guards read.
    fn coalesce_barrier_cols(&self, table: TableId) -> Vec<usize> {
        if table == self.r.id() {
            vec![self.r_join]
        } else if table == self.s.id() {
            vec![self.s_join]
        } else {
            Vec::new()
        }
    }

    fn populate_throttled(
        &mut self,
        db: &Database,
        chunk: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        FojMapping::populate_with(self, Some(db), chunk, throttle)
    }

    fn populate_parallel(
        &mut self,
        db: &Database,
        chunk: usize,
        workers: usize,
        priority: f64,
    ) -> DbResult<(usize, usize)> {
        FojMapping::populate_parallel_with(self, Some(db), chunk, workers, priority)
    }

    fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)> {
        FojMapping::target_keys_for(self, table, key)
    }

    fn mirror_map(&self) -> crate::sync::MirrorMap {
        FojMapping::mirror_map(self)
    }
}

/// Reference full outer join — the oracle the property tests (and the
/// initial population) use. NULL join attributes never match.
pub fn reference_foj(
    m: &FojMapping,
    r_rows: &[Vec<Value>],
    s_rows: &[Vec<Value>],
) -> Vec<(Vec<Value>, Presence)> {
    // Hash join on the join attribute (NULLs never participate).
    let mut by_join: std::collections::HashMap<&Value, Vec<usize>> =
        std::collections::HashMap::new();
    for (si, s) in s_rows.iter().enumerate() {
        if !s[m.s_join].is_null() {
            by_join.entry(&s[m.s_join]).or_default().push(si);
        }
    }
    let mut out = Vec::with_capacity(r_rows.len() + s_rows.len());
    let mut s_matched = vec![false; s_rows.len()];
    for r in r_rows {
        let x = &r[m.r_join];
        let mut matched = false;
        if !x.is_null() {
            if let Some(matches) = by_join.get(x) {
                for &si in matches {
                    out.push((m.t_join(r, &s_rows[si]), Presence::BOTH));
                    s_matched[si] = true;
                    matched = true;
                }
            }
        }
        if !matched {
            out.push((m.t_from_r(r), LEFT));
        }
    }
    for (si, s) in s_rows.iter().enumerate() {
        if !s_matched[si] {
            out.push((m.t_from_s(s), RIGHT));
        }
    }
    let schema = m.t.schema();
    out.sort_by_key(|a| schema.key_of(&a.0));
    out
}

/// Compare T against the reference FOJ of the *current* R and S
/// contents. Returns a human-readable mismatch description, if any.
pub fn verify_against_reference(m: &FojMapping) -> Result<(), String> {
    let r_rows: Vec<Vec<Value>> = m.r.snapshot().into_iter().map(|(_, r)| r.values).collect();
    let s_rows: Vec<Vec<Value>> = m.s.snapshot().into_iter().map(|(_, r)| r.values).collect();
    let expect = reference_foj(m, &r_rows, &s_rows);
    let got: Vec<(Vec<Value>, Presence)> =
        m.t.snapshot()
            .into_iter()
            .map(|(_, r)| (r.values, r.presence))
            .collect();
    if expect.len() != got.len() {
        return Err(format!(
            "row count mismatch: expected {}, got {}\nexpected: {:?}\ngot: {:?}",
            expect.len(),
            got.len(),
            expect,
            got
        ));
    }
    for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
        if e != g {
            return Err(format!("row {i} mismatch:\nexpected {e:?}\ngot      {g:?}"));
        }
    }
    Ok(())
}

/// Create standard source schemas used by tests and examples: R(a, b,
/// c) keyed by `a` joining on `c`, and S(c, d) keyed by `c` — the
/// paper's Figure 1 shape.
pub fn figure1_schemas() -> (Schema, Schema) {
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Str)
        .primary_key(&["a"])
        .build()
        .expect("static schema"); // morph-lint: allow(panic, static schema literal; the builder cannot fail on compile-time constants)
    let s = Schema::builder()
        .column("c", ColumnType::Str)
        .nullable("d", ColumnType::Str)
        .primary_key(&["c"])
        .build()
        .expect("static schema"); // morph-lint: allow(panic, static schema literal; the builder cannot fail on compile-time constants)
    (r, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_wal::LogOp;

    fn setup() -> (Database, FojMapping) {
        let db = Database::new();
        let (rs, ss) = figure1_schemas();
        db.create_table("R", rs).unwrap();
        db.create_table("S", ss).unwrap();
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let m = FojMapping::prepare(&db, &spec).unwrap();
        (db, m)
    }

    fn setup_m2m() -> (Database, FojMapping) {
        let db = Database::new();
        let r = Schema::builder()
            .column("a", ColumnType::Int)
            .nullable("c", ColumnType::Str)
            .primary_key(&["a"])
            .build()
            .unwrap();
        let s = Schema::builder()
            .column("sid", ColumnType::Int)
            .nullable("c", ColumnType::Str)
            .nullable("d", ColumnType::Str)
            .primary_key(&["sid"])
            .build()
            .unwrap();
        db.create_table("R", r).unwrap();
        db.create_table("S", s).unwrap();
        let spec = FojSpec::new("R", "S", "T", "c", "c").many_to_many();
        let m = FojMapping::prepare(&db, &spec).unwrap();
        (db, m)
    }

    fn r_row(a: i64, b: &str, c: &str) -> Vec<Value> {
        vec![Value::Int(a), Value::str(b), Value::str(c)]
    }

    fn s_row(c: &str, d: &str) -> Vec<Value> {
        vec![Value::str(c), Value::str(d)]
    }

    fn ins(m: &FojMapping, t: &Arc<Table>, row: Vec<Value>, lsn: u64) {
        m.apply(Lsn(lsn), &LogOp::Insert { table: t.id(), row })
            .unwrap();
    }

    fn verify(m: &FojMapping) {
        if let Err(e) = verify_against_reference(m) {
            panic!("T diverged from reference FOJ: {e}");
        }
    }

    /// Drive source tables directly (simulating already-applied ops)
    /// and mirror each op through the rules, then verify.
    struct Driver<'a> {
        m: &'a FojMapping,
        lsn: u64,
    }

    impl<'a> Driver<'a> {
        fn new(m: &'a FojMapping) -> Self {
            Driver { m, lsn: 0 }
        }
        fn next(&mut self) -> Lsn {
            self.lsn += 1;
            Lsn(self.lsn)
        }
        fn insert_r(&mut self, row: Vec<Value>) {
            let lsn = self.next();
            self.m.r.insert(row.clone(), lsn).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Insert {
                        table: self.m.r.id(),
                        row,
                    },
                )
                .unwrap();
        }
        fn insert_s(&mut self, row: Vec<Value>) {
            let lsn = self.next();
            self.m.s.insert(row.clone(), lsn).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Insert {
                        table: self.m.s.id(),
                        row,
                    },
                )
                .unwrap();
        }
        fn delete_r(&mut self, key: Key) {
            let lsn = self.next();
            let old = self.m.r.delete(&key).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Delete {
                        table: self.m.r.id(),
                        key,
                        old: old.values,
                    },
                )
                .unwrap();
        }
        fn delete_s(&mut self, key: Key) {
            let lsn = self.next();
            let old = self.m.s.delete(&key).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Delete {
                        table: self.m.s.id(),
                        key,
                        old: old.values,
                    },
                )
                .unwrap();
        }
        fn update_r(&mut self, key: Key, cols: Vec<(usize, Value)>) {
            let lsn = self.next();
            let out = self.m.r.update(&key, &cols, lsn).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Update {
                        table: self.m.r.id(),
                        key,
                        old: out.old_cols.clone(),
                        new: cols,
                    },
                )
                .unwrap();
        }
        fn update_s(&mut self, key: Key, cols: Vec<(usize, Value)>) {
            let lsn = self.next();
            let out = self.m.s.update(&key, &cols, lsn).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Update {
                        table: self.m.s.id(),
                        key,
                        old: out.old_cols.clone(),
                        new: cols,
                    },
                )
                .unwrap();
        }
    }

    #[test]
    fn figure1_example() {
        // The paper's Figure 1: R = {(1,a,c1),(2,b,c1),(5,e,f)},
        // S = {(c1,d1),(c2,d2)} — result has a NULL-extended row on each
        // side.
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_r(r_row(1, "a", "c1"));
        d.insert_r(r_row(2, "b", "c1"));
        d.insert_r(r_row(5, "e", "f"));
        d.insert_s(s_row("c1", "d1"));
        d.insert_s(s_row("c2", "d2"));
        verify(&m);
        assert_eq!(m.t_table().len(), 4); // (1,c1,d1),(2,c1,d1),(5,f,-),( -,c2,d2)
    }

    #[test]
    fn rule1_insert_r_all_three_cases() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        // Case: no join match → t^y_null.
        d.insert_r(r_row(1, "a", "x"));
        verify(&m);
        // Case: t_null_x exists → absorbed.
        d.insert_s(s_row("q", "dq"));
        d.insert_r(r_row(2, "b", "q"));
        verify(&m);
        // Case: t^v_x exists → borrow S half.
        d.insert_r(r_row(3, "c", "q"));
        verify(&m);
        assert_eq!(m.t_table().len(), 3);
    }

    #[test]
    fn rule1_is_idempotent() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_s(s_row("q", "dq"));
        d.insert_r(r_row(1, "a", "q"));
        // Re-apply the same insert log record (fuzzy overlap).
        ins(&m, &m.r.clone(), r_row(1, "a", "q"), 99);
        verify(&m);
    }

    #[test]
    fn rule2_insert_s_fills_null_rows() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_r(r_row(1, "a", "q"));
        d.insert_r(r_row(2, "b", "q"));
        d.insert_s(s_row("q", "dq"));
        verify(&m);
        // Unmatched s creates t_null_x.
        d.insert_s(s_row("z", "dz"));
        verify(&m);
        assert_eq!(m.t_table().len(), 3);
        // Idempotent re-application.
        ins(&m, &m.s.clone(), s_row("z", "dz"), 99);
        verify(&m);
    }

    #[test]
    fn rule3_delete_r_preserves_last_s() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_s(s_row("q", "dq"));
        d.insert_r(r_row(1, "a", "q"));
        d.insert_r(r_row(2, "b", "q"));
        // Deleting one of two joined r's: s survives in the other row.
        d.delete_r(Key::single(1));
        verify(&m);
        // Deleting the last one: s falls back to t_null_q.
        d.delete_r(Key::single(2));
        verify(&m);
        assert_eq!(m.t_table().len(), 1);
        // Deleting a vanished r is ignored.
        m.apply(
            Lsn(99),
            &LogOp::Delete {
                table: m.r.id(),
                key: Key::single(1),
                old: vec![],
            },
        )
        .unwrap();
        verify(&m);
    }

    #[test]
    fn rule4_delete_s_nulls_join_partners() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_s(s_row("q", "dq"));
        d.insert_s(s_row("z", "dz"));
        d.insert_r(r_row(1, "a", "q"));
        d.delete_s(Key::single("q")); // partner row loses its S half
        verify(&m);
        d.delete_s(Key::single("z")); // t_null_z disappears
        verify(&m);
        assert_eq!(m.t_table().len(), 1);
    }

    #[test]
    fn rule5_update_r_join_attribute() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_s(s_row("q", "dq"));
        d.insert_s(s_row("z", "dz"));
        d.insert_r(r_row(1, "a", "q"));
        // Move r from q to z: s^q must fall back to t_null_q, r joins z.
        d.update_r(Key::single(1), vec![(2, Value::str("z"))]);
        verify(&m);
        // Move to an unmatched value.
        d.update_r(Key::single(1), vec![(2, Value::str("w"))]);
        verify(&m);
        // Move to a value with an existing joined partner.
        d.insert_r(r_row(2, "b", "q"));
        d.update_r(Key::single(1), vec![(2, Value::str("q"))]);
        verify(&m);
    }

    #[test]
    fn rule6_update_s_join_attribute() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_r(r_row(1, "a", "q"));
        d.insert_r(r_row(2, "b", "z"));
        d.insert_s(s_row("q", "dq"));
        // Move s from q to z: r1 loses its S half, r2 gains it.
        d.update_s(Key::single("q"), vec![(0, Value::str("z"))]);
        verify(&m);
        // Move s to a fresh value: t_null appears.
        d.update_s(Key::single("z"), vec![(0, Value::str("v"))]);
        verify(&m);
    }

    #[test]
    fn rule7_non_join_updates() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_s(s_row("q", "dq"));
        d.insert_r(r_row(1, "a", "q"));
        d.insert_r(r_row(2, "b", "q"));
        d.update_r(Key::single(1), vec![(1, Value::str("a2"))]);
        verify(&m);
        // S-side non-join update fans out to both joined rows.
        d.update_s(Key::single("q"), vec![(1, Value::str("dq2"))]);
        verify(&m);
        // Update of a missing record is ignored.
        m.apply(
            Lsn(99),
            &LogOp::Update {
                table: m.r.id(),
                key: Key::single(77),
                old: vec![(1, Value::str("x"))],
                new: vec![(1, Value::str("y"))],
            },
        )
        .unwrap();
        verify(&m);
    }

    #[test]
    fn r_pkey_update_moves_row() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_s(s_row("q", "dq"));
        d.insert_r(r_row(1, "a", "q"));
        d.update_r(Key::single(1), vec![(0, Value::Int(9))]);
        verify(&m);
    }

    #[test]
    fn null_join_attributes_never_match() {
        let (_db, m) = setup();
        let mut d = Driver::new(&m);
        d.insert_r(vec![Value::Int(1), Value::str("a"), Value::Null]);
        d.insert_s(s_row("q", "dq"));
        d.insert_r(r_row(2, "b", "q"));
        verify(&m);
        // r1 stands alone (NULL never matches); r2 absorbed s(q).
        assert_eq!(m.t_table().len(), 2);
        // Moving r2's join attribute to NULL detaches it from s.
        d.update_r(Key::single(2), vec![(2, Value::Null)]);
        verify(&m);
        assert_eq!(m.t_table().len(), 3);
    }

    #[test]
    fn m2m_basic_matrix() {
        let (_db, m) = setup_m2m();
        let mut d = Driver::new(&m);
        // 2 r's and 2 s's all on join value "g" → 4 joined rows.
        d.insert_r(vec![Value::Int(1), Value::str("g")]);
        d.insert_r(vec![Value::Int(2), Value::str("g")]);
        d.insert_s(vec![Value::Int(10), Value::str("g"), Value::str("d10")]);
        d.insert_s(vec![Value::Int(11), Value::str("g"), Value::str("d11")]);
        verify(&m);
        assert_eq!(m.t_table().len(), 4);
    }

    #[test]
    fn m2m_delete_r_keeps_s_alive() {
        let (_db, m) = setup_m2m();
        let mut d = Driver::new(&m);
        d.insert_r(vec![Value::Int(1), Value::str("g")]);
        d.insert_s(vec![Value::Int(10), Value::str("g"), Value::str("d")]);
        d.insert_s(vec![Value::Int(11), Value::str("g"), Value::str("e")]);
        d.delete_r(Key::single(1));
        verify(&m);
        assert_eq!(m.t_table().len(), 2); // two s placeholders
    }

    #[test]
    fn m2m_delete_s_keeps_r_alive() {
        let (_db, m) = setup_m2m();
        let mut d = Driver::new(&m);
        d.insert_r(vec![Value::Int(1), Value::str("g")]);
        d.insert_r(vec![Value::Int(2), Value::str("g")]);
        d.insert_s(vec![Value::Int(10), Value::str("g"), Value::str("d")]);
        d.delete_s(Key::single(10));
        verify(&m);
        assert_eq!(m.t_table().len(), 2); // two r placeholders
    }

    #[test]
    fn m2m_join_moves() {
        let (_db, m) = setup_m2m();
        let mut d = Driver::new(&m);
        d.insert_r(vec![Value::Int(1), Value::str("g")]);
        d.insert_r(vec![Value::Int(2), Value::str("h")]);
        d.insert_s(vec![Value::Int(10), Value::str("g"), Value::str("d")]);
        d.insert_s(vec![Value::Int(11), Value::str("h"), Value::str("e")]);
        // r1 moves from g to h: s10 orphaned, r1+s11 joined.
        d.update_r(Key::single(1), vec![(1, Value::str("h"))]);
        verify(&m);
        // s10 moves from g to h: joins both r's.
        d.update_s(Key::single(10), vec![(1, Value::str("h"))]);
        verify(&m);
        // s-side non-join update fans out.
        d.update_s(Key::single(10), vec![(2, Value::str("d2"))]);
        verify(&m);
        // s pk update (non-join): rows move.
        d.update_s(Key::single(10), vec![(0, Value::Int(99))]);
        verify(&m);
    }

    #[test]
    fn randomized_ops_match_reference_1n() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let (_db, m) = setup();
            let mut d = Driver::new(&m);
            let mut rng = StdRng::seed_from_u64(seed);
            let joins = ["j0", "j1", "j2", "j3"];
            for step in 0..300 {
                match rng.gen_range(0..6) {
                    0 => {
                        let a = rng.gen_range(0..20);
                        if m.r.get(&Key::single(a)).is_none() {
                            let c = joins[rng.gen_range(0..joins.len())];
                            d.insert_r(r_row(a, "b", c));
                        }
                    }
                    1 => {
                        let c = joins[rng.gen_range(0..joins.len())];
                        if m.s.get(&Key::single(c)).is_none() {
                            d.insert_s(s_row(c, "d"));
                        }
                    }
                    2 => {
                        let a = rng.gen_range(0..20);
                        if m.r.get(&Key::single(a)).is_some() {
                            d.delete_r(Key::single(a));
                        }
                    }
                    3 => {
                        let c = joins[rng.gen_range(0..joins.len())];
                        if m.s.get(&Key::single(c)).is_some() {
                            d.delete_s(Key::single(c));
                        }
                    }
                    4 => {
                        let a = rng.gen_range(0..20);
                        if m.r.get(&Key::single(a)).is_some() {
                            let c = joins[rng.gen_range(0..joins.len())];
                            if rng.gen_bool(0.5) {
                                d.update_r(Key::single(a), vec![(2, Value::str(c))]);
                            } else {
                                d.update_r(
                                    Key::single(a),
                                    vec![(1, Value::str(format!("b{step}")))],
                                );
                            }
                        }
                    }
                    _ => {
                        let c = joins[rng.gen_range(0..joins.len())];
                        if m.s.get(&Key::single(c)).is_some() {
                            let z = joins[rng.gen_range(0..joins.len())];
                            if rng.gen_bool(0.5) && m.s.get(&Key::single(z)).is_none() {
                                d.update_s(Key::single(c), vec![(0, Value::str(z))]);
                            } else {
                                d.update_s(
                                    Key::single(c),
                                    vec![(1, Value::str(format!("d{step}")))],
                                );
                            }
                        }
                    }
                }
            }
            verify(&m);
        }
    }

    #[test]
    fn randomized_ops_match_reference_m2m() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let (_db, m) = setup_m2m();
            let mut d = Driver::new(&m);
            let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
            let joins = ["g", "h", "k"];
            for step in 0..250 {
                match rng.gen_range(0..6) {
                    0 => {
                        let a = rng.gen_range(0..12);
                        if m.r.get(&Key::single(a)).is_none() {
                            let c = joins[rng.gen_range(0..joins.len())];
                            d.insert_r(vec![Value::Int(a), Value::str(c)]);
                        }
                    }
                    1 => {
                        let sid = rng.gen_range(100..112);
                        if m.s.get(&Key::single(sid)).is_none() {
                            let c = joins[rng.gen_range(0..joins.len())];
                            d.insert_s(vec![
                                Value::Int(sid),
                                Value::str(c),
                                Value::str(format!("d{step}")),
                            ]);
                        }
                    }
                    2 => {
                        let a = rng.gen_range(0..12);
                        if m.r.get(&Key::single(a)).is_some() {
                            d.delete_r(Key::single(a));
                        }
                    }
                    3 => {
                        let sid = rng.gen_range(100..112);
                        if m.s.get(&Key::single(sid)).is_some() {
                            d.delete_s(Key::single(sid));
                        }
                    }
                    4 => {
                        let a = rng.gen_range(0..12);
                        if m.r.get(&Key::single(a)).is_some() {
                            let c = joins[rng.gen_range(0..joins.len())];
                            d.update_r(Key::single(a), vec![(1, Value::str(c))]);
                        }
                    }
                    _ => {
                        let sid = rng.gen_range(100..112);
                        if m.s.get(&Key::single(sid)).is_some() {
                            match rng.gen_range(0..3) {
                                0 => {
                                    let c = joins[rng.gen_range(0..joins.len())];
                                    d.update_s(Key::single(sid), vec![(1, Value::str(c))]);
                                }
                                1 => d.update_s(
                                    Key::single(sid),
                                    vec![(2, Value::str(format!("d{step}")))],
                                ),
                                _ => {
                                    let nk = rng.gen_range(100..112);
                                    if m.s.get(&Key::single(nk)).is_none() {
                                        d.update_s(Key::single(sid), vec![(0, Value::Int(nk))]);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            verify(&m);
        }
    }

    #[test]
    fn prepare_rejects_bad_columns() {
        let db = Database::new();
        let (rs, ss) = figure1_schemas();
        db.create_table("R", rs).unwrap();
        db.create_table("S", ss).unwrap();
        let spec = FojSpec::new("R", "S", "T", "nope", "c");
        assert!(matches!(
            FojMapping::prepare(&db, &spec),
            Err(DbError::NoSuchColumn(_))
        ));
        let spec = FojSpec::new("R", "ghost", "T", "c", "c");
        assert!(matches!(
            FojMapping::prepare(&db, &spec),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn prepare_handles_name_clash() {
        let db = Database::new();
        let r = Schema::builder()
            .column("id", ColumnType::Int)
            .nullable("info", ColumnType::Str)
            .nullable("j", ColumnType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let s = Schema::builder()
            .column("j", ColumnType::Int)
            .nullable("info", ColumnType::Str) // clashes with R.info
            .primary_key(&["j"])
            .build()
            .unwrap();
        db.create_table("R", r).unwrap();
        db.create_table("S", s).unwrap();
        let m = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "j", "j")).unwrap();
        let t_schema = m.t_table().schema();
        assert!(t_schema.position_of("info").is_some());
        assert!(t_schema.position_of("info_s").is_some());
    }
}
