//! Unit tests for the synchronization module (lock transfer mapping,
//! proxy ownership). Lives in a separate file to keep `sync.rs`
//! focused; included from `lib.rs` under `#[cfg(test)]`.

use crate::foj::{figure1_schemas, FojMapping};
use crate::spec::{FojSpec, SplitSpec};
use crate::split::SplitMapping;
use crate::sync::proxy_owner;
use morph_common::{ColumnType, Key, Lsn, Schema, TxnId, Value};
use morph_engine::{Database, PlannedOp};
use morph_txn::LockOrigin;

#[test]
fn proxy_owner_is_disjoint_from_real_ids() {
    assert_ne!(proxy_owner(TxnId(1)), TxnId(1));
    assert_eq!(proxy_owner(proxy_owner(TxnId(1))), proxy_owner(TxnId(1)));
    // Engine ids grow from 1; the proxy space has the top bit set.
    assert!(proxy_owner(TxnId(12345)).0 >= 1 << 63);
}

fn foj_fixture() -> (Database, FojMapping) {
    let db = Database::new();
    let (r, s) = figure1_schemas();
    db.create_table("R", r).unwrap();
    db.create_table("S", s).unwrap();
    let m = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
    (db, m)
}

#[test]
fn foj_mirror_map_routes_keyed_ops() {
    let (db, m) = foj_fixture();
    // Seed T through the rules: r(1,c1) ⟗ s(c1).
    let r_id = db.catalog().get("R").unwrap().id();
    let s_id = db.catalog().get("S").unwrap().id();
    m.apply(
        Lsn(1),
        &morph_wal::LogOp::Insert {
            table: s_id,
            row: vec![Value::str("c1"), Value::str("d")],
        },
    )
    .unwrap();
    m.apply(
        Lsn(2),
        &morph_wal::LogOp::Insert {
            table: r_id,
            row: vec![Value::Int(1), Value::str("b"), Value::str("c1")],
        },
    )
    .unwrap();

    let map = m.mirror_map();
    // An update on r^1 maps to the joined T row, tagged SourceR.
    let key = Key::single(1);
    let targets = map.targets_for(
        r_id,
        &PlannedOp::Update {
            key: &key,
            cols: &[(1, Value::str("x"))],
        },
    );
    assert_eq!(targets.len(), 1);
    assert_eq!(targets[0].0, m.t_table().id());
    assert_eq!(targets[0].2, LockOrigin::SourceR);

    // An update on s^c1 maps to the same T row, tagged SourceS.
    let skey = Key::single("c1");
    let targets = map.targets_for(s_id, &PlannedOp::Read { key: &skey });
    assert_eq!(targets.len(), 1);
    assert_eq!(targets[0].2, LockOrigin::SourceS);

    // Ops on unrelated tables map to nothing.
    assert!(map
        .targets_for(morph_common::TableId(999), &PlannedOp::Read { key: &key })
        .is_empty());
}

#[test]
fn foj_mirror_map_predicts_insert_keys() {
    let (db, m) = foj_fixture();
    let r_id = db.catalog().get("R").unwrap().id();
    let map = m.mirror_map();
    let values = vec![Value::Int(7), Value::str("b"), Value::str("cx")];
    let targets = map.targets_for(r_id, &PlannedOp::Insert { values: &values });
    // Predicted T key = (r-pk, join) = (7, "cx").
    assert_eq!(targets.len(), 1);
    assert_eq!(targets[0].1, Key::new([Value::Int(7), Value::str("cx")]));
}

#[test]
fn split_mirror_map_routes_both_targets() {
    let db = Database::new();
    let ts = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("c", ColumnType::Str)
        .nullable("d", ColumnType::Str)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", ts).unwrap();
    let mut m = SplitMapping::prepare(
        &db,
        &SplitSpec::new("T", "R", "S", &["a", "c"], "c", &["d"]),
    )
    .unwrap();
    let t_id = db.catalog().get("T").unwrap().id();
    // Seed one row through the rules so the targets know the mapping.
    let row = vec![Value::Int(1), Value::str("c1"), Value::str("d1")];
    db.catalog()
        .get("T")
        .unwrap()
        .insert(row.clone(), Lsn(1))
        .unwrap();
    m.apply(Lsn(1), &morph_wal::LogOp::Insert { table: t_id, row })
        .unwrap();

    let map = m.mirror_map();
    let key = Key::single(1);
    let targets = map.targets_for(t_id, &PlannedOp::Delete { key: &key });
    // R side by identity key, S side by split value.
    assert_eq!(targets.len(), 2);
    assert_eq!(targets[0].1, key);
    assert_eq!(targets[0].2, LockOrigin::SourceR);
    assert_eq!(targets[1].1, Key::single("c1"));
    assert_eq!(targets[1].2, LockOrigin::SourceS);

    // Insert prediction uses the values directly.
    let values = vec![Value::Int(9), Value::str("c9"), Value::str("d9")];
    let targets = map.targets_for(t_id, &PlannedOp::Insert { values: &values });
    assert_eq!(targets.len(), 2);
    assert_eq!(targets[0].1, Key::single(9));
    assert_eq!(targets[1].1, Key::single("c9"));
}
