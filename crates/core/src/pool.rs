//! Persistent work-stealing apply pool (DESIGN.md §10).
//!
//! PR 3's subject-sharded batch apply spawned a scoped thread per lane
//! per segment; the spawn + join cost recurs every batch and is why
//! `apply_shards > 1` benchmarked *slower* than serial. This module
//! replaces that with a pool whose threads are created once (per
//! `TransformJob`, or lazily on a standalone `Propagator`'s first
//! parallel batch) and live until the job's cleanup:
//!
//! * **Handoff** is an enqueue + wake: each worker owns a bounded
//!   deque; the caller scatters one task per lane across the deques
//!   and bumps a generation counter under the pool's sync mutex.
//! * **Stealing** balances skew: workers pop their own deque from the
//!   front and steal from siblings' backs; the *caller participates
//!   too* — it steals while waiting at the fence, which keeps a
//!   1-CPU host and a `lanes > workers` configuration both live and
//!   makes `run_epoch`'s completion guarantee self-sufficient.
//! * **Epoch fences** replace scoped-thread barriers: `run_epoch`
//!   returns only when every task of the epoch has completed, so
//!   serial barriers (control records, pkey moves, barrier columns,
//!   split's two-phase S-scatter) become two consecutive epochs
//!   rather than a full pool teardown.
//!
//! A lane is one *sequential* task — in-lane records must apply in
//! log order — so the unit of stealing is a whole lane, and fairness
//! comes from the lane count exceeding the worker count, not from
//! splitting a lane.
//!
//! Determinism: the pool only exists when the configured
//! `ParallelConfig::apply_shards` exceeds one lane; the `{1,1}`
//! configuration never constructs one, which keeps
//! the sim's serial traces byte-identical. For parallel runs, the
//! `MORPH_POOL_SEED` knob (or [`ApplyPool::with_seed`]) drives a
//! per-epoch splitmix64 sequence that rotates lane placement and the
//! caller's steal origin, so a failing interleaving *bias* can be
//! replayed by seed even though true thread timing cannot.
//!
//! Crash points (`apply.pool_spawn`, `apply.lane_enqueue`,
//! `apply.steal`, `apply.epoch_fence`, `apply.pool_drain`) fire only
//! on the caller thread and only when the pool was built over a
//! [`Database`] (the `TransformJob` path), so the sim can kill a run
//! with workers in flight; a kill during an epoch is *deferred* into
//! the epoch's first-error slot so the fence still completes before
//! the error propagates — `run_epoch` must never unwind while
//! borrowed tasks are still running.

use morph_common::{DbError, DbResult};
use morph_engine::Database;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A lane's work for one epoch. The lifetime lets tasks borrow the
/// batch and the segmentation scratch; [`ApplyPool::run_epoch`]'s
/// fence is what makes that sound.
pub type EpochTask<'a> = Box<dyn FnOnce() -> DbResult<()> + Send + 'a>;

/// The `'static` form tasks take while parked in a deque.
type Task = EpochTask<'static>;

/// Per-worker deque bound. Epochs hand off at most one task per lane,
/// so this only binds under pathological lane counts; overflow runs
/// inline on the caller instead of blocking.
const POOL_QUEUE_CAP: usize = 64;

/// Monotonic pool counters, exposed for benches, tests, and the
/// EXPERIMENTS.md steal-rate readout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Epoch fences completed.
    pub epochs: u64,
    /// Tasks handed off into worker deques.
    pub handoffs: u64,
    /// Tasks taken from a deque by anyone other than its owner
    /// (sibling workers and the fence-waiting caller both count).
    pub steals: u64,
    /// Tasks the caller ran directly (deque overflow, or a pool with
    /// zero workers).
    pub inline_runs: u64,
}

#[derive(Default)]
struct Counters {
    epochs: AtomicU64,
    handoffs: AtomicU64,
    steals: AtomicU64,
    inline_runs: AtomicU64,
    /// Steals already rolled up into the engine's counters (the
    /// engine-facing flush happens in `halt`, which both `shutdown`
    /// and `Drop` reach — the delta keeps it idempotent).
    steals_flushed: AtomicU64,
}

/// First failure of the active epoch. A worker panic is re-raised at
/// the fence, mirroring the old scoped-spawn join semantics.
#[derive(Default)]
struct ErrSlot {
    error: Option<DbError>,
    panic: Option<Box<dyn Any + Send>>,
}

struct EpochState {
    /// Tasks of the active epoch not yet completed; the fence waits
    /// for zero. Also the "no epoch active" indicator between runs.
    remaining: AtomicUsize,
    /// Set on first failure; later tasks of the same epoch are
    /// drained without running (the batch is abandoned anyway).
    failed: AtomicBool,
    slot: Mutex<ErrSlot>,
}

/// Generation/shutdown state under the pool's sync mutex.
struct SyncState {
    /// Bumped on every handoff; workers re-scan when it moves.
    seq: u64,
    shutdown: bool,
}

struct Shared {
    /// One bounded deque per worker thread (the caller has none — it
    /// only steals).
    queues: Vec<Mutex<VecDeque<Task>>>,
    sync: Mutex<SyncState>,
    /// Wakes parked workers on handoff/shutdown.
    work: Condvar,
    /// Wakes the fence-waiting caller when `remaining` hits zero.
    done: Condvar,
    epoch: EpochState,
    counters: Counters,
    /// Present on the `TransformJob` path: carries the crash hook so
    /// the sim can kill with workers in flight.
    db: Option<Arc<Database>>,
    /// Splitmix64 state for the deterministic interleave knob.
    rotor: AtomicU64,
}

impl Shared {
    /// One draw per epoch: the rotor sequence depends only on how
    /// many epochs ran, never on thread timing, so a seed replays the
    /// same placement/steal-origin schedule.
    fn epoch_rand(&self) -> u64 {
        let x = self
            .rotor
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn record_error(&self, e: DbError) {
        {
            let mut s = self.epoch.slot.lock();
            if s.error.is_none() {
                s.error = Some(e);
            }
        }
        self.epoch.failed.store(true, Ordering::Release);
    }

    /// Run (or, after a failure, drain) one task and retire it from
    /// the epoch. The completion notify happens under the sync mutex
    /// so the fence-waiting caller cannot miss it.
    fn run_task(&self, task: Task) {
        if !self.epoch.failed.load(Ordering::Acquire) {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => self.record_error(e),
                Err(payload) => {
                    {
                        let mut s = self.epoch.slot.lock();
                        if s.panic.is_none() {
                            s.panic = Some(payload);
                        }
                    }
                    self.epoch.failed.store(true, Ordering::Release);
                }
            }
        }
        if self.epoch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.sync.lock();
            self.done.notify_all();
        }
    }

    /// Place a task on deque `qi`, or hand it back if full.
    fn try_enqueue(&self, qi: usize, task: Task) -> Option<Task> {
        let mut q = self.queues[qi].lock();
        if q.len() < POOL_QUEUE_CAP {
            q.push_back(task);
            None
        } else {
            Some(task)
        }
    }

    fn pop_own(&self, w: usize) -> Option<Task> {
        self.queues[w].lock().pop_front()
    }

    /// Steal from siblings' backs, scanning from `start`.
    fn steal_from(&self, start: usize, skip_own: Option<usize>) -> Option<Task> {
        let n = self.queues.len();
        for k in 0..n {
            let i = (start + k) % n;
            if Some(i) == skip_own {
                continue;
            }
            if let Some(t) = self.queues[i].lock().pop_back() {
                return Some(t);
            }
        }
        None
    }

    fn worker_loop(&self, w: usize) {
        let mut seen = 0u64;
        loop {
            if let Some(t) = self.pop_own(w) {
                self.run_task(t);
                continue;
            }
            if let Some(t) = self.steal_from((w + 1) % self.queues.len(), Some(w)) {
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                self.run_task(t);
                continue;
            }
            {
                let mut g = self.sync.lock();
                if g.shutdown {
                    return;
                }
                if g.seq == seen {
                    self.work.wait(&mut g);
                }
                seen = g.seq;
            }
        }
    }
}

/// The pool. One per `TransformJob` (or per standalone `Propagator`);
/// `width` lanes means `width - 1` worker threads plus the caller.
pub struct ApplyPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    width: usize,
}

impl ApplyPool {
    /// Pool for `width` lanes with no crash-point plumbing (the
    /// standalone-`Propagator` path: benches, equivalence tests).
    pub fn new(width: usize) -> ApplyPool {
        ApplyPool::build(width, None, env_seed())
    }

    /// Pool wired to `db`'s crash hook (the `TransformJob` path).
    /// Fires `apply.pool_spawn` before any thread exists, so a kill
    /// here proves restart-from-prep works with zero pool state.
    pub fn for_db(width: usize, db: Arc<Database>) -> DbResult<ApplyPool> {
        db.crash_point("apply.pool_spawn")?;
        Ok(ApplyPool::build(width, Some(db), env_seed()))
    }

    /// Deterministic interleave knob: fixes the splitmix64 sequence
    /// that rotates lane placement and the caller's steal origin.
    pub fn with_seed(width: usize, seed: u64) -> ApplyPool {
        ApplyPool::build(width, None, seed)
    }

    fn build(width: usize, db: Option<Arc<Database>>, seed: u64) -> ApplyPool {
        let workers = width.saturating_sub(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sync: Mutex::new(SyncState {
                seq: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            epoch: EpochState {
                remaining: AtomicUsize::new(0),
                failed: AtomicBool::new(false),
                slot: Mutex::new(ErrSlot::default()),
            },
            counters: Counters::default(),
            db,
            rotor: AtomicU64::new(seed),
        });
        let handles = (0..workers)
            .map(|w| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || sh.worker_loop(w))
            })
            .collect();
        ApplyPool {
            shared,
            handles: Mutex::new(handles),
            width: width.max(1),
        }
    }

    /// Lane width the pool was sized for (workers + the caller).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            epochs: c.epochs.load(Ordering::Relaxed),
            handoffs: c.handoffs.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            inline_runs: c.inline_runs.load(Ordering::Relaxed),
        }
    }

    /// True between epochs: no task admitted and none in flight. The
    /// pause-fence stress test asserts this while the orchestrator
    /// holds propagation paused.
    pub fn idle(&self) -> bool {
        self.shared.epoch.remaining.load(Ordering::Acquire) == 0
            && self
                .shared
                .queues
                .iter()
                .all(|queue| queue.lock().is_empty())
    }

    /// Run one epoch: scatter `tasks` across the deques, wake the
    /// workers, help by stealing, and return only when every task has
    /// completed (the fence). The first task error (or a deferred
    /// kill from `apply.steal`) is the epoch's result; a worker panic
    /// is re-raised here.
    pub fn run_epoch<'a>(&self, tasks: Vec<EpochTask<'a>>) -> DbResult<()> {
        let n = tasks.len();
        if n == 0 {
            return Ok(());
        }
        let sh = &self.shared;
        if let Some(db) = &sh.db {
            db.crash_point("apply.lane_enqueue")?;
        }
        debug_assert_eq!(
            sh.epoch.remaining.load(Ordering::Acquire),
            0,
            "run_epoch overlapped a live epoch"
        );
        {
            let mut s = sh.epoch.slot.lock();
            s.error = None;
            s.panic = None;
        }
        sh.epoch.failed.store(false, Ordering::Release);
        sh.epoch.remaining.store(n, Ordering::Release);
        sh.counters.epochs.fetch_add(1, Ordering::Relaxed);

        // SAFETY: tasks borrow data for 'a. They are all completed
        // (run or drained, then dropped) before this function
        // returns: `remaining` only reaches zero once every task's
        // `run_task` retired it, and the loop below does not exit —
        // and crash/kill errors are deferred rather than returned —
        // until that happens. No task outlives the borrow.
        let tasks: Vec<Task> = tasks
            .into_iter()
            .map(|t| unsafe { std::mem::transmute::<EpochTask<'a>, Task>(t) })
            .collect();

        let r = sh.epoch_rand();
        let nq = sh.queues.len();
        let mut inline: Vec<Task> = Vec::new();
        if nq == 0 {
            inline = tasks;
        } else {
            let base = (r as usize) % nq;
            let mut handed = 0u64;
            for (i, t) in tasks.into_iter().enumerate() {
                match sh.try_enqueue((base + i) % nq, t) {
                    None => handed += 1,
                    Some(t) => inline.push(t),
                }
            }
            sh.counters.handoffs.fetch_add(handed, Ordering::Relaxed);
            {
                let mut g = sh.sync.lock();
                g.seq = g.seq.wrapping_add(1);
            }
            sh.work.notify_all();
        }

        // Caller participation: run overflow, then steal until the
        // epoch drains. Essential when workers == 0 and on hosts with
        // fewer cores than lanes.
        for t in inline {
            sh.counters.inline_runs.fetch_add(1, Ordering::Relaxed);
            sh.run_task(t);
        }
        let steal_start = if nq == 0 { 0 } else { (r >> 32) as usize % nq };
        while sh.epoch.remaining.load(Ordering::Acquire) != 0 {
            if let Some(t) = sh.steal_from(steal_start, None) {
                if let Some(db) = &sh.db {
                    // Deferred: the fence below must still complete
                    // before a kill can propagate (see SAFETY above).
                    if let Err(e) = db.crash_point("apply.steal") {
                        sh.record_error(e);
                    }
                }
                sh.counters.steals.fetch_add(1, Ordering::Relaxed);
                sh.run_task(t);
                continue;
            }
            let mut g = sh.sync.lock();
            if sh.epoch.remaining.load(Ordering::Acquire) != 0 {
                sh.done.wait(&mut g);
            }
        }
        if let Some(db) = &sh.db {
            db.crash_point("apply.epoch_fence")?;
        }
        let (error, panicked) = {
            let mut s = sh.epoch.slot.lock();
            (s.error.take(), s.panic.take())
        };
        if let Some(p) = panicked {
            std::panic::resume_unwind(p);
        }
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Orderly teardown with the `apply.pool_drain` crash point; the
    /// `TransformJob` calls this from `finish` so a kill here lands
    /// after the last batch but before the job forgets the pool.
    /// `Drop` joins the workers either way.
    pub fn shutdown(&self) -> DbResult<()> {
        if let Some(db) = &self.shared.db {
            db.crash_point("apply.pool_drain")?;
        }
        self.halt();
        Ok(())
    }

    fn halt(&self) {
        // Roll this pool's steal count up into the owning engine's
        // counters so `ShardedDatabase::counters` sees per-shard steal
        // totals after migrations finish.
        if let Some(db) = &self.shared.db {
            let c = &self.shared.counters;
            let now = c.steals.load(Ordering::Relaxed);
            let prev = c.steals_flushed.swap(now, Ordering::Relaxed);
            if now > prev {
                db.counters()
                    .steals
                    .fetch_add(now - prev, Ordering::Relaxed);
            }
        }
        {
            let mut g = self.shared.sync.lock();
            g.shutdown = true;
            g.seq = g.seq.wrapping_add(1);
        }
        self.shared.work.notify_all();
        let hs: Vec<JoinHandle<()>> = {
            let mut h = self.handles.lock();
            h.drain(..).collect()
        };
        for h in hs {
            // Workers catch task panics, so the loop itself cannot
            // unwind; a join error here would mean a harness bug and
            // the epoch accounting has already completed regardless.
            let _ = h.join();
        }
    }
}

impl Drop for ApplyPool {
    fn drop(&mut self) {
        self.halt();
    }
}

/// `MORPH_POOL_SEED` (decimal u64) or 0. Reading an env var is
/// deterministic for a fixed environment, which is the replay
/// contract the knob exists to serve.
fn env_seed() -> u64 {
    std::env::var("MORPH_POOL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn epoch_runs_every_task_exactly_once() {
        let pool = ApplyPool::new(4);
        let hits = AtomicUsize::new(0);
        for round in 0..50 {
            let tasks: Vec<EpochTask> = (0..8)
                .map(|_| {
                    let hits = &hits;
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }) as EpochTask
                })
                .collect();
            pool.run_epoch(tasks).unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), (round + 1) * 8);
            assert!(pool.idle());
        }
        let s = pool.stats();
        assert_eq!(s.epochs, 50);
        // Every task was either handed to a deque or run inline;
        // steals re-route handed-off tasks, they don't add any.
        assert_eq!(s.handoffs + s.inline_runs, 400);
        assert!(s.steals <= s.handoffs);
    }

    #[test]
    fn tasks_may_borrow_the_callers_stack() {
        let pool = ApplyPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let sums: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        let tasks: Vec<EpochTask> = (0..4)
            .map(|lane| {
                let data = &data;
                let sums = &sums;
                Box::new(move || {
                    let mut acc = 0u64;
                    for (i, v) in data.iter().enumerate() {
                        if i % 4 == lane {
                            acc += v;
                        }
                    }
                    *sums[lane].lock() = acc;
                    Ok(())
                }) as EpochTask
            })
            .collect();
        pool.run_epoch(tasks).unwrap();
        let total: u64 = sums.iter().map(|m| *m.lock()).sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn first_error_wins_and_epoch_still_drains() {
        let pool = ApplyPool::new(4);
        let ran = AtomicUsize::new(0);
        let tasks: Vec<EpochTask> = (0..6)
            .map(|i| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 2 {
                        Err(DbError::Internal("lane 2 failed".into()))
                    } else {
                        Ok(())
                    }
                }) as EpochTask
            })
            .collect();
        let err = pool.run_epoch(tasks).unwrap_err();
        assert!(matches!(err, DbError::Internal(_)), "{err:?}");
        // The fence completed: a fresh epoch starts cleanly.
        assert!(pool.idle());
        pool.run_epoch(vec![Box::new(|| Ok(())) as EpochTask])
            .unwrap();
    }

    #[test]
    fn worker_panic_is_reraised_at_the_fence() {
        let pool = ApplyPool::new(2);
        let tasks: Vec<EpochTask> = vec![Box::new(|| Ok(())), Box::new(|| panic!("lane exploded"))];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.run_epoch(tasks);
        }));
        assert!(caught.is_err());
        assert!(pool.idle());
        // Pool survives: the panic retired its task before unwinding.
        pool.run_epoch(vec![Box::new(|| Ok(())) as EpochTask])
            .unwrap();
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = ApplyPool::new(1);
        let hits = AtomicUsize::new(0);
        let tasks: Vec<EpochTask> = (0..5)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }) as EpochTask
            })
            .collect();
        pool.run_epoch(tasks).unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(pool.stats().inline_runs, 5);
        assert_eq!(pool.stats().handoffs, 0);
    }

    #[test]
    fn seeded_placement_is_reproducible() {
        let run = |seed: u64| {
            let pool = ApplyPool::with_seed(4, seed);
            for _ in 0..10 {
                let tasks: Vec<EpochTask> =
                    (0..6).map(|_| Box::new(|| Ok(())) as EpochTask).collect();
                pool.run_epoch(tasks).unwrap();
            }
            pool.stats().epochs
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn heavy_skew_is_stolen_not_serialized() {
        // One giant lane plus many empty-ish ones: with stealing, the
        // small lanes complete while the big one runs; all we require
        // here is liveness and exact completion.
        let pool = ApplyPool::new(4);
        let done = AtomicUsize::new(0);
        for _ in 0..20 {
            let tasks: Vec<EpochTask> = (0..8)
                .map(|lane| {
                    let done = &done;
                    Box::new(move || {
                        let spins = if lane == 0 { 5000 } else { 10 };
                        let mut x = 1u64;
                        for i in 0..spins {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                        }
                        std::hint::black_box(x);
                        done.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }) as EpochTask
                })
                .collect();
            pool.run_epoch(tasks).unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 160);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_joins() {
        let pool = ApplyPool::new(4);
        pool.run_epoch(vec![Box::new(|| Ok(())) as EpochTask])
            .unwrap();
        pool.shutdown().unwrap();
        pool.shutdown().unwrap();
        drop(pool); // second halt is a no-op
    }
}
