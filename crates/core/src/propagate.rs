//! The log propagator (§3.3).
//!
//! A [`Propagator`] owns a tail cursor into the WAL and a rule set
//! ([`Rules`]), and drains the log through the rules in batches,
//! paying the priority throttle between batches. Each *iteration*
//! drains up to the tail position observed at entry, writes a fuzzy
//! mark (the next iteration conceptually "reads the log after the
//! previous fuzzy mark"), and reports the remaining backlog so the
//! caller's analysis step can decide what happens next.
//!
//! After synchronization the same propagator keeps running in
//! *post-sync* mode: it tracks the set of grandfathered transactions
//! and releases their mirrored locks when it processes their
//! commit / rollback-complete records — the paper's "source table
//! locks held in the transformed tables are released as soon as the
//! propagator has processed the abort log record of the lock owner"
//! (§3.4).

use crate::cc::Readiness;
use crate::foj::FojMapping;
use crate::report::IterationStats;
use crate::split::SplitMapping;
use crate::sync::proxy_owner;
use crate::union::UnionMapping;
use crate::throttle::Throttle;
use morph_common::{DbResult, Key, Lsn, TableId, TxnId};
use morph_engine::Database;
use morph_storage::Table;
use morph_wal::{LogRecord, TailCursor};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on one propagation iteration's wall-clock time (see
/// [`Propagator::iterate`]).
pub const ITERATION_BUDGET: Duration = Duration::from_secs(2);

/// The operator-specific rule set behind the propagator.
pub enum Rules {
    /// Full outer join (rules 1–7, § 4).
    Foj(FojMapping),
    /// Vertical split (rules 8–11, § 5).
    Split(SplitMapping),
    /// Horizontal union/merge (§7 "other relational operators").
    Union(UnionMapping),
}

impl Rules {
    /// Source tables whose log records are relevant.
    pub fn source_ids(&self) -> Vec<TableId> {
        match self {
            Rules::Foj(m) => m.source_ids(),
            Rules::Split(m) => m.source_ids(),
            Rules::Union(m) => m.source_ids(),
        }
    }

    /// Source table handles.
    pub fn source_tables(&self, db: &Database) -> DbResult<Vec<Arc<Table>>> {
        self.source_ids()
            .into_iter()
            .map(|id| db.catalog().get_by_id(id))
            .collect()
    }

    /// Run the initial population step.
    pub fn populate(&mut self, chunk: usize) -> DbResult<(usize, usize)> {
        match self {
            Rules::Foj(m) => m.populate(chunk),
            Rules::Split(m) => m.populate(chunk),
            Rules::Union(m) => m.populate(chunk),
        }
    }

    fn apply(&mut self, lsn: Lsn, op: &morph_wal::LogOp) -> DbResult<()> {
        match self {
            Rules::Foj(m) => m.apply(lsn, op),
            Rules::Split(m) => m.apply(lsn, op),
            Rules::Union(m) => m.apply(lsn, op),
        }
    }

    fn on_control(&mut self, lsn: Lsn, rec: &LogRecord) -> DbResult<()> {
        match self {
            Rules::Foj(_) | Rules::Union(_) => Ok(()),
            Rules::Split(m) => m.on_control(lsn, rec),
        }
    }

    /// Periodic maintenance: consistency-checker rounds for split.
    pub fn maintenance(&mut self, db: &Database) -> DbResult<()> {
        match self {
            Rules::Foj(_) | Rules::Union(_) => Ok(()),
            Rules::Split(m) => m.run_cc_round(db.log()),
        }
    }

    /// Whether synchronization may start (§5.3 gating).
    pub fn readiness(&self) -> Readiness {
        match self {
            Rules::Foj(_) | Rules::Union(_) => Readiness::Ready,
            Rules::Split(m) => m.readiness(),
        }
    }

    /// Target keys affected by a source-record lock (lock transfer).
    pub fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)> {
        match self {
            Rules::Foj(m) => m.target_keys_for(table, key),
            Rules::Split(m) => m.target_keys_for(table, key),
            Rules::Union(m) => m.target_keys_for(table, key),
        }
    }

    /// Completed consistency-checker rounds (reporting).
    pub fn cc_rounds(&self) -> usize {
        match self {
            Rules::Foj(_) | Rules::Union(_) => 0,
            Rules::Split(m) => m.cc.rounds,
        }
    }
}

/// Post-synchronization bookkeeping: grandfathered transactions whose
/// mirrored locks the propagator still guards.
#[derive(Default, Debug)]
pub struct PostSyncState {
    /// Old transactions still running / rolling back.
    pub old_txns: HashSet<TxnId>,
}

/// Drains the log through a rule set.
pub struct Propagator {
    cursor: TailCursor,
    throttle: Throttle,
    /// Set after synchronization: end-records of these transactions
    /// release their mirrors.
    post: Option<PostSyncState>,
}

impl Propagator {
    /// A propagator starting at `start_lsn` (from the fuzzy mark) with
    /// the given priority.
    pub fn new(db: &Database, start_lsn: Lsn, priority: f64) -> Propagator {
        Propagator {
            cursor: db.log().tail(start_lsn),
            throttle: Throttle::new(priority),
            post: None,
        }
    }

    /// Remaining log records behind the cursor.
    pub fn backlog(&self, db: &Database) -> usize {
        self.cursor.backlog(db.log())
    }

    /// The LSN the propagator will read next — the position log
    /// truncation must not cross.
    pub fn cursor_lsn(&self) -> Lsn {
        self.cursor.next_lsn()
    }

    /// Current priority.
    pub fn priority(&self) -> f64 {
        self.throttle.priority()
    }

    /// Raise priority (non-convergence escalation).
    pub fn escalate(&mut self, factor: f64) {
        self.throttle.escalate(factor);
    }

    /// Enter post-synchronization mode guarding `old_txns`.
    pub fn enter_post_sync(&mut self, old_txns: HashSet<TxnId>) {
        self.post = Some(PostSyncState { old_txns });
    }

    /// Old transactions still outstanding (post-sync mode).
    pub fn outstanding(&self) -> usize {
        self.post.as_ref().map_or(0, |p| p.old_txns.len())
    }

    fn process(
        &mut self,
        db: &Database,
        rules: &mut Rules,
        sources: &[TableId],
        lsn: Lsn,
        rec: &LogRecord,
    ) -> DbResult<bool> {
        if let Some(op) = rec.op() {
            if sources.contains(&op.table()) {
                rules.apply(lsn, op)?;
                return Ok(true);
            }
            return Ok(false);
        }
        match rec {
            LogRecord::CcBegin { .. } | LogRecord::CcOk { .. } => {
                rules.on_control(lsn, rec)?;
                Ok(true)
            }
            LogRecord::Commit { txn } | LogRecord::AbortEnd { txn } => {
                if let Some(post) = &mut self.post {
                    if post.old_txns.remove(txn) {
                        // §3.4: release the transaction's mirrored locks
                        // now that its final state is reflected in the
                        // transformed tables…
                        db.locks().release_all(proxy_owner(*txn));
                        // …and retire it from the frozen sources.
                        for id in sources {
                            if let Ok(t) = db.catalog().get_by_id(*id) {
                                t.retire_allowed(*txn);
                            }
                        }
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    /// One propagation iteration: drain up to the tail observed at
    /// entry, throttled, running maintenance every `cc_interval`
    /// batches. Returns the iteration statistics.
    ///
    /// The iteration is additionally bounded by [`ITERATION_BUDGET`] of
    /// wall-clock time: at very low priorities the throttle stretches a
    /// single drain across minutes or hours, and the caller's analysis
    /// step (deadline checks, non-convergence detection, external
    /// aborts) must still get control at a reasonable cadence.
    pub fn iterate(
        &mut self,
        db: &Database,
        rules: &mut Rules,
        batch_size: usize,
        cc_interval: usize,
        abort: &AtomicBool,
    ) -> DbResult<IterationStats> {
        let sources = rules.source_ids();
        let target = db.log().last_lsn();
        let t0 = Instant::now();
        let mut records = 0usize;
        let mut relevant = 0usize;
        let mut batches = 0usize;
        while self.cursor.next_lsn() <= target {
            if abort.load(Ordering::Relaxed) || t0.elapsed() > ITERATION_BUDGET {
                break;
            }
            let batch = self.cursor.next_batch(db.log(), batch_size);
            if batch.is_empty() {
                break;
            }
            let b0 = Instant::now();
            for (lsn, rec) in &batch {
                records += 1;
                if self.process(db, rules, &sources, *lsn, rec)? {
                    relevant += 1;
                }
            }
            batches += 1;
            if cc_interval > 0 && batches % cc_interval == 0 {
                rules.maintenance(db)?;
            }
            self.throttle.pay(b0.elapsed());
        }
        // End of iteration: write the next fuzzy mark (§3.3 — each
        // cycle is bracketed by marks) and run maintenance once. Idle
        // iterations (post-sync polling) skip the mark so they do not
        // flood the log.
        if records > 0 {
            db.write_fuzzy_mark();
        }
        rules.maintenance(db)?;
        Ok(IterationStats {
            records,
            relevant,
            duration: t0.elapsed(),
            backlog_after: self.backlog(db),
        })
    }

    /// Drain every record up to the tail observed at entry, without
    /// throttling — the final latched propagation of the
    /// synchronization step. A single pass suffices: the caller holds
    /// exclusive latches on the source tables, so no further
    /// source-table operation can reach the log (records appended
    /// *after* the observed tail belong to other tables, or to
    /// in-flight operations that the post-sync phase handles).
    /// Returns the number of records processed.
    pub fn drain_all(&mut self, db: &Database, rules: &mut Rules) -> DbResult<usize> {
        let sources = rules.source_ids();
        let mut n = 0usize;
        let target = db.log().last_lsn();
        while self.cursor.next_lsn() <= target {
            // Never read past the target: the cursor must not skip
            // records it has not processed.
            let remaining = (target.0 - self.cursor.next_lsn().0 + 1) as usize;
            let batch = self.cursor.next_batch(db.log(), remaining.min(1024));
            if batch.is_empty() {
                break;
            }
            for (lsn, rec) in &batch {
                n += 1;
                self.process(db, rules, &sources, *lsn, rec)?;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foj::{figure1_schemas, FojMapping};
    use crate::spec::FojSpec;
    use morph_common::Value;

    fn setup() -> (Arc<Database>, Rules) {
        let db = Arc::new(Database::new());
        let (rs, ss) = figure1_schemas();
        db.create_table("R", rs).unwrap();
        db.create_table("S", ss).unwrap();
        let m = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
        (db, Rules::Foj(m))
    }

    fn r_row(a: i64, c: &str) -> Vec<Value> {
        vec![Value::Int(a), Value::str("b"), Value::str(c)]
    }

    #[test]
    fn end_to_end_population_plus_propagation() {
        let (db, mut rules) = setup();
        // Pre-existing data.
        let txn = db.begin();
        for i in 0..20 {
            db.insert(txn, "R", r_row(i, &format!("j{}", i % 4))).unwrap();
        }
        for j in 0..4 {
            db.insert(
                txn,
                "S",
                vec![Value::str(format!("j{j}")), Value::str("d")],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();

        let (_, start, _) = db.write_fuzzy_mark();
        let mut prop = Propagator::new(&db, start, 1.0);
        rules.populate(8).unwrap();

        // Concurrent-ish updates after the fuzzy read.
        let txn = db.begin();
        db.insert(txn, "R", r_row(100, "j0")).unwrap();
        db.delete(txn, "R", &Key::single(3)).unwrap();
        db.update(txn, "R", &Key::single(4), &[(2, Value::str("j1"))])
            .unwrap();
        db.commit(txn).unwrap();

        let abort = AtomicBool::new(false);
        let stats = prop.iterate(&db, &mut rules, 16, 0, &abort).unwrap();
        assert!(stats.records > 0);
        assert!(stats.relevant > 0);
        assert_eq!(prop.backlog(&db), 1, "only the trailing fuzzy mark");

        let Rules::Foj(m) = &rules else { unreachable!() };
        crate::foj::verify_against_reference(m).expect("converged to reference");
    }

    #[test]
    fn drain_all_catches_up_completely() {
        let (db, mut rules) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        rules.populate(8).unwrap();
        let txn = db.begin();
        for i in 0..50 {
            db.insert(txn, "R", r_row(i, "j0")).unwrap();
        }
        db.commit(txn).unwrap();
        let mut prop = Propagator::new(&db, start, 1.0);
        let n = prop.drain_all(&db, &mut rules).unwrap();
        assert!(n >= 52); // begin + 50 ops + commit (+ mark)
        assert_eq!(prop.backlog(&db), 0);
        let Rules::Foj(m) = &rules else { unreachable!() };
        crate::foj::verify_against_reference(m).unwrap();
    }

    #[test]
    fn post_sync_releases_mirrors_on_end_records() {
        use morph_txn::{LockMode, LockOrigin};
        let (db, mut rules) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        rules.populate(4).unwrap();
        let mut prop = Propagator::new(&db, start, 1.0);

        // A transaction that will be "old" at sync.
        let old = db.begin();
        db.insert(old, "R", r_row(1, "j0")).unwrap();

        // Simulate the sync step: mirror a lock under the proxy owner.
        let t_id = {
            let Rules::Foj(m) = &rules else { unreachable!() };
            m.t_table().id()
        };
        db.locks().grant_transferred(
            proxy_owner(old),
            t_id,
            &Key::new([Value::Int(1), Value::str("j0")]),
            LockMode::Exclusive,
            LockOrigin::SourceR,
        );
        prop.enter_post_sync([old].into_iter().collect());
        assert_eq!(prop.outstanding(), 1);

        // Old txn commits; propagator processes the record and releases.
        db.commit(old).unwrap();
        prop.drain_all(&db, &mut rules).unwrap();
        assert_eq!(prop.outstanding(), 0);
        assert_eq!(db.locks().held_count(proxy_owner(old)), 0);
    }

    #[test]
    fn throttled_iteration_still_completes() {
        let (db, mut rules) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        rules.populate(4).unwrap();
        let txn = db.begin();
        for i in 0..30 {
            db.insert(txn, "R", r_row(i, "j1")).unwrap();
        }
        db.commit(txn).unwrap();
        let mut prop = Propagator::new(&db, start, 0.2);
        let abort = AtomicBool::new(false);
        let stats = prop.iterate(&db, &mut rules, 8, 0, &abort).unwrap();
        assert!(stats.records >= 32);
        let Rules::Foj(m) = &rules else { unreachable!() };
        crate::foj::verify_against_reference(m).unwrap();
    }

    #[test]
    fn abort_flag_stops_iteration_early() {
        let (db, mut rules) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        rules.populate(4).unwrap();
        let txn = db.begin();
        for i in 0..100 {
            db.insert(txn, "R", r_row(i, "j1")).unwrap();
        }
        db.commit(txn).unwrap();
        let mut prop = Propagator::new(&db, start, 1.0);
        let abort = AtomicBool::new(true); // pre-aborted
        let stats = prop.iterate(&db, &mut rules, 8, 0, &abort).unwrap();
        assert_eq!(stats.records, 0);
    }
}
