//! The log propagator (§3.3), batched and operator-generic.
//!
//! A [`Propagator`] owns a tail cursor into the WAL and drains the log
//! through a [`TransformOperator`]'s propagation rules, paying the
//! priority throttle between batches. Each *iteration* drains up to
//! the tail position observed at entry, writes a fuzzy mark (the next
//! iteration conceptually "reads the log after the previous fuzzy
//! mark"), and reports the remaining backlog so the caller's analysis
//! step can decide what happens next.
//!
//! ## The batched pipeline
//!
//! Relevant data records are not applied one at a time. The propagator
//! accumulates them into a *run*, [coalesces](coalesce) records the
//! operator's [`CoalescePolicy`] allows to be dropped, and hands the
//! survivors to [`TransformOperator::apply_batch`] — which opens one
//! write session per target table for the whole run, paying one latch
//! round trip per run instead of per record. A run is flushed:
//!
//! * before a control record (`CcBegin`/`CcOk`) reaches
//!   [`TransformOperator::on_control`] — the §5.3 checker must observe
//!   every prior touch before certifying;
//! * before a grandfathered transaction's end record releases its
//!   mirrored locks (post-sync mode) — the transaction's final state
//!   must be in the transformed tables first;
//! * at the end of every cursor batch.
//!
//! After synchronization the same propagator keeps running in
//! *post-sync* mode: it tracks the set of grandfathered transactions
//! and releases their mirrored locks when it processes their
//! commit / rollback-complete records — the paper's "source table
//! locks held in the transformed tables are released as soon as the
//! propagator has processed the abort log record of the lock owner"
//! (§3.4).

use crate::operator::{CoalescePolicy, LaneScratch, TransformOperator};
use crate::pool::ApplyPool;
use crate::report::IterationStats;
use crate::spec::ParallelConfig;
use crate::sync::proxy_owner;
use crate::throttle::Throttle;
use morph_common::{DbError, DbResult, Key, Lsn, Schema, TableId, TxnId};
use morph_engine::Database;
use morph_wal::{LogOp, LogRecord, TailCursor};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on one propagation iteration's wall-clock time (see
/// [`Propagator::iterate`]).
pub const ITERATION_BUDGET: Duration = Duration::from_secs(2);

/// Per-drain context: everything about the operator the pipeline needs
/// record-by-record, resolved once per drain instead of per record.
struct DrainCtx {
    sources: Vec<TableId>,
    /// Source schemas, for computing a record's subject key. Source
    /// schemas cannot change while propagation runs (rename-in-place
    /// projection happens strictly after the final drain).
    schemas: HashMap<TableId, Schema>,
    /// Per-source barrier columns (see
    /// [`TransformOperator::coalesce_barrier_cols`]).
    barriers: HashMap<TableId, Vec<usize>>,
    policy: CoalescePolicy,
}

/// One entry of the accumulated run. Records arriving from the cursor
/// share the WAL's `Arc<LogRecord>` instead of deep-cloning the
/// operation (a run of N records used to cost N row clones before the
/// operator ever saw it); tests and synthetic callers may still hand
/// the coalescer owned operations.
enum RunOp {
    /// A data record straight off the log (guaranteed `rec.op().is_some()`).
    Shared(Arc<LogRecord>),
    /// An owned operation (tests, synthetic runs).
    #[cfg_attr(not(test), allow(dead_code))]
    Owned(LogOp),
}

impl RunOp {
    fn op(&self) -> DbResult<&LogOp> {
        match self {
            RunOp::Shared(rec) => rec.op().ok_or_else(|| {
                DbError::Internal(
                    "propagation run holds a control record; only data records may be deferred"
                        .into(),
                )
            }),
            RunOp::Owned(op) => Ok(op),
        }
    }
}

impl DrainCtx {
    fn new(db: &Database, op: &dyn TransformOperator) -> DrainCtx {
        let sources = op.source_ids();
        let mut schemas = HashMap::new();
        let mut barriers = HashMap::new();
        for id in &sources {
            if let Ok(t) = db.catalog().get_by_id(*id) {
                schemas.insert(*id, t.schema());
            }
            barriers.insert(*id, op.coalesce_barrier_cols(*id));
        }
        DrainCtx {
            sources,
            schemas,
            barriers,
            policy: op.coalesce_policy(),
        }
    }
}

/// Drop records of `run` whose effect on the transformed tables is
/// provably erased by a later record in the same run, to the extent
/// `ctx.policy` allows. Never reorders; only drops.
///
/// The *subject* of a record is its row's source-table primary key.
/// Within one subject, a forward pass tracks which earlier records are
/// still pending (= droppable):
///
/// * an **insert** is pending until a delete of the same subject drops
///   it;
/// * a **delete** drops every pending record of its subject and is
///   itself never dropped (applying a delete for an absent row is a
///   no-op under every rule set);
/// * an **update** under [`CoalescePolicy::Full`] drops pending earlier
///   updates whose column set is a subset of its own, then becomes
///   pending itself; under [`CoalescePolicy::DeleteOnly`] it merely
///   becomes pending;
/// * an update touching a **primary-key column** is a barrier: it voids
///   all pending records for both the old and the moved-to subject and
///   is never dropped (later records reference the new key; pairing
///   them across the move is unsound);
/// * an update touching an operator-declared **barrier column** voids
///   its subject's pending records likewise (§4.2 guard columns, shared
///   S-record feeds).
fn coalesce(run: Vec<(Lsn, RunOp)>, ctx: &DrainCtx) -> DbResult<Vec<(Lsn, RunOp)>> {
    if ctx.policy == CoalescePolicy::None || run.len() < 2 {
        return Ok(run);
    }
    let mut keep = vec![true; run.len()];
    // Pending (still droppable) record indices, per table then per
    // subject key. The two-level map lets delete/update lookups borrow
    // the record's key instead of cloning it into a composite probe
    // key; a subject's key is cloned once, on its first pending entry.
    let mut pending: HashMap<TableId, HashMap<Key, Vec<usize>>> = HashMap::new();
    for (i, (_, rop)) in run.iter().enumerate() {
        let op = rop.op()?;
        let table = op.table();
        let Some(schema) = ctx.schemas.get(&table) else {
            continue;
        };
        match op {
            LogOp::Insert { row, .. } => {
                pending
                    .entry(table)
                    .or_default()
                    .entry(schema.key_of(row))
                    .or_default()
                    .push(i);
            }
            LogOp::Delete { key, .. } => {
                if let Some(idxs) = pending.get_mut(&table).and_then(|m| m.remove(key)) {
                    for j in idxs {
                        keep[j] = false;
                    }
                }
            }
            LogOp::Update { key, new, .. } => {
                let pkey = schema.pkey();
                if new.iter().any(|(c, _)| pkey.contains(c)) {
                    // Key move: void both subjects, drop nothing.
                    if let Some(m) = pending.get_mut(&table) {
                        m.remove(key);
                        let mut moved = key.clone();
                        for (c, v) in new {
                            if let Some(p) = pkey.iter().position(|pc| pc == c) {
                                moved.0[p] = v.clone();
                            }
                        }
                        m.remove(&moved);
                    }
                    continue;
                }
                let barrier = ctx
                    .barriers
                    .get(&table)
                    .is_some_and(|bs| new.iter().any(|(c, _)| bs.contains(c)));
                if barrier {
                    if let Some(m) = pending.get_mut(&table) {
                        m.remove(key);
                    }
                    continue;
                }
                let m = pending.entry(table).or_default();
                match m.get_mut(key) {
                    Some(slot) => {
                        if ctx.policy == CoalescePolicy::Full {
                            slot.retain(|&j| match run[j].1.op() {
                                Ok(LogOp::Update { new: prev, .. })
                                    if prev
                                        .iter()
                                        .all(|(c, _)| new.iter().any(|(c2, _)| c2 == c)) =>
                                {
                                    keep[j] = false;
                                    false
                                }
                                // Inserts stay pending (droppable by delete
                                // only), as do updates with columns this one
                                // lacks.
                                _ => true,
                            });
                        }
                        slot.push(i);
                    }
                    None => {
                        m.insert(key.clone(), vec![i]);
                    }
                }
            }
        }
    }
    let mut i = 0;
    let mut run = run;
    run.retain(|_| {
        let k = keep.get(i).copied().unwrap_or(true);
        i += 1;
        k
    });
    Ok(run)
}

/// Post-synchronization bookkeeping: grandfathered transactions whose
/// mirrored locks the propagator still guards.
#[derive(Default, Debug)]
pub struct PostSyncState {
    /// Old transactions still running / rolling back.
    pub old_txns: HashSet<TxnId>,
}

/// Drains the log through a transformation operator's rules.
pub struct Propagator {
    cursor: TailCursor,
    throttle: Throttle,
    /// Set after synchronization: end-records of these transactions
    /// release their mirrors.
    post: Option<PostSyncState>,
    /// Records dropped by the coalescer over this propagator's life.
    coalesced: usize,
    /// Degree of apply parallelism (`apply_shards` lanes per run).
    parallel: ParallelConfig,
    /// Persistent work-stealing apply pool. Created once (lazily on the
    /// first parallel flush, or up front via [`Propagator::with_pool`])
    /// and reused across every batch — spawn cost is paid once per
    /// transformation, not once per segment.
    pool: Option<Arc<ApplyPool>>,
    /// Reusable per-lane index scratch handed to the operators, so the
    /// streaming segmenter never allocates lane buffers per batch.
    scratch: LaneScratch,
    /// Drain context cached across iterations, keyed by the catalog's
    /// structural epoch: name→table resolution and barrier-column
    /// derivation are loop-invariant until a create/drop/rename.
    ctx: Option<(u64, Arc<DrainCtx>)>,
}

impl Propagator {
    /// A propagator starting at `start_lsn` (from the fuzzy mark) with
    /// the given priority.
    pub fn new(db: &Database, start_lsn: Lsn, priority: f64) -> Propagator {
        Propagator {
            cursor: db.log().tail(start_lsn),
            throttle: Throttle::new(priority),
            post: None,
            coalesced: 0,
            parallel: ParallelConfig::serial(),
            pool: None,
            scratch: LaneScratch::default(),
            ctx: None,
        }
    }

    /// Set the apply parallelism. The serial default is byte-identical
    /// to the pre-parallel pipeline.
    #[must_use]
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Propagator {
        self.parallel = parallel;
        self.scratch.set_min_segment(parallel.min_apply_segment);
        self
    }

    /// Install an already-spawned apply pool (the [`TransformJob`] path,
    /// where pool spawn is a crash-instrumented step of the job).
    /// Without this, a parallel propagator spawns its pool lazily on the
    /// first flush.
    ///
    /// [`TransformJob`]: crate::transform::TransformJob
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<ApplyPool>) -> Propagator {
        self.pool = Some(pool);
        self
    }

    /// Steal/handoff counters of the apply pool, if one was spawned.
    pub fn pool_stats(&self) -> Option<crate::pool::PoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// Park the pool's workers and fire the `apply.pool_drain` crash
    /// point. Idempotent; a propagator that never went parallel has no
    /// pool and returns `Ok` immediately. Called by the job teardown
    /// before the propagator is dropped so that worker threads never
    /// outlive the transformation that spawned them.
    pub fn shutdown_pool(&mut self) -> DbResult<()> {
        match self.pool.take() {
            Some(pool) => pool.shutdown(),
            None => Ok(()),
        }
    }

    /// The cached drain context, rebuilt when the catalog's structural
    /// epoch moved (a table was created, dropped or renamed since).
    fn drain_ctx(&mut self, db: &Database, op: &dyn TransformOperator) -> Arc<DrainCtx> {
        let epoch = db.catalog().epoch();
        match &self.ctx {
            Some((e, ctx)) if *e == epoch => Arc::clone(ctx),
            _ => {
                let ctx = Arc::new(DrainCtx::new(db, op));
                self.ctx = Some((epoch, Arc::clone(&ctx)));
                ctx
            }
        }
    }

    /// Remaining log records behind the cursor.
    pub fn backlog(&self, db: &Database) -> usize {
        self.cursor.backlog(db.log())
    }

    /// The LSN the propagator will read next — the position log
    /// truncation must not cross.
    pub fn cursor_lsn(&self) -> Lsn {
        self.cursor.next_lsn()
    }

    /// Current priority.
    pub fn priority(&self) -> f64 {
        self.throttle.priority()
    }

    /// Raise priority (non-convergence escalation).
    pub fn escalate(&mut self, factor: f64) {
        self.throttle.escalate(factor);
    }

    /// Records dropped by the coalescer so far.
    pub fn coalesced(&self) -> usize {
        self.coalesced
    }

    /// Enter post-synchronization mode guarding `old_txns`.
    pub fn enter_post_sync(&mut self, old_txns: HashSet<TxnId>) {
        self.post = Some(PostSyncState { old_txns });
    }

    /// Old transactions still outstanding (post-sync mode).
    pub fn outstanding(&self) -> usize {
        self.post.as_ref().map_or(0, |p| p.old_txns.len())
    }

    /// Coalesce and apply the accumulated run.
    fn flush(
        &mut self,
        op: &mut dyn TransformOperator,
        ctx: &DrainCtx,
        run: &mut Vec<(Lsn, RunOp)>,
    ) -> DbResult<()> {
        if run.is_empty() {
            return Ok(());
        }
        let before = run.len();
        let batch = coalesce(std::mem::take(run), ctx)?;
        self.coalesced += before - batch.len();
        let mut refs: Vec<(Lsn, &LogOp)> = Vec::with_capacity(batch.len());
        for (lsn, rop) in &batch {
            refs.push((*lsn, rop.op()?));
        }
        if self.parallel.effective_apply_shards() > 1 {
            let pool = match &self.pool {
                Some(pool) => Arc::clone(pool),
                None => {
                    let pool = Arc::new(ApplyPool::new(self.parallel.effective_apply_shards()));
                    self.pool = Some(Arc::clone(&pool));
                    pool
                }
            };
            op.apply_batch_sharded(&refs, &pool, &mut self.scratch)
        } else {
            op.apply_batch(&refs)
        }
    }

    /// Handle one log record: defer relevant data ops into `run`, flush
    /// and react to control / transaction-end records. Returns whether
    /// the record was relevant to this transformation.
    fn process(
        &mut self,
        db: &Database,
        op: &mut dyn TransformOperator,
        ctx: &DrainCtx,
        run: &mut Vec<(Lsn, RunOp)>,
        lsn: Lsn,
        rec: &Arc<LogRecord>,
    ) -> DbResult<bool> {
        if let Some(logop) = rec.op() {
            if ctx.schemas.contains_key(&logop.table()) {
                run.push((lsn, RunOp::Shared(Arc::clone(rec))));
                return Ok(true);
            }
            return Ok(false);
        }
        match &**rec {
            LogRecord::CcBegin { .. } | LogRecord::CcOk { .. } => {
                // The checker must observe every prior touch before a
                // certification is judged (§5.3).
                self.flush(op, ctx, run)?;
                op.on_control(lsn, rec)?;
                Ok(true)
            }
            LogRecord::Commit { txn } | LogRecord::AbortEnd { txn } => {
                let guarded = self.post.as_ref().is_some_and(|p| p.old_txns.contains(txn));
                if guarded {
                    // §3.4: release the transaction's mirrored locks
                    // now that its final state is reflected in the
                    // transformed tables (flush makes that true)…
                    self.flush(op, ctx, run)?;
                    if let Some(post) = &mut self.post {
                        post.old_txns.remove(txn);
                    }
                    db.locks().release_all(proxy_owner(*txn));
                    // …and retire it from the frozen sources.
                    for id in &ctx.sources {
                        if let Ok(t) = db.catalog().get_by_id(*id) {
                            t.retire_allowed(*txn);
                        }
                    }
                    return Ok(true);
                }
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    /// One propagation iteration: drain up to the tail observed at
    /// entry, throttled, running maintenance every `cc_interval`
    /// batches. Returns the iteration statistics.
    ///
    /// The iteration is additionally bounded by [`ITERATION_BUDGET`] of
    /// wall-clock time: at very low priorities the throttle stretches a
    /// single drain across minutes or hours, and the caller's analysis
    /// step (deadline checks, non-convergence detection, external
    /// aborts) must still get control at a reasonable cadence.
    pub fn iterate(
        &mut self,
        db: &Database,
        op: &mut dyn TransformOperator,
        batch_size: usize,
        cc_interval: usize,
        abort: &AtomicBool,
    ) -> DbResult<IterationStats> {
        let ctx = self.drain_ctx(db, op);
        let target = db.log().last_lsn();
        // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
        let t0 = Instant::now();
        let mut run: Vec<(Lsn, RunOp)> = Vec::new();
        let mut records = 0usize;
        let mut relevant = 0usize;
        let mut batches = 0usize;
        while self.cursor.next_lsn() <= target {
            if abort.load(Ordering::Relaxed) || t0.elapsed() > ITERATION_BUDGET {
                break;
            }
            // Crash-simulation point *inside* a propagation iteration,
            // between cursor batches (no write session open here).
            db.crash_point("propagate.batch")?;
            let batch = self.cursor.next_batch(db.log(), batch_size);
            if batch.is_empty() {
                break;
            }
            // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
            let b0 = Instant::now();
            for (lsn, rec) in &batch {
                records += 1;
                if self.process(db, op, &ctx, &mut run, *lsn, rec)? {
                    relevant += 1;
                }
            }
            self.flush(op, &ctx, &mut run)?;
            batches += 1;
            if cc_interval > 0 && batches.is_multiple_of(cc_interval) {
                op.maintenance(db)?;
            }
            self.throttle.pay(b0.elapsed());
        }
        // End of iteration: write the next fuzzy mark (§3.3 — each
        // cycle is bracketed by marks) and run maintenance once. Idle
        // iterations (post-sync polling) skip the mark so they do not
        // flood the log.
        if records > 0 {
            db.write_fuzzy_mark();
        }
        op.maintenance(db)?;
        Ok(IterationStats {
            records,
            relevant,
            duration: t0.elapsed(),
            backlog_after: self.backlog(db),
        })
    }

    /// Drain every record up to the tail observed at entry, without
    /// throttling — the final latched propagation of the
    /// synchronization step. A single pass suffices: the caller holds
    /// exclusive latches on the source tables, so no further
    /// source-table operation can reach the log (records appended
    /// *after* the observed tail belong to other tables, or to
    /// in-flight operations that the post-sync phase handles).
    /// Returns the number of records processed.
    pub fn drain_all(&mut self, db: &Database, op: &mut dyn TransformOperator) -> DbResult<usize> {
        self.drain_with_batch(db, op, 1024)
    }

    /// [`Propagator::drain_all`] with an explicit cursor batch size —
    /// the run (and thus coalescing and latch-amortization) window.
    /// Exposed for the batch-size microbenchmarks; `drain_all`'s 1024
    /// is the right default everywhere else.
    pub fn drain_with_batch(
        &mut self,
        db: &Database,
        op: &mut dyn TransformOperator,
        batch_size: usize,
    ) -> DbResult<usize> {
        let ctx = self.drain_ctx(db, op);
        let mut run: Vec<(Lsn, RunOp)> = Vec::new();
        let mut n = 0usize;
        let target = db.log().last_lsn();
        while self.cursor.next_lsn() <= target {
            // Crash-simulation point inside the final latched drain.
            db.crash_point("propagate.drain.batch")?;
            // Never read past the target: the cursor must not skip
            // records it has not processed.
            let remaining = (target.0 - self.cursor.next_lsn().0 + 1) as usize;
            let batch = self
                .cursor
                .next_batch(db.log(), remaining.min(batch_size.max(1)));
            if batch.is_empty() {
                break;
            }
            for (lsn, rec) in &batch {
                n += 1;
                self.process(db, op, &ctx, &mut run, *lsn, rec)?;
            }
            self.flush(op, &ctx, &mut run)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foj::{figure1_schemas, FojMapping};
    use crate::spec::FojSpec;
    use morph_common::Value;
    use std::sync::Arc;

    fn setup() -> (Arc<Database>, FojMapping) {
        let db = Arc::new(Database::new());
        let (rs, ss) = figure1_schemas();
        db.create_table("R", rs).unwrap();
        db.create_table("S", ss).unwrap();
        let m = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
        (db, m)
    }

    fn r_row(a: i64, c: &str) -> Vec<Value> {
        vec![Value::Int(a), Value::str("b"), Value::str(c)]
    }

    #[test]
    fn end_to_end_population_plus_propagation() {
        let (db, mut m) = setup();
        // Pre-existing data.
        let txn = db.begin();
        for i in 0..20 {
            db.insert(txn, "R", r_row(i, &format!("j{}", i % 4)))
                .unwrap();
        }
        for j in 0..4 {
            db.insert(txn, "S", vec![Value::str(format!("j{j}")), Value::str("d")])
                .unwrap();
        }
        db.commit(txn).unwrap();

        let (_, start, _) = db.write_fuzzy_mark();
        let mut prop = Propagator::new(&db, start, 1.0);
        m.populate(8).unwrap();

        // Concurrent-ish updates after the fuzzy read.
        let txn = db.begin();
        db.insert(txn, "R", r_row(100, "j0")).unwrap();
        db.delete(txn, "R", &Key::single(3)).unwrap();
        db.update(txn, "R", &Key::single(4), &[(2, Value::str("j1"))])
            .unwrap();
        db.commit(txn).unwrap();

        let abort = AtomicBool::new(false);
        let stats = prop.iterate(&db, &mut m, 16, 0, &abort).unwrap();
        assert!(stats.records > 0);
        assert!(stats.relevant > 0);
        assert_eq!(prop.backlog(&db), 1, "only the trailing fuzzy mark");

        crate::foj::verify_against_reference(&m).expect("converged to reference");
    }

    #[test]
    fn drain_all_catches_up_completely() {
        let (db, mut m) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        m.populate(8).unwrap();
        let txn = db.begin();
        for i in 0..50 {
            db.insert(txn, "R", r_row(i, "j0")).unwrap();
        }
        db.commit(txn).unwrap();
        let mut prop = Propagator::new(&db, start, 1.0);
        let n = prop.drain_all(&db, &mut m).unwrap();
        assert!(n >= 52); // begin + 50 ops + commit (+ mark)
        assert_eq!(prop.backlog(&db), 0);
        crate::foj::verify_against_reference(&m).unwrap();
    }

    #[test]
    fn post_sync_releases_mirrors_on_end_records() {
        use morph_txn::{LockMode, LockOrigin};
        let (db, mut m) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        m.populate(4).unwrap();
        let mut prop = Propagator::new(&db, start, 1.0);

        // A transaction that will be "old" at sync.
        let old = db.begin();
        db.insert(old, "R", r_row(1, "j0")).unwrap();

        // Simulate the sync step: mirror a lock under the proxy owner.
        let t_id = m.t_table().id();
        db.locks().grant_transferred(
            proxy_owner(old),
            t_id,
            &Key::new([Value::Int(1), Value::str("j0")]),
            LockMode::Exclusive,
            LockOrigin::SourceR,
        );
        prop.enter_post_sync([old].into_iter().collect());
        assert_eq!(prop.outstanding(), 1);

        // Old txn commits; propagator processes the record and releases.
        db.commit(old).unwrap();
        prop.drain_all(&db, &mut m).unwrap();
        assert_eq!(prop.outstanding(), 0);
        assert_eq!(db.locks().held_count(proxy_owner(old)), 0);
    }

    #[test]
    fn throttled_iteration_still_completes() {
        let (db, mut m) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        m.populate(4).unwrap();
        let txn = db.begin();
        for i in 0..30 {
            db.insert(txn, "R", r_row(i, "j1")).unwrap();
        }
        db.commit(txn).unwrap();
        let mut prop = Propagator::new(&db, start, 0.2);
        let abort = AtomicBool::new(false);
        let stats = prop.iterate(&db, &mut m, 8, 0, &abort).unwrap();
        assert!(stats.records >= 32);
        crate::foj::verify_against_reference(&m).unwrap();
    }

    #[test]
    fn abort_flag_stops_iteration_early() {
        let (db, mut m) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        m.populate(4).unwrap();
        let txn = db.begin();
        for i in 0..100 {
            db.insert(txn, "R", r_row(i, "j1")).unwrap();
        }
        db.commit(txn).unwrap();
        let mut prop = Propagator::new(&db, start, 1.0);
        let abort = AtomicBool::new(true); // pre-aborted
        let stats = prop.iterate(&db, &mut m, 8, 0, &abort).unwrap();
        assert_eq!(stats.records, 0);
    }

    // --- coalescer unit tests ------------------------------------------

    fn ctx_for(db: &Database, m: &FojMapping) -> DrainCtx {
        DrainCtx::new(db, m)
    }

    fn owned(run: Vec<(Lsn, LogOp)>) -> Vec<(Lsn, RunOp)> {
        run.into_iter()
            .map(|(l, op)| (l, RunOp::Owned(op)))
            .collect()
    }

    fn full_ctx(mut ctx: DrainCtx) -> DrainCtx {
        ctx.policy = CoalescePolicy::Full;
        ctx
    }

    #[test]
    fn coalesce_delete_swallows_insert_and_updates() {
        let (db, m) = setup();
        let r_id = db.catalog().get("R").unwrap().id();
        let run = vec![
            (
                Lsn(1),
                LogOp::Insert {
                    table: r_id,
                    row: r_row(1, "j0"),
                },
            ),
            (
                Lsn(2),
                LogOp::Update {
                    table: r_id,
                    key: Key::single(1),
                    old: vec![(1, Value::str("b"))],
                    new: vec![(1, Value::str("b2"))],
                },
            ),
            (
                Lsn(3),
                LogOp::Delete {
                    table: r_id,
                    key: Key::single(1),
                    old: r_row(1, "j0"),
                },
            ),
        ];
        let out = coalesce(owned(run), &ctx_for(&db, &m)).unwrap();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1.op().unwrap(), LogOp::Delete { .. }));
    }

    #[test]
    fn coalesce_join_attribute_update_is_a_barrier() {
        let (db, m) = setup();
        let r_id = db.catalog().get("R").unwrap().id();
        // Column 2 is R's join attribute: the update voids pending
        // coalescing, so the later delete swallows nothing.
        let run = vec![
            (
                Lsn(1),
                LogOp::Insert {
                    table: r_id,
                    row: r_row(1, "j0"),
                },
            ),
            (
                Lsn(2),
                LogOp::Update {
                    table: r_id,
                    key: Key::single(1),
                    old: vec![(2, Value::str("j0"))],
                    new: vec![(2, Value::str("j1"))],
                },
            ),
            (
                Lsn(3),
                LogOp::Delete {
                    table: r_id,
                    key: Key::single(1),
                    old: r_row(1, "j1"),
                },
            ),
        ];
        let out = coalesce(owned(run), &ctx_for(&db, &m)).unwrap();
        assert_eq!(out.len(), 3, "nothing may be dropped across the barrier");
    }

    #[test]
    fn coalesce_pkey_move_voids_both_subjects() {
        let (db, m) = setup();
        let r_id = db.catalog().get("R").unwrap().id();
        // Insert y2, move y1 -> y2's key... impossible in a real log;
        // model the sound behavior anyway: pending for both old and new
        // subjects is voided, so the final delete drops nothing.
        let run = vec![
            (
                Lsn(1),
                LogOp::Insert {
                    table: r_id,
                    row: r_row(2, "j0"),
                },
            ),
            (
                Lsn(2),
                LogOp::Update {
                    table: r_id,
                    key: Key::single(1),
                    old: vec![(0, Value::Int(1))],
                    new: vec![(0, Value::Int(2))],
                },
            ),
            (
                Lsn(3),
                LogOp::Delete {
                    table: r_id,
                    key: Key::single(2),
                    old: r_row(2, "j0"),
                },
            ),
        ];
        let out = coalesce(owned(run), &full_ctx(ctx_for(&db, &m))).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn coalesce_full_update_subsumes_subset_updates() {
        let (db, m) = setup();
        let r_id = db.catalog().get("R").unwrap().id();
        let upd = |lsn: u64, v: &str| {
            (
                Lsn(lsn),
                LogOp::Update {
                    table: r_id,
                    key: Key::single(1),
                    old: vec![(1, Value::str("x"))],
                    new: vec![(1, Value::str(v))],
                },
            )
        };
        let run = vec![upd(1, "a"), upd(2, "b"), upd(3, "c")];
        let out = coalesce(owned(run), &full_ctx(ctx_for(&db, &m))).unwrap();
        assert_eq!(out.len(), 1);
        let LogOp::Update { new, .. } = out[0].1.op().unwrap() else {
            panic!()
        };
        assert_eq!(new[0].1, Value::str("c"));
        // DeleteOnly keeps all three.
        let run = vec![upd(1, "a"), upd(2, "b"), upd(3, "c")];
        assert_eq!(coalesce(owned(run), &ctx_for(&db, &m)).unwrap().len(), 3);
    }

    /// Regression: a control record smuggled into a run surfaces as
    /// `DbError::Internal`, not a panic mid-propagation (the panic
    /// would poison the table latches and wedge every writer).
    #[test]
    fn coalesce_rejects_control_record_instead_of_panicking() {
        let (db, m) = setup();
        let r_id = db.catalog().get("R").unwrap().id();
        let run = vec![
            (
                Lsn(1),
                RunOp::Shared(Arc::new(LogRecord::Commit { txn: TxnId(7) })),
            ),
            (
                Lsn(2),
                RunOp::Owned(LogOp::Delete {
                    table: r_id,
                    key: Key::single(1),
                    old: r_row(1, "j0"),
                }),
            ),
        ];
        let Err(err) = coalesce(run, &ctx_for(&db, &m)) else {
            panic!("control record in a run must be rejected")
        };
        assert!(matches!(err, DbError::Internal(_)), "got {err:?}");
    }

    #[test]
    fn coalesced_batch_converges_to_reference() {
        let (db, mut m) = setup();
        let (_, start, _) = db.write_fuzzy_mark();
        m.populate(8).unwrap();
        let txn = db.begin();
        for i in 0..10 {
            db.insert(txn, "R", r_row(i, "j0")).unwrap();
        }
        // Churn: repeated updates and a delete that supersede records.
        for round in 0..5 {
            for i in 0..10 {
                db.update(
                    txn,
                    "R",
                    &Key::single(i),
                    &[(1, Value::str(format!("b{round}")))],
                )
                .unwrap();
            }
        }
        db.delete(txn, "R", &Key::single(7)).unwrap();
        db.commit(txn).unwrap();
        let mut prop = Propagator::new(&db, start, 1.0);
        let abort = AtomicBool::new(false);
        // One big batch so the coalescer sees the whole churn at once.
        prop.iterate(&db, &mut m, 4096, 0, &abort).unwrap();
        assert!(prop.coalesced() > 0, "churn must have been coalesced");
        crate::foj::verify_against_reference(&m).unwrap();
    }
}
