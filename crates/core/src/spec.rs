//! Transformation specifications and options.

use std::time::Duration;

/// Synchronization strategy (§3.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncStrategy {
    /// Block new transactions on the involved tables, let active ones
    /// finish, then run a final propagation. Simple, violates the
    /// non-blocking requirement — implemented as the baseline strategy.
    BlockingCommit,
    /// Latch the source tables for one final (very short) propagation,
    /// transfer locks to the transformed tables, force transactions
    /// that were active on the source tables to abort, and let log
    /// propagation wash their compensations out in the background.
    /// This is the strategy the paper's prototype measures (<1 ms).
    NonBlockingAbort,
    /// Like non-blocking abort, but old transactions are allowed to run
    /// to completion on the (now frozen-for-others) source tables, with
    /// every subsequent operation mirrored as an origin-tagged lock on
    /// the transformed tables ("soft transformation").
    NonBlockingCommit,
}

/// How initial population reads the source tables.
///
/// Both modes write the same fuzzy mark and propagate the log from the
/// same `start_lsn` — the mark, not the copy mechanism, is what makes
/// Theorem 1 hold. The modes differ only in the *image* population
/// copies: a fuzzy image (chunked latched scans racing with writers,
/// §3.2) or a clean MVCC snapshot cut. A clean cut is a special case
/// of a fuzzy image, so propagating the log over it is safe for
/// exactly the §3.2 reasons; what it buys is determinism of the copied
/// image and zero interference from (and to) concurrent writers —
/// the ablation axis of the snapshot-vs-log benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TransformMode {
    /// Fuzzy copy + log propagation (the paper's mechanism).
    #[default]
    LogPropagation,
    /// MVCC snapshot copy + log propagation from the same fuzzy mark.
    /// Requires [`Database::enable_mvcc`](../../morph_engine/database/struct.Database.html#method.enable_mvcc).
    Snapshot,
}

/// What to do when log propagation cannot converge (§3.3: "the
/// transformation should either be aborted or get higher priority").
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum NonConvergencePolicy {
    /// Abort the transformation and delete the transformed tables.
    Abort,
    /// Multiply the priority by the factor (clamped to 1.0) and retry.
    Escalate {
        /// Priority multiplier applied per escalation.
        factor: f64,
    },
}

/// Degree of parallelism of the transformation pipeline.
///
/// `copy_workers` drives the initial fuzzy copy (§3.2): the key space
/// is partitioned into disjoint storage-shard classes and each worker
/// scans one class on its own thread, with the priority budget divided
/// among the workers so the aggregate duty cycle still honors
/// [`TransformOptions::priority`]. `apply_shards` drives log
/// propagation (§3.3): a coalesced run is partitioned by the operator's
/// subject notion into lanes applied concurrently, each under its own
/// masked write session; records whose effects cross lanes (and all
/// control records) stay full barriers.
///
/// `ParallelConfig::serial()` (1 worker, 1 shard) is byte-identical to
/// the single-threaded pipeline — the crash simulator runs it so its
/// determinism contract is untouched.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParallelConfig {
    /// Threads scanning disjoint source partitions during population.
    pub copy_workers: usize,
    /// Concurrent apply lanes per coalesced run.
    pub apply_shards: usize,
    /// Minimum lane-classified run length that is worth an epoch
    /// hand-off to the apply pool; shorter runs apply serially on the
    /// caller thread. Defaults to
    /// [`PARALLEL_SEGMENT_MIN`](crate::operator::PARALLEL_SEGMENT_MIN);
    /// tests and the crash simulator lower it to force real epochs
    /// (workers in flight) on deliberately tiny batches.
    pub min_apply_segment: usize,
    /// Honor `apply_shards` exactly even beyond the host's core count.
    /// By default the *effective* lane count is clamped to
    /// `available_parallelism()` — on an N-core host, more than N apply
    /// lanes only adds hand-off and fence overhead (the measured FOJ
    /// regression: 8 lanes at 1.31M rec/s vs 1.66M serial on 1 CPU).
    /// Width-sweep benches and the parallel-equivalence tests opt out
    /// via [`ParallelConfig::exact`] to exercise the configured width
    /// regardless of host.
    pub exact: bool,
}

impl ParallelConfig {
    /// The serial pipeline (exact single-threaded behavior).
    pub fn serial() -> ParallelConfig {
        ParallelConfig {
            copy_workers: 1,
            apply_shards: 1,
            min_apply_segment: crate::operator::PARALLEL_SEGMENT_MIN,
            exact: true,
        }
    }

    /// A parallel pipeline with the given worker/lane counts (each
    /// normalized to a power of two ≤ the storage shard count when
    /// used).
    pub fn new(copy_workers: usize, apply_shards: usize) -> ParallelConfig {
        ParallelConfig {
            copy_workers: copy_workers.max(1),
            apply_shards: apply_shards.max(1),
            min_apply_segment: crate::operator::PARALLEL_SEGMENT_MIN,
            exact: false,
        }
    }

    /// Lower (or raise) the epoch-worthiness threshold.
    #[must_use]
    pub fn with_min_apply_segment(mut self, min: usize) -> ParallelConfig {
        self.min_apply_segment = min.max(1);
        self
    }

    /// Opt out of the core-count clamp: use `apply_shards` verbatim
    /// even when it exceeds `available_parallelism()` (width sweeps,
    /// equivalence tests pinning an exact pool shape).
    #[must_use]
    pub fn exact(mut self) -> ParallelConfig {
        self.exact = true;
        self
    }

    /// The apply-lane count actually used: `apply_shards`, clamped to
    /// the host's `available_parallelism()` unless
    /// [`ParallelConfig::exact`] was requested. Over-sharding past the
    /// core count is a measured pessimization (BENCH_propagation.json
    /// `parallel` series: FOJ 8 lanes 1.31M rec/s vs 1.66M serial on
    /// 1 CPU), so the default config never does it.
    pub fn effective_apply_shards(&self) -> usize {
        if self.exact {
            return self.apply_shards;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.apply_shards.min(cores).max(1)
    }

    /// Whether this configuration is the exact serial pipeline.
    pub fn is_serial(&self) -> bool {
        self.copy_workers <= 1 && self.apply_shards <= 1
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::serial()
    }
}

/// Knobs shared by all transformations.
#[derive(Clone, Debug)]
pub struct TransformOptions {
    /// Fraction of wall-clock time the transformation may consume
    /// (0 < p ≤ 1). After processing a batch for `d` seconds the
    /// propagator sleeps `d·(1−p)/p` — the "priority" axis of the
    /// paper's Figure 4(d).
    pub priority: f64,
    /// Log records fetched per throttle batch.
    pub batch_size: usize,
    /// Backlog (remaining log records) below which synchronization may
    /// start; the §3.3 analysis threshold.
    pub sync_threshold: usize,
    /// Propagation iterations before declaring non-convergence.
    pub max_iterations: u32,
    /// Rows copied per fuzzy-scan chunk during initial population.
    pub population_chunk: usize,
    /// Synchronization strategy.
    pub strategy: SyncStrategy,
    /// Non-convergence policy.
    pub non_convergence: NonConvergencePolicy,
    /// Split-with-consistency-checking: run the checker after every
    /// N propagation batches.
    pub cc_interval: usize,
    /// Safety valve: overall wall-clock budget for the transformation
    /// (`None` = unbounded). Exceeding it aborts with
    /// `TransformationAborted`.
    pub deadline: Option<Duration>,
    /// Keep the (frozen) source tables in the catalog instead of
    /// dropping them at the very end. Tests and verification harnesses
    /// use this to compare the transformed tables against the final
    /// source state.
    pub retain_sources: bool,
    /// Degree of parallelism (copy workers / apply lanes). Defaults to
    /// the exact serial pipeline.
    pub parallel: ParallelConfig,
    /// How population reads the sources (see [`TransformMode`]).
    pub mode: TransformMode,
}

impl Default for TransformOptions {
    fn default() -> Self {
        TransformOptions {
            priority: 1.0,
            batch_size: 256,
            sync_threshold: 500,
            max_iterations: 1_000,
            population_chunk: 1_024,
            strategy: SyncStrategy::NonBlockingAbort,
            non_convergence: NonConvergencePolicy::Abort,
            cc_interval: 16,
            deadline: None,
            retain_sources: false,
            parallel: ParallelConfig::serial(),
            mode: TransformMode::default(),
        }
    }
}

impl TransformOptions {
    /// Set the priority (clamped to (0, 1]).
    #[must_use]
    pub fn priority(mut self, p: f64) -> Self {
        self.priority = p.clamp(1e-4, 1.0);
        self
    }

    /// Set the synchronization strategy.
    #[must_use]
    pub fn strategy(mut self, s: SyncStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Set the non-convergence policy.
    #[must_use]
    pub fn non_convergence(mut self, p: NonConvergencePolicy) -> Self {
        self.non_convergence = p;
        self
    }

    /// Set the wall-clock budget.
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Keep the frozen source tables after completion (verification).
    #[must_use]
    pub fn retain_sources(mut self) -> Self {
        self.retain_sources = true;
        self
    }

    /// Set the pipeline parallelism.
    #[must_use]
    pub fn parallel(mut self, p: ParallelConfig) -> Self {
        self.parallel = p;
        self
    }

    /// Set the population read mode.
    #[must_use]
    pub fn transform_mode(mut self, m: TransformMode) -> Self {
        self.mode = m;
        self
    }
}

/// Specification of a full-outer-join transformation: R ⟗ S → T.
///
/// The transformed table T contains every column of R followed by every
/// column of S except S's join column (the join attribute appears once,
/// as in the paper's Figure 1). Name clashes on non-join columns are
/// resolved by suffixing the S column with `_s`. T's storage key is
/// R's primary key extended with the join attribute (one-to-many) or
/// with S's primary key (many-to-many), which keeps NULL-extended rows
/// uniquely addressable.
#[derive(Clone, Debug)]
pub struct FojSpec {
    /// Source table R.
    pub r_table: String,
    /// Source table S. In one-to-many mode the join attribute must be
    /// unique in S (it is a candidate key, §4).
    pub s_table: String,
    /// Name of the transformed table T (created by preparation).
    pub target: String,
    /// Join column name in R.
    pub r_join_col: String,
    /// Join column name in S.
    pub s_join_col: String,
    /// Whether the relation is many-to-many (§4.2). Changes T's key to
    /// R-pk ⧺ S-pk and switches to the generalized rules.
    pub many_to_many: bool,
}

impl FojSpec {
    /// One-to-many FOJ specification.
    pub fn new(
        r_table: &str,
        s_table: &str,
        target: &str,
        r_join_col: &str,
        s_join_col: &str,
    ) -> FojSpec {
        FojSpec {
            r_table: r_table.to_owned(),
            s_table: s_table.to_owned(),
            target: target.to_owned(),
            r_join_col: r_join_col.to_owned(),
            s_join_col: s_join_col.to_owned(),
            many_to_many: false,
        }
    }

    /// Switch to many-to-many mode.
    #[must_use]
    pub fn many_to_many(mut self) -> Self {
        self.many_to_many = true;
        self
    }
}

/// How the split materializes its R target (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitMode {
    /// Create R as a separate table and populate it (the variant the
    /// paper describes in full).
    SeparateR,
    /// The space-saving alternative: only S (plus a small bookkeeping
    /// table P holding per-record LSN and split value) is materialized;
    /// at synchronization the source T is projected down to R's columns
    /// and renamed. Trades a longer synchronization latch for ~half the
    /// space.
    RenameInPlace,
}

/// Specification of a vertical split transformation: T → R, S.
#[derive(Clone, Debug)]
pub struct SplitSpec {
    /// Source table T.
    pub source: String,
    /// Name of the R target (keeps T's primary key).
    pub r_target: String,
    /// Name of the S target (keyed by the split attribute).
    pub s_target: String,
    /// Columns of T that go to R. Must include T's primary key and the
    /// split column.
    pub r_cols: Vec<String>,
    /// The split attribute (functionally determines `s_dep_cols`). Goes
    /// to both targets; primary key of S.
    pub split_col: String,
    /// Columns of T functionally dependent on the split attribute; they
    /// move to S.
    pub s_dep_cols: Vec<String>,
    /// Whether the DBMS guarantees the functional dependency (§5.2) or
    /// the consistency checker must verify it (§5.3).
    pub check_consistency: bool,
    /// R materialization mode.
    pub mode: SplitMode,
}

impl SplitSpec {
    /// Split specification with consistency guaranteed by the DBMS.
    pub fn new(
        source: &str,
        r_target: &str,
        s_target: &str,
        r_cols: &[&str],
        split_col: &str,
        s_dep_cols: &[&str],
    ) -> SplitSpec {
        SplitSpec {
            source: source.to_owned(),
            r_target: r_target.to_owned(),
            s_target: s_target.to_owned(),
            r_cols: r_cols.iter().map(|s| (*s).to_owned()).collect(),
            split_col: split_col.to_owned(),
            s_dep_cols: s_dep_cols.iter().map(|s| (*s).to_owned()).collect(),
            check_consistency: false,
            mode: SplitMode::SeparateR,
        }
    }

    /// Enable §5.3 consistency checking.
    #[must_use]
    pub fn with_consistency_check(mut self) -> Self {
        self.check_consistency = true;
        self
    }

    /// Use the rename-in-place variant (§5.2 alternative).
    #[must_use]
    pub fn rename_in_place(mut self) -> Self {
        self.mode = SplitMode::RenameInPlace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = TransformOptions::default();
        assert_eq!(o.priority, 1.0);
        assert_eq!(o.strategy, SyncStrategy::NonBlockingAbort);
        assert!(o.sync_threshold > 0);
    }

    #[test]
    fn priority_is_clamped() {
        assert_eq!(TransformOptions::default().priority(2.0).priority, 1.0);
        assert!(TransformOptions::default().priority(0.0).priority > 0.0);
        assert_eq!(TransformOptions::default().priority(0.25).priority, 0.25);
    }

    #[test]
    fn parallel_config_normalizes() {
        assert!(ParallelConfig::serial().is_serial());
        assert!(TransformOptions::default().parallel.is_serial());
        let p = ParallelConfig::new(0, 0);
        assert!(p.is_serial());
        let p = ParallelConfig::new(4, 2);
        assert_eq!((p.copy_workers, p.apply_shards), (4, 2));
        assert!(!p.is_serial());
        let o = TransformOptions::default().parallel(p);
        assert_eq!(o.parallel, p);
    }

    #[test]
    fn builders_compose() {
        let spec = FojSpec::new("r", "s", "t", "c", "c").many_to_many();
        assert!(spec.many_to_many);
        let split = SplitSpec::new("t", "r", "s", &["a", "c"], "c", &["d"])
            .with_consistency_check()
            .rename_in_place();
        assert!(split.check_consistency);
        assert_eq!(split.mode, SplitMode::RenameInPlace);
    }
}
