//! Lock-free live progress counters for a running transformation.
//!
//! A [`Progress`] is a handful of atomics the phase driver bumps as it
//! works; a [`ProgressHandle`] is a cheap clone any thread can poll
//! without touching engine locks — a monitor printing an ETA must
//! never contend with the propagation rules it is observing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Phase indices published through [`Progress::phase`]. Mirrors the
/// orchestrator's state machine; the driver only ever moves forward.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ProgressPhase {
    /// Not started yet.
    Pending,
    /// Preparation: creating target tables.
    Preparing,
    /// Initial fuzzy population (§3.2).
    Copying,
    /// Log propagation loop (§3.3).
    Propagating,
    /// Synchronization (§3.4).
    Syncing,
    /// Done: targets published.
    CutOver,
    /// Aborted: targets dropped.
    Aborted,
}

impl ProgressPhase {
    fn from_index(i: u64) -> ProgressPhase {
        match i {
            0 => ProgressPhase::Pending,
            1 => ProgressPhase::Preparing,
            2 => ProgressPhase::Copying,
            3 => ProgressPhase::Propagating,
            4 => ProgressPhase::Syncing,
            5 => ProgressPhase::CutOver,
            _ => ProgressPhase::Aborted,
        }
    }

    /// Human-readable name (progress lines).
    pub fn name(self) -> &'static str {
        match self {
            ProgressPhase::Pending => "pending",
            ProgressPhase::Preparing => "preparing",
            ProgressPhase::Copying => "copying",
            ProgressPhase::Propagating => "propagating",
            ProgressPhase::Syncing => "syncing",
            ProgressPhase::CutOver => "cutover",
            ProgressPhase::Aborted => "aborted",
        }
    }
}

/// Shared atomic counters; written by the transformation thread,
/// readable from anywhere.
#[derive(Default, Debug)]
pub struct Progress {
    /// Current [`ProgressPhase`] as an index.
    phase: AtomicU64,
    /// Rows written by the initial fuzzy copy.
    rows_copied: AtomicUsize,
    /// Log records drained through the propagation rules so far.
    records_propagated: AtomicUsize,
    /// Log records still behind the cursor after the last iteration.
    backlog: AtomicUsize,
    /// Propagation iterations completed.
    iterations: AtomicUsize,
}

impl Progress {
    /// Fresh counters in the `Pending` phase.
    pub fn new() -> Arc<Progress> {
        Arc::new(Progress::default())
    }

    /// Publish the phase (driver side).
    pub fn set_phase(&self, phase: ProgressPhase) {
        self.phase.store(phase as u64, Ordering::Release);
    }

    /// Publish the fuzzy-copy row count (driver side).
    pub fn set_rows_copied(&self, n: usize) {
        self.rows_copied.store(n, Ordering::Relaxed);
    }

    /// Add propagated records (driver side).
    pub fn add_records(&self, n: usize) {
        self.records_propagated.fetch_add(n, Ordering::Relaxed);
    }

    /// Publish the current backlog (driver side).
    pub fn set_backlog(&self, n: usize) {
        self.backlog.store(n, Ordering::Relaxed);
    }

    /// Count one propagation iteration (driver side).
    pub fn add_iteration(&self) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }
}

/// Read-only view of a [`Progress`]; `Clone` is an `Arc` bump.
#[derive(Clone, Debug)]
pub struct ProgressHandle(Arc<Progress>);

impl ProgressHandle {
    /// Wrap shared counters.
    pub fn new(inner: Arc<Progress>) -> ProgressHandle {
        ProgressHandle(inner)
    }

    /// The phase the transformation is currently in.
    pub fn phase(&self) -> ProgressPhase {
        ProgressPhase::from_index(self.0.phase.load(Ordering::Acquire))
    }

    /// Rows written by the initial fuzzy copy (0 until copy finishes).
    pub fn rows_copied(&self) -> usize {
        self.0.rows_copied.load(Ordering::Relaxed)
    }

    /// Log records drained through the rules so far.
    pub fn records_propagated(&self) -> usize {
        self.0.records_propagated.load(Ordering::Relaxed)
    }

    /// Backlog after the most recent propagation iteration.
    pub fn backlog(&self) -> usize {
        self.0.backlog.load(Ordering::Relaxed)
    }

    /// Propagation iterations completed.
    pub fn iterations(&self) -> usize {
        self.0.iterations.load(Ordering::Relaxed)
    }

    /// One-line status summary, e.g. for periodic progress printing.
    pub fn summary(&self) -> String {
        format!(
            "{}: copied {} rows, propagated {} records over {} iterations, backlog {}",
            self.phase().name(),
            self.rows_copied(),
            self.records_propagated(),
            self.iterations(),
            self.backlog(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_flow_through_the_handle() {
        let p = Progress::new();
        let h = ProgressHandle::new(Arc::clone(&p));
        assert_eq!(h.phase(), ProgressPhase::Pending);
        p.set_phase(ProgressPhase::Copying);
        p.set_rows_copied(120);
        p.add_records(40);
        p.add_records(2);
        p.set_backlog(7);
        p.add_iteration();
        assert_eq!(h.phase(), ProgressPhase::Copying);
        assert_eq!(h.rows_copied(), 120);
        assert_eq!(h.records_propagated(), 42);
        assert_eq!(h.backlog(), 7);
        assert_eq!(h.iterations(), 1);
        let s = h.summary();
        assert!(s.contains("copying") && s.contains("120") && s.contains("42"));
    }
}
