//! Consistency-checker state (§5.3).
//!
//! When a table is split on an attribute whose functional dependency
//! the DBMS does *not* guarantee (paper Example 1: postal code →
//! city, violated by a typo), each transformed S-record carries a C/U
//! flag. The **consistency checker** certifies U-records: it writes
//! `Begin CC on v` to the log, reads every T-row contributing to `v`
//! without transaction locks, and — if they agree — writes `CC: v is
//! ok` together with the correct image. The log propagator upgrades
//! the flag only if nothing touched `v` between the two log records,
//! which it can decide exactly because it processes the log
//! sequentially.

use morph_common::{Key, Lsn, Value};
use std::collections::BTreeSet;

/// Whether a split transformation may enter synchronization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Readiness {
    /// All S-records carry a C flag (or checking is disabled).
    Ready,
    /// U-flagged records remain but none is known-inconsistent; more
    /// propagation + CC rounds may certify them.
    Pending {
        /// Number of U-flagged records left.
        unknowns: usize,
    },
    /// The checker found contributing T-rows that disagree; the data
    /// must be repaired before the transformation can complete.
    Inconsistent {
        /// Split-attribute keys with contradicting contributors.
        keys: Vec<Key>,
    },
}

/// An in-flight certification: `CcBegin` has been logged, `CcOk` (if
/// the read agreed) is somewhere behind it in the log.
#[derive(Clone, Debug)]
pub struct PendingCc {
    /// Split-attribute key under certification.
    pub key: Key,
    /// LSN of the `CcBegin` record.
    pub begin_lsn: Lsn,
    /// Set when the propagator applies any operation affecting `key`
    /// after `CcBegin` — the certification is then void.
    pub touched: bool,
}

/// Checker bookkeeping owned by the split rule set.
#[derive(Default, Debug)]
pub struct CcState {
    /// S-keys currently flagged U.
    pub unknowns: BTreeSet<Key>,
    /// S-keys whose contributors were read and found contradictory.
    pub inconsistent: BTreeSet<Key>,
    /// Round-robin cursor over `unknowns`.
    pub cursor: Option<Key>,
    /// The single in-flight certification, if any.
    pub pending: Option<PendingCc>,
    /// Completed certification rounds (reporting).
    pub rounds: usize,
}

impl CcState {
    /// Mark a key unknown (flag transition C → U).
    pub fn mark_unknown(&mut self, key: Key) {
        self.inconsistent.remove(&key);
        self.unknowns.insert(key);
    }

    /// Mark a key consistent (flag transition U → C).
    pub fn mark_consistent(&mut self, key: &Key) {
        self.unknowns.remove(key);
        self.inconsistent.remove(key);
    }

    /// Next key to certify, round-robin so a stubborn key cannot starve
    /// the rest.
    pub fn next_candidate(&mut self) -> Option<Key> {
        if self.unknowns.is_empty() {
            return None;
        }
        let next = match &self.cursor {
            Some(cur) => self
                .unknowns
                .range((
                    std::ops::Bound::Excluded(cur.clone()),
                    std::ops::Bound::Unbounded,
                ))
                .next()
                .cloned()
                .or_else(|| self.unknowns.iter().next().cloned()),
            None => self.unknowns.iter().next().cloned(),
        };
        self.cursor = next.clone();
        next
    }

    /// Note that an applied operation touched split value `v`.
    pub fn note_touch(&mut self, v: &Value) {
        if let Some(p) = &mut self.pending {
            if p.key.values().first() == Some(v) {
                p.touched = true;
            }
        }
    }

    /// Current readiness.
    pub fn readiness(&self, checking: bool) -> Readiness {
        if !checking || self.unknowns.is_empty() {
            return Readiness::Ready;
        }
        // Known-inconsistent keys that are *still* unknown block the
        // transformation only if every unknown is known-bad (otherwise
        // further CC rounds may still make progress).
        if self.unknowns.iter().all(|k| self.inconsistent.contains(k)) {
            Readiness::Inconsistent {
                keys: self.unknowns.iter().cloned().collect(),
            }
        } else {
            Readiness::Pending {
                unknowns: self.unknowns.len(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> Key {
        Key::single(v)
    }

    #[test]
    fn unknown_consistent_lifecycle() {
        let mut cc = CcState::default();
        assert_eq!(cc.readiness(true), Readiness::Ready);
        cc.mark_unknown(k(1));
        cc.mark_unknown(k(2));
        assert_eq!(cc.readiness(true), Readiness::Pending { unknowns: 2 });
        cc.mark_consistent(&k(1));
        cc.mark_consistent(&k(2));
        assert_eq!(cc.readiness(true), Readiness::Ready);
    }

    #[test]
    fn readiness_ignores_when_checking_disabled() {
        let mut cc = CcState::default();
        cc.mark_unknown(k(1));
        assert_eq!(cc.readiness(false), Readiness::Ready);
    }

    #[test]
    fn all_inconsistent_blocks() {
        let mut cc = CcState::default();
        cc.mark_unknown(k(1));
        cc.inconsistent.insert(k(1));
        assert_eq!(
            cc.readiness(true),
            Readiness::Inconsistent { keys: vec![k(1)] }
        );
        // A second, still-checkable unknown keeps it pending.
        cc.mark_unknown(k(2));
        assert_eq!(cc.readiness(true), Readiness::Pending { unknowns: 2 });
    }

    #[test]
    fn round_robin_candidates() {
        let mut cc = CcState::default();
        cc.mark_unknown(k(1));
        cc.mark_unknown(k(2));
        cc.mark_unknown(k(3));
        let a = cc.next_candidate().unwrap();
        let b = cc.next_candidate().unwrap();
        let c = cc.next_candidate().unwrap();
        let d = cc.next_candidate().unwrap();
        assert_eq!(vec![&a, &b, &c], vec![&k(1), &k(2), &k(3)]);
        assert_eq!(d, k(1), "wraps around");
        assert!(CcState::default().next_candidate().is_none());
    }

    #[test]
    fn touch_voids_matching_pending_only() {
        let mut cc = CcState {
            pending: Some(PendingCc {
                key: k(5),
                begin_lsn: Lsn(1),
                touched: false,
            }),
            ..CcState::default()
        };
        cc.note_touch(&Value::Int(4));
        assert!(!cc.pending.as_ref().unwrap().touched);
        cc.note_touch(&Value::Int(5));
        assert!(cc.pending.as_ref().unwrap().touched);
    }

    #[test]
    fn marking_unknown_clears_stale_inconsistency() {
        let mut cc = CcState::default();
        cc.mark_unknown(k(1));
        cc.inconsistent.insert(k(1));
        // New evidence arrives (e.g. the user fixed the data): treat it
        // as checkable again.
        cc.mark_unknown(k(1));
        assert_eq!(cc.readiness(true), Readiness::Pending { unknowns: 1 });
    }
}
