//! Vertical split transformation: mapping, propagation rules 8–11,
//! counters and C/U flags (§5).
//!
//! A split takes one source table T and produces R (T's primary key
//! plus whatever other columns the DBA keeps) and S (the split
//! attribute — a candidate key of S — plus the columns functionally
//! dependent on it). Multiple T-rows may share an S-part, so each
//! S-record carries a **reference counter** (à la Gupta et al. counting
//! view maintenance): inserted at 1, incremented/decremented as
//! contributing T-rows come and go, removed at zero.
//!
//! Unlike FOJ, split targets *do* have valid state identifiers: every
//! R-row carries the LSN of the last operation reflected in it, and the
//! rules use it for idempotence exactly as §5.2 prescribes — including
//! the subtle choices the paper spells out (the delete rule stamps the
//! delete's LSN onto the S-record; S-side value updates are gated on
//! the S-record's own LSN, while counter bookkeeping is gated on the
//! R-side LSN).
//!
//! With `check_consistency` (§5.3), S-records carry C/U flags and the
//! [consistency checker](crate::cc) certifies U-records through the
//! log.

use crate::cc::{CcState, PendingCc, Readiness};
use crate::operator::{
    drive_segments, scan_source_partitioned, scan_source_throttled, CoalescePolicy, LaneScratch,
    LaneTag, SegmentRun, TransformOperator,
};
use crate::pool::{ApplyPool, EpochTask};
use crate::spec::{SplitMode, SplitSpec};
use crate::throttle::Throttle;
use morph_common::{DbError, DbResult, Key, Lsn, Schema, TableId, Value};
use morph_engine::Database;
use morph_storage::{shard_stride, ConsistencyFlag, Row, Table, WriteSession};
use morph_wal::{LogManager, LogOp, LogRecord};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Column mapping and rule engine for one split transformation.
pub struct SplitMapping {
    t: Arc<Table>,
    /// R target (separate mode). `None` in rename-in-place mode, where
    /// T itself becomes R at synchronization.
    r: Option<Arc<Table>>,
    /// Bookkeeping table P (rename-in-place mode): per-record LSN and
    /// split value, keyed like T.
    p: Option<Arc<Table>>,
    s: Arc<Table>,
    /// T positions of T's primary key.
    t_pk: Vec<usize>,
    /// T position of the split attribute.
    split_t: usize,
    /// T positions of the columns going to R, in R column order.
    r_cols: Vec<usize>,
    /// T positions of the columns going to S, in S column order (split
    /// attribute first).
    s_cols: Vec<usize>,
    /// Index on T's split column (consistency checker reads through
    /// it).
    idx_split: Option<usize>,
    check: bool,
    mode: SplitMode,
    /// Name the source is renamed to at synchronization
    /// (rename-in-place mode).
    r_target_name: String,
    /// Consistency-checker state.
    pub cc: CcState,
}

impl SplitMapping {
    /// Preparation step: create the target tables (and, in §5.3 mode,
    /// the split-column index on the source that the checker reads
    /// through).
    pub fn prepare(db: &Database, spec: &SplitSpec) -> DbResult<SplitMapping> {
        let t = db.catalog().get(&spec.source)?;
        let ts = t.schema();
        let split_t = ts.require(&spec.split_col)?;

        // Column sets.
        let mut r_cols = Vec::new();
        for name in &spec.r_cols {
            r_cols.push(ts.require(name)?);
        }
        if !ts.covers_pkey(&r_cols) {
            return Err(DbError::MissingCandidateKey(format!(
                "r_cols of split {:?} must include the source primary key",
                spec.source
            )));
        }
        if !r_cols.contains(&split_t) {
            return Err(DbError::InvalidSchema(
                "r_cols must include the split column (it is R's foreign key into S)".into(),
            ));
        }
        let mut s_cols = vec![split_t];
        for name in &spec.s_dep_cols {
            let pos = ts.require(name)?;
            if pos == split_t {
                return Err(DbError::InvalidSchema(
                    "the split column is implicitly part of S; do not list it in s_dep_cols".into(),
                ));
            }
            s_cols.push(pos);
        }

        // S target: split attribute (key) + dependents, all nullable
        // except as inherited.
        let mut sb = Schema::builder();
        for &pos in &s_cols {
            let c = &ts.columns()[pos];
            sb = sb.nullable(&c.name, c.ty);
        }
        let s_schema = sb.primary_key(&[&ts.columns()[split_t].name]).build()?;
        let s = db.catalog().create_table(&spec.s_target, s_schema)?;

        let (r, p) = match spec.mode {
            SplitMode::SeparateR => {
                let mut rb = Schema::builder();
                for &pos in &r_cols {
                    let c = &ts.columns()[pos];
                    rb = if c.nullable {
                        rb.nullable(&c.name, c.ty)
                    } else {
                        rb.column(&c.name, c.ty)
                    };
                }
                let pk_names: Vec<String> = ts
                    .pkey()
                    .iter()
                    .map(|&p| ts.columns()[p].name.clone())
                    .collect();
                let pk_refs: Vec<&str> = pk_names.iter().map(String::as_str).collect();
                let r_schema = rb.primary_key(&pk_refs).build()?;
                (
                    Some(db.catalog().create_table(&spec.r_target, r_schema)?),
                    None,
                )
            }
            SplitMode::RenameInPlace => {
                // P: T's key columns + the split value, keyed like T.
                let mut pb = Schema::builder();
                let mut p_cols: Vec<usize> = ts.pkey().to_vec();
                if !p_cols.contains(&split_t) {
                    p_cols.push(split_t);
                }
                for &pos in &p_cols {
                    let c = &ts.columns()[pos];
                    pb = pb.nullable(&c.name, c.ty);
                }
                let pk_names: Vec<String> = ts
                    .pkey()
                    .iter()
                    .map(|&p| ts.columns()[p].name.clone())
                    .collect();
                let pk_refs: Vec<&str> = pk_names.iter().map(String::as_str).collect();
                let p_schema = pb.primary_key(&pk_refs).build()?;
                let p_name = format!("__morph_p_{}", spec.source);
                (None, Some(db.catalog().create_table(&p_name, p_schema)?))
            }
        };

        let idx_split = if spec.check_consistency {
            let name = &ts.columns()[split_t].name;
            Some(match t.index_pos("__morph_split") {
                Some(i) => i,
                None => t.add_index("__morph_split", &[name], false)?,
            })
        } else {
            None
        };

        Ok(SplitMapping {
            t,
            r,
            p,
            s,
            t_pk: ts.pkey().to_vec(),
            split_t,
            r_cols,
            s_cols,
            idx_split,
            check: spec.check_consistency,
            mode: spec.mode,
            r_target_name: spec.r_target.clone(),
            cc: CcState::default(),
        })
    }

    /// The source table T.
    pub fn t_table(&self) -> &Arc<Table> {
        &self.t
    }

    /// The R target (separate mode only).
    pub fn r_table(&self) -> Option<&Arc<Table>> {
        self.r.as_ref()
    }

    /// The S target.
    pub fn s_table(&self) -> &Arc<Table> {
        &self.s
    }

    /// The bookkeeping table P (rename-in-place mode only).
    pub fn p_table(&self) -> Option<&Arc<Table>> {
        self.p.as_ref()
    }

    /// Materialization mode.
    pub fn mode(&self) -> SplitMode {
        self.mode
    }

    /// The name T takes at synchronization (rename-in-place mode).
    pub fn rename_target(&self) -> Option<String> {
        match self.mode {
            SplitMode::RenameInPlace => Some(self.r_target_name.clone()),
            SplitMode::SeparateR => None,
        }
    }

    /// Whether §5.3 consistency checking is active.
    pub fn checking(&self) -> bool {
        self.check
    }

    /// T positions of the columns kept by R (sync uses this to project
    /// the source in rename-in-place mode).
    pub fn r_col_positions(&self) -> &[usize] {
        &self.r_cols
    }

    // --- projections ------------------------------------------------------

    /// R-part of a T row (R column order).
    pub fn r_part(&self, t_vals: &[Value]) -> Vec<Value> {
        self.r_cols.iter().map(|&i| t_vals[i].clone()).collect()
    }

    /// S-part of a T row (S column order; split attribute first).
    pub fn s_part(&self, t_vals: &[Value]) -> Vec<Value> {
        self.s_cols.iter().map(|&i| t_vals[i].clone()).collect()
    }

    fn split_val(&self, t_vals: &[Value]) -> Value {
        t_vals[self.split_t].clone()
    }

    fn s_key(&self, v: &Value) -> Key {
        Key::new([v.clone()])
    }

    // --- the R side, abstracted over the two modes -------------------------

    /// The table playing the R role: R itself in separate mode, the P
    /// bookkeeping table in rename-in-place mode.
    fn r_side(&self) -> &Arc<Table> {
        match self.mode {
            SplitMode::SeparateR => self.r.as_ref().expect("separate mode"), // morph-lint: allow(panic, the constructor populates exactly the side matching the mode)
            SplitMode::RenameInPlace => self.p.as_ref().expect("in-place mode"), // morph-lint: allow(panic, the constructor populates exactly the side matching the mode)
        }
    }

    /// Decode (LSN, split value) from an R-side row.
    fn decode_r(&self, row: &Row) -> (Lsn, Value) {
        match self.mode {
            SplitMode::SeparateR => {
                let split_in_r = self
                    .r_cols
                    .iter()
                    .position(|&c| c == self.split_t)
                    .expect("split col in r_cols"); // morph-lint: allow(panic, spec validation puts the split column in r_cols)
                (row.lsn, row.values[split_in_r].clone())
            }
            SplitMode::RenameInPlace => {
                let v = if self.t_pk.contains(&self.split_t) {
                    // Split col is part of the key; find its position.
                    let pos = self
                        .t_pk
                        .iter()
                        .position(|&c| c == self.split_t)
                        .expect("split in pkey"); // morph-lint: allow(panic, spec validation puts the split column in the primary key)
                    row.values[pos].clone()
                } else {
                    // P layout: key columns then the split value last.
                    row.values[row.values.len() - 1].clone()
                };
                (row.lsn, v)
            }
        }
    }

    /// Current (LSN, split value) of the R-part for key `y`, read
    /// through the table (lock transfer runs outside rule sessions).
    fn r_get(&self, y: &Key) -> Option<(Lsn, Value)> {
        let row = self.r_side().get(y)?;
        Some(self.decode_r(&row))
    }

    /// Session variant of [`SplitMapping::r_get`] for the rules.
    fn r_get_in(&self, rs: &WriteSession<'_>, y: &Key) -> Option<(Lsn, Value)> {
        rs.with_row(y, |row| self.decode_r(row))
    }

    fn r_insert(&self, rs: &mut WriteSession<'_>, t_vals: &[Value], lsn: Lsn) -> DbResult<()> {
        let vals = match self.mode {
            SplitMode::SeparateR => self.r_part(t_vals),
            SplitMode::RenameInPlace => {
                let mut vals: Vec<Value> = self.t_pk.iter().map(|&i| t_vals[i].clone()).collect();
                if !self.t_pk.contains(&self.split_t) {
                    vals.push(t_vals[self.split_t].clone());
                }
                vals
            }
        };
        match rs.insert_row(Row::new(vals, lsn)) {
            Ok(_) | Err(DbError::DuplicateKey(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn r_delete(&self, rs: &mut WriteSession<'_>, y: &Key) -> DbResult<()> {
        match rs.delete(y) {
            Ok(_) | Err(DbError::KeyNotFound(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Apply T-column updates to the R side; `new` uses T positions.
    fn r_update(
        &self,
        rs: &mut WriteSession<'_>,
        y: &Key,
        new: &[(usize, Value)],
        lsn: Lsn,
    ) -> DbResult<()> {
        let p_layout: Vec<usize>;
        let layout: &[usize] = match self.mode {
            SplitMode::SeparateR => &self.r_cols,
            SplitMode::RenameInPlace => {
                let mut l: Vec<usize> = self.t_pk.clone();
                if !self.t_pk.contains(&self.split_t) {
                    l.push(self.split_t);
                }
                p_layout = l;
                &p_layout
            }
        };
        let cols: Vec<(usize, Value)> = new
            .iter()
            .filter_map(|(t_pos, v)| {
                layout
                    .iter()
                    .position(|c| c == t_pos)
                    .map(|pos| (pos, v.clone()))
            })
            .collect();
        if cols.is_empty() && self.mode == SplitMode::RenameInPlace {
            // Update touches neither key nor split columns; P still
            // tracks the LSN.
            rs.with_row_mut(y, |row| row.lsn = lsn);
            return Ok(());
        }
        match rs.update(y, &cols, lsn) {
            Ok(_) => Ok(()),
            Err(DbError::KeyNotFound(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    // --- the S side --------------------------------------------------------

    /// Rule 8's S half: absorb one contribution of `s_vals` under split
    /// value `x` (counter ++ or fresh insert).
    fn s_absorb(
        &mut self,
        ss: &mut WriteSession<'_>,
        x: &Value,
        s_vals: &[Value],
        lsn: Lsn,
    ) -> DbResult<()> {
        let key = self.s_key(x);
        if self.check {
            self.cc.note_touch(x);
        }
        let existed = ss.with_row_mut(&key, |row| {
            row.counter += 1;
            if row.lsn < lsn {
                row.lsn = lsn;
            }
            if row.values != s_vals {
                row.flag = ConsistencyFlag::Unknown;
                true // differs
            } else {
                false
            }
        });
        match existed {
            Some(differs) => {
                if differs && self.check {
                    self.cc.mark_unknown(key);
                }
                Ok(())
            }
            None => {
                ss.insert_row(Row {
                    values: s_vals.to_vec(),
                    lsn,
                    counter: 1,
                    flag: ConsistencyFlag::Consistent,
                    presence: Default::default(),
                    writer: morph_storage::SYSTEM,
                })?;
                Ok(())
            }
        }
    }

    /// Advance the S-record's LSN watermark for split value `x` without
    /// changing its counter or values. Used by rule 9 when the delete's
    /// subject row was never reflected in R (its insert was swallowed
    /// by coalescing, or missed by the fuzzy copy): the one-by-one
    /// schedule would have stamped the shared S-record twice (absorb,
    /// then release), so the batched schedule must at least stamp once.
    fn s_stamp(&mut self, ss: &mut WriteSession<'_>, x: &Value, lsn: Lsn) {
        let key = self.s_key(x);
        if self.check {
            self.cc.note_touch(x);
        }
        let _ = ss.with_row_mut(&key, |row| {
            if row.lsn < lsn {
                row.lsn = lsn;
            }
        });
    }

    /// Rule 9's S half: release one contribution under split value `x`.
    fn s_release(&mut self, ss: &mut WriteSession<'_>, x: &Value, lsn: Lsn) -> DbResult<()> {
        let key = self.s_key(x);
        if self.check {
            self.cc.note_touch(x);
        }
        let drop_row = ss.with_row_mut(&key, |row| {
            row.counter = row.counter.saturating_sub(1);
            // Rule 9: the LSN is stamped even though the operation's
            // subject row no longer exists — sequential propagation
            // makes this safe and avoids the stale-LSN anomaly the
            // paper describes.
            if row.lsn < lsn {
                row.lsn = lsn;
            }
            row.counter == 0
        });
        if drop_row == Some(true) {
            let _ = ss.delete(&key);
            if self.check {
                self.cc.mark_consistent(&key); // gone ⇒ no longer unknown
            }
        }
        Ok(())
    }

    // --- dispatch -----------------------------------------------------------

    /// Tables this rule set reads ops for.
    pub fn source_ids(&self) -> Vec<TableId> {
        vec![self.t.id()]
    }

    /// Apply one logged source-table operation (rules 8–11), paying one
    /// latch round trip per target for this single record. The batched
    /// path ([`TransformOperator::apply_batch`]) amortizes the sessions
    /// over a whole batch instead.
    pub fn apply(&mut self, lsn: Lsn, op: &LogOp) -> DbResult<()> {
        if op.table() != self.t.id() {
            return Ok(());
        }
        let r_side = Arc::clone(self.r_side());
        let s = Arc::clone(&self.s);
        let mut rs = r_side.write_session();
        let mut ss = s.write_session();
        self.apply_in(&mut rs, &mut ss, lsn, op)
    }

    /// Rule dispatch within open R-side and S write sessions. Sessions
    /// are always opened in that order (R-side, then S) so concurrent
    /// batch appliers cannot deadlock.
    fn apply_in(
        &mut self,
        rs: &mut WriteSession<'_>,
        ss: &mut WriteSession<'_>,
        lsn: Lsn,
        op: &LogOp,
    ) -> DbResult<()> {
        if op.table() != self.t.id() {
            return Ok(());
        }
        match op {
            LogOp::Insert { row, .. } => self.rule8_insert(rs, ss, row, lsn),
            LogOp::Delete { key, old, .. } => self.rule9_delete(rs, ss, key, old, lsn),
            LogOp::Update { key, new, .. } => self.rule10_11_update(rs, ss, key, new, lsn),
        }
    }

    /// Rule 8: insert t^y_x.
    fn rule8_insert(
        &mut self,
        rs: &mut WriteSession<'_>,
        ss: &mut WriteSession<'_>,
        t_vals: &[Value],
        lsn: Lsn,
    ) -> DbResult<()> {
        let y = Key::project(t_vals, &self.t_pk);
        if self.r_get_in(rs, &y).is_some() {
            return Ok(()); // already reflected (Theorem 1)
        }
        self.r_insert(rs, t_vals, lsn)?;
        let x = self.split_val(t_vals);
        let s_vals = self.s_part(t_vals);
        self.s_absorb(ss, &x, &s_vals, lsn)
    }

    /// Rule 9: delete t^y.
    fn rule9_delete(
        &mut self,
        rs: &mut WriteSession<'_>,
        ss: &mut WriteSession<'_>,
        y: &Key,
        old: &[Value],
        lsn: Lsn,
    ) -> DbResult<()> {
        let Some((rlsn, x)) = self.r_get_in(rs, y) else {
            // The subject row is not in R — either the fuzzy copy never
            // saw it, or a coalesced batch swallowed its insert. The
            // shared S-record (if any) must still observe this delete's
            // LSN: applied one record at a time, absorb-then-release
            // both stamp it, so a coalesced run must not leave the
            // watermark behind. Stamp from the delete's pre-image
            // without touching counter or values (skipped when the
            // pre-image is truncated and the split value unknowable).
            if let Some(x) = old.get(self.split_t).cloned() {
                self.s_stamp(ss, &x, lsn);
            }
            return Ok(());
        };
        if rlsn >= lsn {
            return Ok(()); // newer state already reflected
        }
        self.r_delete(rs, y)?;
        self.s_release(ss, &x, lsn)
    }

    /// Rules 10 + 11: update t^y.
    fn rule10_11_update(
        &mut self,
        rs: &mut WriteSession<'_>,
        ss: &mut WriteSession<'_>,
        y: &Key,
        new: &[(usize, Value)],
        lsn: Lsn,
    ) -> DbResult<()> {
        let Some((rlsn, x_pre)) = self.r_get_in(rs, y) else {
            return Ok(());
        };
        if rlsn >= lsn {
            return Ok(()); // rule 10's LSN gate — S side is skipped too
        }
        // Rule 10: apply the R half (possibly moving the key).
        self.r_update(rs, y, new, lsn)?;

        // Rule 11: the S half, gated on rule 10 having applied.
        let split_changed = new.iter().any(|(i, _)| *i == self.split_t);
        let dep_updates: Vec<(usize, Value)> = new
            .iter()
            .filter(|(i, _)| *i != self.split_t && self.s_cols.contains(i))
            .map(|(i, v)| {
                let s_pos = self.s_cols.iter().position(|c| c == i).expect("filtered"); // morph-lint: allow(panic, position over the predicate the filter just passed)
                (s_pos, v.clone())
            })
            .collect();

        if split_changed {
            let z = new
                .iter()
                .find(|(i, _)| *i == self.split_t)
                .map(|(_, v)| v.clone())
                .expect("split_changed"); // morph-lint: allow(panic, branch is guarded by split_changed, so the column is in new)
                                          // Treated as delete of s^x followed by insert of s^z
                                          // (rule 11). Read s^x's image *before* releasing it.
            let s_old = ss.get(&self.s_key(&x_pre));
            let mut s_new = match &s_old {
                Some(row) => row.values.clone(),
                None => vec![Value::Null; self.s_cols.len()],
            };
            s_new[0] = z.clone();
            for (s_pos, v) in &dep_updates {
                s_new[*s_pos] = v.clone();
            }
            self.s_release(ss, &x_pre, lsn)?;
            self.s_absorb(ss, &z, &s_new, lsn)?;
            return Ok(());
        }

        if dep_updates.is_empty() {
            return Ok(()); // update touched neither split nor dependents
        }
        // Non-split S update: apply values only if the S-record's own
        // LSN is older (prevents regressing a fresher shared record).
        let key = self.s_key(&x_pre);
        if self.check {
            self.cc.note_touch(&x_pre);
        }
        let all_deps = dep_updates.len() == self.s_cols.len() - 1;
        let flagged = ss.with_row_mut(&key, |row| {
            if row.lsn >= lsn {
                return None;
            }
            for (s_pos, v) in &dep_updates {
                row.values[*s_pos] = v.clone();
            }
            row.lsn = lsn;
            // §5.3 flag transitions.
            if row.counter > 1 {
                row.flag = ConsistencyFlag::Unknown;
                Some(true)
            } else if all_deps {
                row.flag = ConsistencyFlag::Consistent;
                Some(false)
            } else {
                None
            }
        });
        if self.check {
            match flagged {
                Some(Some(true)) => self.cc.mark_unknown(key),
                Some(Some(false)) => self.cc.mark_consistent(&key),
                _ => {}
            }
        }
        Ok(())
    }

    // --- initial population (§3.2) --------------------------------------------

    /// Fuzzy-scan the source and build the initial images. Returns
    /// `(rows_read, rows_written)`.
    pub fn populate(&mut self, chunk_size: usize) -> DbResult<(usize, usize)> {
        self.populate_throttled(chunk_size, &mut Throttle::new(1.0))
    }

    /// Like [`SplitMapping::populate`] but paying the given throttle
    /// per fuzzy-scan chunk (fine-grained low-priority population).
    /// Each chunk is written under one R-side and one S write session.
    pub fn populate_throttled(
        &mut self,
        chunk_size: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        self.populate_with(None, chunk_size, throttle)
    }

    /// [`SplitMapping::populate_throttled`] with the database handle
    /// threaded through so the fuzzy scan reports per-chunk crash
    /// points (crash simulation).
    pub(crate) fn populate_with(
        &mut self,
        db: Option<&Database>,
        chunk_size: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        let t = Arc::clone(&self.t);
        let r_side = Arc::clone(self.r_side());
        let s = Arc::clone(&self.s);
        let mut written = 0usize;
        let read = scan_source_throttled(db, &t, chunk_size, throttle, |chunk| {
            let mut rs = r_side.write_session();
            let mut ss = s.write_session();
            for (_, row) in chunk {
                let before = ss.len();
                self.r_insert(&mut rs, &row.values, row.lsn)?;
                let x = self.split_val(&row.values);
                let s_vals = self.s_part(&row.values);
                self.s_absorb(&mut ss, &x, &s_vals, row.lsn)?;
                written += 1 + (ss.len() - before);
            }
            Ok(())
        })?;
        Ok((read, written))
    }

    // --- consistency checker (§5.3) ---------------------------------------------

    /// Run one checker round: pick a U-record, log `CcBegin`, read its
    /// contributors without transaction locks, and log `CcOk` if they
    /// agree. The propagator completes the certification when the
    /// records come back through [`SplitMapping::on_control`].
    pub fn run_cc_round(&mut self, log: &LogManager) -> DbResult<()> {
        if !self.check || self.cc.pending.is_some() {
            return Ok(());
        }
        let Some(key) = self.cc.next_candidate() else {
            return Ok(());
        };
        let begin_lsn = log.append(LogRecord::CcBegin {
            split_key: key.clone(),
        });
        self.cc.pending = Some(PendingCc {
            key: key.clone(),
            begin_lsn,
            touched: false,
        });
        self.cc.rounds += 1;

        let idx = self.idx_split.expect("checking requires the split index"); // morph-lint: allow(panic, consistency checking is only enabled with the split index installed)
        let contributors = self.t.index_rows(idx, &key);
        if contributors.is_empty() {
            // No contributors (any more): leave it to propagation; the
            // record will be deleted when the counter drains.
            self.cc.pending = None;
            return Ok(());
        }
        let image = self.s_part(&contributors[0].1.values);
        let agree = contributors
            .iter()
            .all(|(_, row)| self.s_part(&row.values) == image);
        if agree {
            log.append(LogRecord::CcOk {
                split_key: key,
                image,
            });
        } else {
            // Contradiction in the source data (paper Example 1): the
            // transformation cannot certify this record.
            self.cc.pending = None;
            self.cc.inconsistent.insert(key);
        }
        Ok(())
    }

    /// Handle checker records coming back through the log stream.
    pub fn on_control(&mut self, _lsn: Lsn, rec: &LogRecord) -> DbResult<()> {
        if !self.check {
            return Ok(());
        }
        match rec {
            LogRecord::CcBegin { split_key }
                // Normally already pending (we logged it ourselves); on
                // restart-style replays, re-arm.
                if self.cc.pending.is_none() => {
                    self.cc.pending = Some(PendingCc {
                        key: split_key.clone(),
                        begin_lsn: _lsn,
                        touched: false,
                    });
                }
            LogRecord::CcOk { split_key, image } => {
                let Some(p) = self.cc.pending.take() else {
                    return Ok(());
                };
                if &p.key != split_key {
                    return Ok(());
                }
                if p.touched {
                    return Ok(()); // voided; retry in a later round
                }
                let certified = self.s.with_row_mut(split_key, |row| {
                    row.values = image.clone();
                    row.flag = ConsistencyFlag::Consistent;
                });
                if certified.is_some() {
                    self.cc.mark_consistent(split_key);
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// May synchronization start (§5.3: "all records in S should have a
    /// C-flag before synchronization is started")?
    pub fn readiness(&self) -> Readiness {
        self.cc.readiness(self.check)
    }

    // --- lock transfer ------------------------------------------------------------

    /// Target records affected by a lock on source record `key` — used
    /// by the synchronization step's lock transfer. In rename-in-place
    /// mode T keeps its table id through the rename, so R-side locks
    /// carry over by identity and only the S side needs transferring.
    ///
    /// The split value is read from the *target* side (R, or the P
    /// bookkeeping table), never from the source: the caller holds the
    /// source's exclusive latch during synchronization, and the final
    /// drain has just made the targets consistent with it.
    pub fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)> {
        if table != self.t.id() {
            return Vec::new();
        }
        let mut out = Vec::new();
        if let Some(r) = &self.r {
            out.push((r.id(), key.clone()));
        }
        if let Some((_, split_val)) = self.r_get(key) {
            out.push((self.s.id(), self.s_key(&split_val)));
        }
        out
    }

    /// Immutable data needed to mirror source locks from arbitrary
    /// threads (non-blocking-commit interceptor).
    pub fn mirror_map(&self) -> crate::sync::MirrorMap {
        crate::sync::MirrorMap::Split {
            t: Arc::clone(&self.t),
            r_id: self.r.as_ref().map(|r| r.id()),
            s_id: self.s.id(),
            split_t: self.split_t,
            t_pk: self.t_pk.clone(),
        }
    }
}

/// A deferred S-side effect recorded during phase A of the sharded
/// apply. Unlike R, the S table is keyed by split value, not by
/// subject, so records that are disjoint by subject can still collide
/// on a shared S-record. Phase A applies the R half per subject lane
/// and records what the S half *would* do; phase B re-buckets the
/// effects by split value and replays them in LSN order, which per
/// S-key is exactly the serial order.
enum SEffect {
    /// Rule 8's S half: one new contribution of `s_vals` under `x`.
    Absorb { x: Value, s_vals: Vec<Value> },
    /// Rule 9's S half: one contribution under `x` goes away.
    Release { x: Value },
    /// Rule 9's absent-subject case: no counter change, but the shared
    /// S-record's LSN watermark must still advance to the delete's LSN
    /// (matches the serial path's `s_stamp`).
    Stamp { x: Value },
    /// Rule 11's non-split branch: dependent-column updates, LSN-gated
    /// against the S-record itself.
    DepUpdate {
        x: Value,
        dep_updates: Vec<(usize, Value)>,
        all_deps: bool,
    },
}

impl SEffect {
    fn split_value(&self) -> &Value {
        match self {
            SEffect::Absorb { x, .. }
            | SEffect::Release { x }
            | SEffect::Stamp { x }
            | SEffect::DepUpdate { x, .. } => x,
        }
    }
}

// Worker-local digest of one worker's S contributions during parallel
// population; merged serially into the real S rows afterwards.
struct SContrib {
    /// Smallest T key among this worker's contributors — serial
    /// population takes the S image from the globally smallest one.
    first_key: Key,
    s_vals: Vec<Value>,
    count: u32,
    max_lsn: Lsn,
    /// All contributions seen by this worker carried equal S values.
    uniform: bool,
}

impl SplitMapping {
    /// Phase A of the sharded apply: the R half of one record, applied
    /// under a masked R-side session, with its S half recorded as a
    /// deferred [`SEffect`]. Only called for lane-classified records
    /// (no split-column change, no key move) with checking off; both
    /// are enforced by [`SplitMapping::apply_batch_sharded_impl`].
    fn r_apply_collect(
        &self,
        rs: &mut WriteSession<'_>,
        lsn: Lsn,
        op: &LogOp,
        effects: &mut Vec<(Lsn, SEffect)>,
    ) -> DbResult<()> {
        match op {
            LogOp::Insert { row, .. } => {
                let y = Key::project(row, &self.t_pk);
                if self.r_get_in(rs, &y).is_some() {
                    return Ok(()); // already reflected (Theorem 1)
                }
                self.r_insert(rs, row, lsn)?;
                effects.push((
                    lsn,
                    SEffect::Absorb {
                        x: self.split_val(row),
                        s_vals: self.s_part(row),
                    },
                ));
                Ok(())
            }
            LogOp::Delete { key, old, .. } => {
                let Some((rlsn, x)) = self.r_get_in(rs, key) else {
                    // Absent subject: defer the watermark stamp so the
                    // shared S-record still advances to this LSN
                    // (mirrors the serial path's `s_stamp`).
                    if let Some(x) = old.get(self.split_t).cloned() {
                        effects.push((lsn, SEffect::Stamp { x }));
                    }
                    return Ok(());
                };
                if rlsn >= lsn {
                    return Ok(());
                }
                self.r_delete(rs, key)?;
                effects.push((lsn, SEffect::Release { x }));
                Ok(())
            }
            LogOp::Update { key, new, .. } => {
                debug_assert!(
                    !new.iter().any(|(i, _)| *i == self.split_t),
                    "split-column updates are barriers"
                );
                let Some((rlsn, x_pre)) = self.r_get_in(rs, key) else {
                    return Ok(());
                };
                if rlsn >= lsn {
                    return Ok(()); // rule 10's LSN gate — S side skipped too
                }
                self.r_update(rs, key, new, lsn)?;
                let dep_updates: Vec<(usize, Value)> = new
                    .iter()
                    .filter(|(i, _)| *i != self.split_t && self.s_cols.contains(i))
                    .map(|(i, v)| {
                        let s_pos = self.s_cols.iter().position(|c| c == i).expect("filtered"); // morph-lint: allow(panic, position over the predicate the filter just passed)
                        (s_pos, v.clone())
                    })
                    .collect();
                if dep_updates.is_empty() {
                    return Ok(());
                }
                let all_deps = dep_updates.len() == self.s_cols.len() - 1;
                effects.push((
                    lsn,
                    SEffect::DepUpdate {
                        x: x_pre,
                        dep_updates,
                        all_deps,
                    },
                ));
                Ok(())
            }
        }
    }

    /// Phase B of the sharded apply: replay one deferred S effect under
    /// a masked S session. Mirrors [`SplitMapping::s_absorb`],
    /// [`SplitMapping::s_release`] and rule 11's dependent-update
    /// branch, minus the checker bookkeeping (the sharded path falls
    /// back to serial when checking is on).
    fn s_apply_effect(&self, ss: &mut WriteSession<'_>, lsn: Lsn, eff: &SEffect) -> DbResult<()> {
        match eff {
            SEffect::Absorb { x, s_vals } => {
                let key = self.s_key(x);
                let existed = ss.with_row_mut(&key, |row| {
                    row.counter += 1;
                    if row.lsn < lsn {
                        row.lsn = lsn;
                    }
                    if row.values != *s_vals {
                        row.flag = ConsistencyFlag::Unknown;
                    }
                });
                if existed.is_none() {
                    ss.insert_row(Row {
                        values: s_vals.clone(),
                        lsn,
                        counter: 1,
                        flag: ConsistencyFlag::Consistent,
                        presence: Default::default(),
                        writer: morph_storage::SYSTEM,
                    })?;
                }
                Ok(())
            }
            SEffect::Release { x } => {
                let key = self.s_key(x);
                let drop_row = ss.with_row_mut(&key, |row| {
                    row.counter = row.counter.saturating_sub(1);
                    if row.lsn < lsn {
                        row.lsn = lsn;
                    }
                    row.counter == 0
                });
                if drop_row == Some(true) {
                    let _ = ss.delete(&key);
                }
                Ok(())
            }
            SEffect::Stamp { x } => {
                let key = self.s_key(x);
                let _ = ss.with_row_mut(&key, |row| {
                    if row.lsn < lsn {
                        row.lsn = lsn;
                    }
                });
                Ok(())
            }
            SEffect::DepUpdate {
                x,
                dep_updates,
                all_deps,
            } => {
                let key = self.s_key(x);
                ss.with_row_mut(&key, |row| {
                    if row.lsn >= lsn {
                        return;
                    }
                    for (s_pos, v) in dep_updates {
                        row.values[*s_pos] = v.clone();
                    }
                    row.lsn = lsn;
                    if row.counter > 1 {
                        row.flag = ConsistencyFlag::Unknown;
                    } else if *all_deps {
                        row.flag = ConsistencyFlag::Consistent;
                    }
                });
                Ok(())
            }
        }
    }

    /// Two-phase sharded batch apply. Records are lane-classified by
    /// the subject's R-side shard; phase A applies the R halves per
    /// lane concurrently and collects deferred S effects, phase B
    /// re-buckets the effects by split-value shard, sorts each bucket
    /// by LSN, and replays them concurrently. Each phase is one pool
    /// epoch: the epoch fence between them guarantees every bucket is
    /// complete before any S half is applied, and a failed phase-A
    /// lane aborts the segment at the fence (its bucket contributions
    /// are missing, so applying the rest would diverge). Split-column
    /// changes and key moves are barriers (their S half reads the
    /// shared record's current image, which is order-sensitive across
    /// subjects), and checking mode falls back to the serial path
    /// entirely (the checker's touch tracking assumes serial
    /// application).
    fn apply_batch_sharded_impl(
        &mut self,
        batch: &[(Lsn, &LogOp)],
        pool: &ApplyPool,
        scratch: &mut LaneScratch,
    ) -> DbResult<()> {
        let stride = shard_stride(pool.width().max(1));
        if stride <= 1 || self.check {
            return <Self as TransformOperator>::apply_batch(self, batch);
        }
        let t_id = self.t.id();
        let r_side = Arc::clone(self.r_side());
        let s = Arc::clone(&self.s);
        // The classifier copies these out instead of borrowing `self`:
        // the serial arm below needs `&mut self` (rule 8–11 replay),
        // and the two closures coexist.
        let t_pk = self.t_pk.clone();
        let split_t = self.split_t;
        drive_segments(
            batch,
            stride,
            scratch,
            |op| {
                if op.table() != t_id {
                    return LaneTag::Barrier;
                }
                match op {
                    LogOp::Insert { row, .. } => {
                        let y = Key::project(row, &t_pk);
                        LaneTag::Class(r_side.shard_of_component(y.values()))
                    }
                    LogOp::Delete { key, .. } => {
                        LaneTag::Class(r_side.shard_of_component(key.values()))
                    }
                    LogOp::Update { key, new, .. } => {
                        if new.iter().any(|(i, _)| *i == split_t || t_pk.contains(i)) {
                            LaneTag::Barrier
                        } else {
                            LaneTag::Class(r_side.shard_of_component(key.values()))
                        }
                    }
                }
            },
            |seg| match seg {
                SegmentRun::Serial(records) => {
                    let mut rs = r_side.write_session();
                    let mut ss = s.write_session();
                    for &(lsn, op) in records {
                        self.apply_in(&mut rs, &mut ss, lsn, op)?;
                    }
                    Ok(())
                }
                SegmentRun::Parallel(slice, lane_runs) => {
                    let this = &*self;
                    let r_side = &r_side;
                    let s = &s;
                    // Phase A (epoch 1): each subject lane applies its
                    // R halves under a masked session and scatters its
                    // deferred S effects into per-S-shard buckets.
                    let buckets: Vec<Mutex<Vec<(Lsn, SEffect)>>> =
                        (0..stride).map(|_| Mutex::new(Vec::new())).collect();
                    {
                        let buckets = &buckets;
                        let tasks: Vec<EpochTask> = lane_runs
                            .iter()
                            .enumerate()
                            .filter(|(_, run)| !run.is_empty())
                            .map(|(w, run)| {
                                Box::new(move || {
                                    let mut rs = r_side.write_session_masked(stride, w);
                                    let mut effects = Vec::new();
                                    for &ri in run {
                                        let (lsn, op) = slice[ri as usize];
                                        this.r_apply_collect(&mut rs, lsn, op, &mut effects)?;
                                    }
                                    drop(rs);
                                    let mut per: Vec<Vec<(Lsn, SEffect)>> =
                                        (0..stride).map(|_| Vec::new()).collect();
                                    for (lsn, eff) in effects {
                                        let lane = s.shard_of_component(std::slice::from_ref(
                                            eff.split_value(),
                                        )) % stride;
                                        per[lane].push((lsn, eff));
                                    }
                                    for (v, chunk) in per.into_iter().enumerate() {
                                        if !chunk.is_empty() {
                                            // morph-lint: allow(panic, std mutex poison implies a lane already panicked; that panic is re-raised at the fence)
                                            buckets[v].lock().unwrap().extend(chunk);
                                        }
                                    }
                                    Ok(())
                                }) as EpochTask
                            })
                            .collect();
                        pool.run_epoch(tasks)?;
                    }

                    // Phase B (epoch 2): each split-value shard sorts
                    // its bucket by LSN — restoring the serial order
                    // for every S-key it contains — and replays it
                    // under a masked S session.
                    let mut owned: Vec<Vec<(Lsn, SEffect)>> = buckets
                        .into_iter()
                        // morph-lint: allow(panic, std mutex poison implies a lane panicked; that panic was re-raised at the phase-A fence)
                        .map(|b| b.into_inner().unwrap())
                        .collect();
                    let tasks: Vec<EpochTask> = owned
                        .iter_mut()
                        .enumerate()
                        .filter(|(_, bucket)| !bucket.is_empty())
                        .map(|(w, bucket)| {
                            Box::new(move || {
                                bucket.sort_by_key(|&(lsn, _)| lsn);
                                let mut ss = s.write_session_masked(stride, w);
                                for (lsn, eff) in bucket.iter() {
                                    this.s_apply_effect(&mut ss, *lsn, eff)?;
                                }
                                Ok(())
                            }) as EpochTask
                        })
                        .collect();
                    pool.run_epoch(tasks)
                }
            },
        )
    }

    /// Parallel initial population: partitioned fuzzy scan with masked
    /// R-side writes per worker, plus worker-local S digests merged
    /// serially afterwards (S rows are shared across subjects, so they
    /// cannot be written lane-locally). Checking mode falls back to the
    /// serial path so the checker sees every touch.
    pub(crate) fn populate_parallel_with(
        &mut self,
        db: Option<&Database>,
        chunk_size: usize,
        workers: usize,
        priority: f64,
    ) -> DbResult<(usize, usize)> {
        let workers = shard_stride(workers.max(1));
        if workers <= 1 || self.check {
            return self.populate_with(db, chunk_size, &mut Throttle::new(priority));
        }
        let t = Arc::clone(&self.t);
        let r_side = Arc::clone(self.r_side());
        let s = Arc::clone(&self.s);
        let this = &*self;
        let locals: Vec<Mutex<HashMap<Value, SContrib>>> =
            (0..workers).map(|_| Mutex::new(HashMap::new())).collect();
        let sink = |w: usize, chunk: Vec<(Key, Row)>| {
            let mut rs = r_side.write_session_masked(workers, w);
            let mut local = locals[w].lock().expect("populate digest poisoned"); // morph-lint: allow(panic, std mutex poison implies a lane already panicked; that panic is re-raised at the join)
            for (key, row) in chunk {
                this.r_insert(&mut rs, &row.values, row.lsn)?;
                let x = this.split_val(&row.values);
                let s_vals = this.s_part(&row.values);
                match local.entry(x) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let c = e.get_mut();
                        c.count += 1;
                        if row.lsn > c.max_lsn {
                            c.max_lsn = row.lsn;
                        }
                        if s_vals != c.s_vals {
                            c.uniform = false;
                        }
                        // The partitioned scan is key-ordered per
                        // worker, so the first-seen key stays minimal.
                        debug_assert!(c.first_key <= key);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(SContrib {
                            first_key: key,
                            s_vals,
                            count: 1,
                            max_lsn: row.lsn,
                            uniform: true,
                        });
                    }
                }
            }
            Ok(())
        };
        let read = scan_source_partitioned(db, &t, chunk_size, workers, priority, &sink)?;

        // Merge the worker digests: the canonical S image is the one
        // from the globally smallest contributor key (= what the
        // serial key-ordered scan would have absorbed first).
        let mut merged: BTreeMap<Value, SContrib> = BTreeMap::new();
        for local in locals {
            // morph-lint: allow(panic, into_inner poison implies a populate lane panicked; that panic was re-raised at the join)
            for (x, c) in local.into_inner().expect("populate digest poisoned") {
                match merged.entry(x) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let m = e.get_mut();
                        m.count += c.count;
                        if c.max_lsn > m.max_lsn {
                            m.max_lsn = c.max_lsn;
                        }
                        if !c.uniform || c.s_vals != m.s_vals {
                            m.uniform = false;
                        }
                        if c.first_key < m.first_key {
                            m.first_key = c.first_key;
                            m.s_vals = c.s_vals;
                        }
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(c);
                    }
                }
            }
        }
        let s_rows = merged.len();
        let mut ss = s.write_session();
        for (_, c) in merged {
            ss.insert_row(Row {
                values: c.s_vals,
                lsn: c.max_lsn,
                counter: c.count,
                flag: if c.uniform {
                    ConsistencyFlag::Consistent
                } else {
                    ConsistencyFlag::Unknown
                },
                writer: morph_storage::SYSTEM,
                presence: Default::default(),
            })?;
        }
        Ok((read, read + s_rows))
    }
}

impl TransformOperator for SplitMapping {
    fn source_ids(&self) -> Vec<TableId> {
        SplitMapping::source_ids(self)
    }

    fn apply(&mut self, lsn: Lsn, op: &LogOp) -> DbResult<()> {
        SplitMapping::apply(self, lsn, op)
    }

    fn apply_batch(&mut self, batch: &[(Lsn, &LogOp)]) -> DbResult<()> {
        let r_side = Arc::clone(self.r_side());
        let s = Arc::clone(&self.s);
        let mut rs = r_side.write_session();
        let mut ss = s.write_session();
        for &(lsn, op) in batch {
            self.apply_in(&mut rs, &mut ss, lsn, op)?;
        }
        Ok(())
    }

    fn apply_batch_sharded(
        &mut self,
        batch: &[(Lsn, &LogOp)],
        pool: &ApplyPool,
        scratch: &mut LaneScratch,
    ) -> DbResult<()> {
        self.apply_batch_sharded_impl(batch, pool, scratch)
    }

    fn coalesce_policy(&self) -> CoalescePolicy {
        if self.check {
            // §5.3: the checker must see every touch of an S-record to
            // void in-flight certification rounds.
            CoalescePolicy::None
        } else {
            CoalescePolicy::Full
        }
    }

    /// S-relevant columns feed shared S-records: rule 11 builds a moved
    /// row's S-image from the *current* shared record, so a transient
    /// value another row's move could observe must not be dropped. Only
    /// pure R-part updates coalesce.
    fn coalesce_barrier_cols(&self, table: TableId) -> Vec<usize> {
        if table == self.t.id() {
            self.s_cols.clone()
        } else {
            Vec::new()
        }
    }

    fn populate_throttled(
        &mut self,
        db: &Database,
        chunk: usize,
        throttle: &mut Throttle,
    ) -> DbResult<(usize, usize)> {
        SplitMapping::populate_with(self, Some(db), chunk, throttle)
    }

    fn populate_parallel(
        &mut self,
        db: &Database,
        chunk: usize,
        workers: usize,
        priority: f64,
    ) -> DbResult<(usize, usize)> {
        SplitMapping::populate_parallel_with(self, Some(db), chunk, workers, priority)
    }

    fn target_keys_for(&self, table: TableId, key: &Key) -> Vec<(TableId, Key)> {
        SplitMapping::target_keys_for(self, table, key)
    }

    fn mirror_map(&self) -> crate::sync::MirrorMap {
        SplitMapping::mirror_map(self)
    }

    fn readiness(&self) -> Readiness {
        SplitMapping::readiness(self)
    }

    fn maintenance(&mut self, db: &Database) -> DbResult<()> {
        self.run_cc_round(db.log())
    }

    fn on_control(&mut self, lsn: Lsn, rec: &LogRecord) -> DbResult<()> {
        SplitMapping::on_control(self, lsn, rec)
    }

    fn cc_rounds(&self) -> usize {
        self.cc.rounds
    }

    fn renames_source(&self) -> bool {
        self.mode == SplitMode::RenameInPlace
    }

    fn publish(&self, db: &Database) -> DbResult<()> {
        // Rename-in-place completion: give T its R name. Dependent
        // columns are projected away in `finalize`.
        match self.rename_target() {
            Some(target) => db.catalog().rename(&self.t.name(), &target),
            None => Ok(()),
        }
    }

    fn finalize(&self, _db: &Database) -> DbResult<()> {
        if self.mode == SplitMode::RenameInPlace {
            // Project the dependent columns away now that no old
            // transaction can touch them (briefly latches R).
            self.t.project_columns(&self.r_cols)?;
        }
        Ok(())
    }
}

/// Sorted R rows plus (S row, reference counter) pairs — what a split
/// should produce from a consistent source image.
pub type ReferenceSplit = (Vec<Vec<Value>>, Vec<(Vec<Value>, u32)>);

/// Reference split — the oracle for tests. Panics-free: returns an
/// error if the source data violates the functional dependency (which
/// consistent-mode tests treat as a bug and CC tests expect).
pub fn reference_split(m: &SplitMapping, t_rows: &[Vec<Value>]) -> Result<ReferenceSplit, String> {
    let mut r_rows: Vec<Vec<Value>> = t_rows.iter().map(|t| m.r_part(t)).collect();
    r_rows.sort();

    let mut s_map: std::collections::BTreeMap<Value, (Vec<Value>, u32)> =
        std::collections::BTreeMap::new();
    for t in t_rows {
        let x = t[m.split_t].clone();
        let s_vals = m.s_part(t);
        match s_map.get_mut(&x) {
            Some((existing, n)) => {
                if *existing != s_vals {
                    return Err(format!(
                        "functional dependency violated at {x:?}: {existing:?} vs {s_vals:?}"
                    ));
                }
                *n += 1;
            }
            None => {
                s_map.insert(x, (s_vals, 1));
            }
        }
    }
    Ok((r_rows, s_map.into_values().collect()))
}

/// Compare the split targets against the reference split of the
/// *current* source contents (consistent-data mode).
pub fn verify_against_reference(m: &SplitMapping) -> Result<(), String> {
    let t_rows: Vec<Vec<Value>> = m.t.snapshot().into_iter().map(|(_, r)| r.values).collect();
    let (expect_r, expect_s) = reference_split(m, &t_rows)?;

    if let Some(r) = &m.r {
        let mut got_r: Vec<Vec<Value>> = r
            .snapshot()
            .into_iter()
            .map(|(_, row)| row.values)
            .collect();
        got_r.sort();
        if got_r != expect_r {
            return Err(format!(
                "R mismatch:\nexpected {expect_r:?}\ngot      {got_r:?}"
            ));
        }
    } else if let Some(p) = &m.p {
        // Rename-in-place: P must track exactly the source keys.
        if p.len() != t_rows.len() {
            return Err(format!(
                "P row count {} does not match source {}",
                p.len(),
                t_rows.len()
            ));
        }
    }

    let got_s: Vec<(Vec<Value>, u32)> =
        m.s.snapshot()
            .into_iter()
            .map(|(_, row)| (row.values, row.counter))
            .collect();
    if got_s != expect_s {
        return Err(format!(
            "S mismatch:\nexpected {expect_s:?}\ngot      {got_s:?}"
        ));
    }
    Ok(())
}

/// The paper's Figure 3 / Example 1 source schema: customers with a
/// postal-code → city functional dependency.
pub fn example1_schema() -> Schema {
    use morph_common::ColumnType;
    Schema::builder()
        .column("customer_id", ColumnType::Int)
        .nullable("name", ColumnType::Str)
        .nullable("postal_code", ColumnType::Str)
        .nullable("city", ColumnType::Str)
        .primary_key(&["customer_id"])
        .build()
        .expect("static schema") // morph-lint: allow(panic, static schema literal; the builder cannot fail on compile-time constants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::ColumnType;

    fn setup_mode(mode: SplitMode, check: bool) -> (Database, SplitMapping) {
        let db = Database::new();
        let ts = Schema::builder()
            .column("a", ColumnType::Int)
            .nullable("b", ColumnType::Str)
            .nullable("c", ColumnType::Str)
            .nullable("d", ColumnType::Str)
            .primary_key(&["a"])
            .build()
            .unwrap();
        db.create_table("T", ts).unwrap();
        let mut spec = SplitSpec::new("T", "R", "S", &["a", "b", "c"], "c", &["d"]);
        spec.mode = mode;
        spec.check_consistency = check;
        let m = SplitMapping::prepare(&db, &spec).unwrap();
        (db, m)
    }

    fn setup() -> (Database, SplitMapping) {
        setup_mode(SplitMode::SeparateR, false)
    }

    fn t_row(a: i64, b: &str, c: &str, d: &str) -> Vec<Value> {
        vec![Value::Int(a), Value::str(b), Value::str(c), Value::str(d)]
    }

    /// Test driver: applies ops to the source table and mirrors them
    /// through the rules.
    struct Driver<'a> {
        m: &'a mut SplitMapping,
        lsn: u64,
    }

    impl<'a> Driver<'a> {
        fn new(m: &'a mut SplitMapping) -> Self {
            Driver { m, lsn: 0 }
        }
        fn next(&mut self) -> Lsn {
            self.lsn += 1;
            Lsn(self.lsn)
        }
        fn insert(&mut self, row: Vec<Value>) {
            let lsn = self.next();
            self.m.t.insert(row.clone(), lsn).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Insert {
                        table: self.m.t.id(),
                        row,
                    },
                )
                .unwrap();
        }
        fn delete(&mut self, key: Key) {
            let lsn = self.next();
            let old = self.m.t.delete(&key).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Delete {
                        table: self.m.t.id(),
                        key,
                        old: old.values,
                    },
                )
                .unwrap();
        }
        fn update(&mut self, key: Key, cols: Vec<(usize, Value)>) {
            let lsn = self.next();
            let out = self.m.t.update(&key, &cols, lsn).unwrap();
            self.m
                .apply(
                    lsn,
                    &LogOp::Update {
                        table: self.m.t.id(),
                        key,
                        old: out.old_cols.clone(),
                        new: cols,
                    },
                )
                .unwrap();
        }
    }

    fn verify(m: &SplitMapping) {
        if let Err(e) = verify_against_reference(m) {
            panic!("split targets diverged: {e}");
        }
    }

    #[test]
    fn figure3_example() {
        // Figure 3: T(a,b,c,d) splits into R(a,b,c) and S(c,d); rows
        // sharing c share one S record.
        let (_db, mut m) = setup();
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "c1", "d1"));
        d.insert(t_row(2, "b", "c1", "d1"));
        d.insert(t_row(5, "e", "c2", "d2"));
        verify(&m);
        assert_eq!(m.r_table().unwrap().len(), 3);
        assert_eq!(m.s_table().len(), 2);
        let s1 = m.s_table().get(&Key::single("c1")).unwrap();
        assert_eq!(s1.counter, 2);
    }

    #[test]
    fn rule8_idempotent_and_counter_exact() {
        let (_db, mut m) = setup();
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "c1", "d1"));
        // Replaying the same insert (fuzzy overlap) changes nothing.
        m.apply(
            Lsn(1),
            &LogOp::Insert {
                table: m.t.id(),
                row: t_row(1, "a", "c1", "d1"),
            },
        )
        .unwrap();
        verify(&m);
        assert_eq!(m.s_table().get(&Key::single("c1")).unwrap().counter, 1);
    }

    #[test]
    fn rule9_counter_drains_and_row_disappears() {
        let (_db, mut m) = setup();
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "c1", "d1"));
        d.insert(t_row(2, "b", "c1", "d1"));
        d.delete(Key::single(1));
        verify(d.m);
        assert_eq!(d.m.s_table().get(&Key::single("c1")).unwrap().counter, 1);
        d.delete(Key::single(2));
        verify(d.m);
        assert!(d.m.s_table().is_empty());
        let _ = d;
        // Stale delete replay ignored (r gone).
        m.apply(
            Lsn(1),
            &LogOp::Delete {
                table: m.t.id(),
                key: Key::single(1),
                old: vec![],
            },
        )
        .unwrap();
        verify(&m);
    }

    #[test]
    fn rule9_lsn_gate_ignores_stale_delete() {
        let (_db, mut m) = setup();
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "c1", "d1")); // lsn 1
        let _ = d;
        // A delete with an older LSN than the row is ignored (the
        // initial image was fresher than this log record).
        m.apply(
            Lsn(0),
            &LogOp::Delete {
                table: m.t.id(),
                key: Key::single(1),
                old: vec![],
            },
        )
        .unwrap();
        assert_eq!(m.r_table().unwrap().len(), 1);
    }

    #[test]
    fn rule10_r_part_update_including_pkey_move() {
        let (_db, mut m) = setup();
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "c1", "d1"));
        d.update(Key::single(1), vec![(1, Value::str("a2"))]);
        verify(d.m);
        d.update(Key::single(1), vec![(0, Value::Int(9))]);
        verify(d.m);
        assert!(d.m.r_table().unwrap().get(&Key::single(9)).is_some());
    }

    #[test]
    fn rule11_split_attribute_move() {
        let (_db, mut m) = setup();
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "c1", "d1"));
        d.insert(t_row(2, "b", "c1", "d1"));
        // Move row 1 to a fresh split value, updating the dependent too
        // (a consistent transaction would).
        d.update(
            Key::single(1),
            vec![(2, Value::str("c9")), (3, Value::str("d9"))],
        );
        verify(d.m);
        assert_eq!(d.m.s_table().len(), 2);
        assert_eq!(d.m.s_table().get(&Key::single("c1")).unwrap().counter, 1);
        assert_eq!(d.m.s_table().get(&Key::single("c9")).unwrap().counter, 1);
        // Move row 2 onto c9 as well: counter merges; dependents must
        // match for consistency.
        d.update(
            Key::single(2),
            vec![(2, Value::str("c9")), (3, Value::str("d9"))],
        );
        verify(d.m);
        assert_eq!(d.m.s_table().get(&Key::single("c9")).unwrap().counter, 2);
    }

    #[test]
    fn rule11_dependent_update_fans_to_shared_record() {
        let (_db, mut m) = setup();
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "c1", "d1"));
        d.insert(t_row(2, "b", "c1", "d1"));
        // Consistent DBMS: the dependent changes in both rows (two ops).
        d.update(Key::single(1), vec![(3, Value::str("d2"))]);
        d.update(Key::single(2), vec![(3, Value::str("d2"))]);
        verify(&m);
        assert_eq!(
            m.s_table().get(&Key::single("c1")).unwrap().values[1],
            Value::str("d2")
        );
    }

    #[test]
    fn rule11_s_lsn_gate_prevents_value_regression() {
        let (_db, mut m) = setup();
        // Initial image is fresh (lsn 10); an older logged dep-update
        // (lsn 5) must update the R LSN but not regress S values.
        m.t.insert(t_row(1, "a", "c1", "dNEW"), Lsn(10)).unwrap();
        let (read, _) = m.populate(16).unwrap();
        assert_eq!(read, 1);
        // Stale log record: r copy in image has lsn 10 ≥ 5 → fully
        // ignored by the rule-10 gate.
        m.apply(
            Lsn(5),
            &LogOp::Update {
                table: m.t.id(),
                key: Key::single(1),
                old: vec![(3, Value::str("dOLD"))],
                new: vec![(3, Value::str("dMID"))],
            },
        )
        .unwrap();
        assert_eq!(
            m.s_table().get(&Key::single("c1")).unwrap().values[1],
            Value::str("dNEW")
        );
        verify(&m);
    }

    #[test]
    fn populate_from_fuzzy_scan_builds_counters() {
        let (_db, mut m) = setup();
        for i in 0..10 {
            m.t.insert(
                t_row(i, "b", if i % 2 == 0 { "even" } else { "odd" }, "dep"),
                Lsn(i as u64 + 1),
            )
            .unwrap();
        }
        let (read, written) = m.populate(3).unwrap();
        assert_eq!(read, 10);
        assert!(written >= 10);
        verify(&m);
        assert_eq!(m.s_table().get(&Key::single("even")).unwrap().counter, 5);
    }

    #[test]
    fn rename_in_place_mode_tracks_p() {
        let (_db, mut m) = setup_mode(SplitMode::RenameInPlace, false);
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "c1", "d1"));
        d.insert(t_row(2, "b", "c1", "d1"));
        d.update(
            Key::single(1),
            vec![(2, Value::str("c2")), (3, Value::str("d2"))],
        );
        d.delete(Key::single(2));
        verify(&m);
        let p = m.p_table().unwrap();
        assert_eq!(p.len(), 1);
        // P tracks the current split value for key 1.
        assert_eq!(p.get(&Key::single(1)).unwrap().values[1], Value::str("c2"));
        assert_eq!(m.s_table().len(), 1);
        assert!(m.s_table().get(&Key::single("c2")).is_some());
    }

    #[test]
    fn cc_flags_inconsistent_insert() {
        let (_db, mut m) = setup_mode(SplitMode::SeparateR, true);
        let mut d = Driver::new(&mut m);
        d.insert(t_row(1, "a", "7050", "Trondheim"));
        d.insert(t_row(2, "b", "7050", "Trnodheim")); // the paper's typo
        assert_eq!(
            m.s_table().get(&Key::single("7050")).unwrap().flag,
            ConsistencyFlag::Unknown
        );
        assert_eq!(m.readiness(), Readiness::Pending { unknowns: 1 });
    }

    #[test]
    fn cc_certifies_after_repair() {
        let (db, mut m) = setup_mode(SplitMode::SeparateR, true);
        {
            let mut d = Driver::new(&mut m);
            d.insert(t_row(1, "a", "7050", "Trondheim"));
            d.insert(t_row(2, "b", "7050", "Trnodheim"));
        }
        // First CC round: contributors disagree → known inconsistent.
        m.run_cc_round(db.log()).unwrap();
        assert_eq!(
            m.readiness(),
            Readiness::Inconsistent {
                keys: vec![Key::single("7050")]
            }
        );
        // Repair the typo at the source (what a DBA would do), mirror
        // through the rules.
        {
            let mut d = Driver::new(&mut m);
            d.lsn = 10;
            d.update(Key::single(2), vec![(3, Value::str("Trondheim"))]);
        }
        // Second CC round: agree → CcBegin/CcOk appended.
        m.run_cc_round(db.log()).unwrap();
        // Feed the CC records back through the propagator path.
        let records = db.log().read_range(Lsn(1), usize::MAX);
        for (lsn, rec) in records {
            m.on_control(lsn, &rec).unwrap();
        }
        assert_eq!(m.readiness(), Readiness::Ready);
        assert_eq!(
            m.s_table().get(&Key::single("7050")).unwrap().flag,
            ConsistencyFlag::Consistent
        );
        assert_eq!(
            m.s_table().get(&Key::single("7050")).unwrap().values[1],
            Value::str("Trondheim")
        );
    }

    #[test]
    fn cc_certification_voided_by_concurrent_touch() {
        let (db, mut m) = setup_mode(SplitMode::SeparateR, true);
        {
            let mut d = Driver::new(&mut m);
            d.insert(t_row(1, "a", "c1", "d1"));
            d.insert(t_row(2, "b", "c1", "dX"));
        }
        assert_eq!(m.readiness(), Readiness::Pending { unknowns: 1 });
        // Repair so CC will find agreement…
        {
            let mut d = Driver::new(&mut m);
            d.lsn = 10;
            d.update(Key::single(2), vec![(3, Value::str("d1"))]);
        }
        m.run_cc_round(db.log()).unwrap();
        // …but an op touches c1 between CcBegin and the propagator
        // reaching CcOk:
        m.apply(
            Lsn(20),
            &LogOp::Update {
                table: m.t.id(),
                key: Key::single(1),
                old: vec![(3, Value::str("d1"))],
                new: vec![(3, Value::str("d1"))],
            },
        )
        .unwrap();
        for (lsn, rec) in db.log().read_range(Lsn(1), usize::MAX) {
            m.on_control(lsn, &rec).unwrap();
        }
        // Certification voided; still pending (not inconsistent).
        assert!(matches!(m.readiness(), Readiness::Pending { .. }));
    }

    #[test]
    fn prepare_validates_spec() {
        let db = Database::new();
        let ts = Schema::builder()
            .column("a", ColumnType::Int)
            .nullable("c", ColumnType::Str)
            .nullable("d", ColumnType::Str)
            .primary_key(&["a"])
            .build()
            .unwrap();
        db.create_table("T", ts).unwrap();
        // r_cols missing the primary key.
        let bad = SplitSpec::new("T", "R", "S", &["c"], "c", &["d"]);
        assert!(matches!(
            SplitMapping::prepare(&db, &bad),
            Err(DbError::MissingCandidateKey(_))
        ));
        // r_cols missing the split column.
        let bad = SplitSpec::new("T", "R", "S", &["a"], "c", &["d"]);
        assert!(matches!(
            SplitMapping::prepare(&db, &bad),
            Err(DbError::InvalidSchema(_))
        ));
        // split column listed among dependents.
        let bad = SplitSpec::new("T", "R", "S", &["a", "c"], "c", &["c"]);
        assert!(matches!(
            SplitMapping::prepare(&db, &bad),
            Err(DbError::InvalidSchema(_))
        ));
    }

    #[test]
    fn randomized_ops_match_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Consistent-data mode: the driver maintains the functional
        // dependency by construction (dep value derived from split
        // value), matching the §5.2 assumption.
        for seed in 0..8u64 {
            let (_db, mut m) = setup();
            let mut rng = StdRng::seed_from_u64(seed * 17 + 3);
            let splits = ["s0", "s1", "s2", "s3"];
            // Current dependent value per split value (consistency!).
            let mut dep: std::collections::HashMap<&str, String> =
                splits.iter().map(|s| (*s, format!("dep-{s}"))).collect();
            let mut d = Driver::new(&mut m);
            for step in 0..300 {
                match rng.gen_range(0..5) {
                    0 => {
                        let a = rng.gen_range(0..24);
                        if d.m.t.get(&Key::single(a)).is_none() {
                            let c = splits[rng.gen_range(0..splits.len())];
                            d.insert(t_row(a, "b", c, &dep[c].clone()));
                        }
                    }
                    1 => {
                        let a = rng.gen_range(0..24);
                        if d.m.t.get(&Key::single(a)).is_some() {
                            d.delete(Key::single(a));
                        }
                    }
                    2 => {
                        // Move a row to another split value.
                        let a = rng.gen_range(0..24);
                        if d.m.t.get(&Key::single(a)).is_some() {
                            let c = splits[rng.gen_range(0..splits.len())];
                            d.update(
                                Key::single(a),
                                vec![(2, Value::str(c)), (3, Value::str(dep[c].clone()))],
                            );
                        }
                    }
                    3 => {
                        // Consistently change the dependent of a split
                        // value across all carriers (one op per row, as
                        // a real transaction would issue).
                        let c = splits[rng.gen_range(0..splits.len())];
                        let nv = format!("dep-{c}-{step}");
                        dep.insert(c, nv.clone());
                        let carriers: Vec<Key> =
                            d.m.t
                                .snapshot()
                                .into_iter()
                                .filter(|(_, row)| row.values[2] == Value::str(c))
                                .map(|(k, _)| k)
                                .collect();
                        for k in carriers {
                            d.update(k, vec![(3, Value::str(nv.clone()))]);
                        }
                    }
                    _ => {
                        // Non-split, non-dependent update.
                        let a = rng.gen_range(0..24);
                        if d.m.t.get(&Key::single(a)).is_some() {
                            d.update(Key::single(a), vec![(1, Value::str(format!("b{step}")))]);
                        }
                    }
                }
            }
            verify(&m);
        }
    }

    #[test]
    fn randomized_rename_in_place_matches_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..4u64 {
            let (_db, mut m) = setup_mode(SplitMode::RenameInPlace, false);
            let mut rng = StdRng::seed_from_u64(seed + 1000);
            let splits = ["s0", "s1", "s2"];
            let mut d = Driver::new(&mut m);
            for _ in 0..200 {
                match rng.gen_range(0..3) {
                    0 => {
                        let a = rng.gen_range(0..16);
                        if d.m.t.get(&Key::single(a)).is_none() {
                            let c = splits[rng.gen_range(0..splits.len())];
                            d.insert(t_row(a, "b", c, &format!("dep-{c}")));
                        }
                    }
                    1 => {
                        let a = rng.gen_range(0..16);
                        if d.m.t.get(&Key::single(a)).is_some() {
                            d.delete(Key::single(a));
                        }
                    }
                    _ => {
                        let a = rng.gen_range(0..16);
                        if d.m.t.get(&Key::single(a)).is_some() {
                            let c = splits[rng.gen_range(0..splits.len())];
                            d.update(
                                Key::single(a),
                                vec![(2, Value::str(c)), (3, Value::str(format!("dep-{c}")))],
                            );
                        }
                    }
                }
            }
            verify(&m);
        }
    }
}
