//! Lazy (SLSM-style) migration: cut the catalog over first, transform
//! records on first touch.
//!
//! The eager §3 pipeline copies and propagates *before* switching; the
//! lazy alternative inverts the order. Synchronization happens
//! immediately — sources are latched for one short pause, the locks of
//! still-active transactions are treated NBA-style (the transactions
//! are doomed), the sources freeze, and a [`ResidualSet`] of every
//! not-yet-transformed source key is built under the latch. From that
//! point new transactions run against the target tables; a record is
//! transformed on the first read/write that touches it (an
//! [`OpInterceptor`] in the engine's operation path) while a throttled
//! background [`backfill`] drains the cold remainder.
//!
//! Correctness rides on two facts:
//!
//! * All three operators' propagation rules reconstruct the target
//!   from an `Insert` of the frozen source row regardless of arrival
//!   order — FOJ by content checks, split and union by LSN gating
//!   (Theorem 1). So "transform record r" is simply
//!   `oper.apply(r.lsn, Insert{r})`, and a row the workload already
//!   re-wrote in the target wins over the stale frozen image.
//! * The backfill ∥ on-access race is settled by the residual set's
//!   per-key claim: whoever claims transforms; everyone else blocks
//!   until the claim completes, so each record is transformed exactly
//!   once ([`ResidualSet`] invariants, DESIGN.md §15).
//!
//! Rows dirtied by a doomed (grandfathered) transaction are *deferred*:
//! their transform waits until the transaction's rollback has restored
//! the committed image in the frozen source. This mirrors eager
//! non-blocking-abort, where transferred proxy locks block access to
//! exactly those rows until propagation processes the rollback.
//!
//! [`backfill`]: LazyMigration::backfill

use crate::operator::TransformOperator;
use crate::spec::SplitMode;
use crate::sync::MirrorMap;
use crate::throttle::Throttle;
use crate::transform::TransformPlan;
use morph_common::{DbError, DbResult, Key, TableId, TxnId, Value};
use morph_engine::{Database, OpInterceptor, PlannedOp};
use morph_storage::{Claim, ClaimGuard, ResidualSet, Table};
use morph_txn::LockMode;
use morph_wal::LogOp;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Sentinel for "no interceptor installed".
const NO_TOKEN: u64 = u64::MAX;

/// Inverse key mapping: which frozen source record must exist before a
/// target-table access at a given key can proceed. Where a target key
/// identifies exactly one source record the touch is per-key; where it
/// aggregates many (a split's S side, any FOJ key) the touch falls back
/// to draining the whole residual — correct, and documented as the
/// fallback in DESIGN.md §15.
enum Inverse {
    Union {
        src_r: TableId,
        src_s: TableId,
        target: TableId,
        r_tag: Value,
        s_tag: Value,
    },
    Split {
        source: TableId,
        r2: Option<TableId>,
        s2: TableId,
    },
    Foj {
        target: TableId,
    },
}

/// A lazily-executing migration: catalog already cut over, records
/// transformed on access and by background backfill.
pub struct LazyMigration {
    db: Arc<Database>,
    oper: Mutex<Box<dyn TransformOperator>>,
    residual: Arc<ResidualSet>,
    sources: Vec<Arc<Table>>,
    inverse: Inverse,
    /// Source keys dirtied by a doomed old transaction, transformable
    /// only once that transaction's rollback has completed.
    deferred: Mutex<HashMap<(TableId, Key), TxnId>>,
    token: AtomicU64,
}

/// On-access hook: resolves the touched target key back to its source
/// record and transforms it before the operation proceeds. Holds only a
/// weak reference so a dropped migration leaves a dead no-op hook, not
/// a leak-cycle through the database.
struct LazyInterceptor {
    lazy: Weak<LazyMigration>,
}

impl OpInterceptor for LazyInterceptor {
    fn before_op(
        &self,
        _db: &Database,
        _txn: TxnId,
        table: &Table,
        op: &PlannedOp<'_>,
    ) -> DbResult<()> {
        match self.lazy.upgrade() {
            Some(lazy) => lazy.on_access(table, op),
            None => Ok(()),
        }
    }
}

impl LazyMigration {
    /// Cut over immediately: latch the sources, doom still-active
    /// holders NBA-style, freeze the sources, build the residual set,
    /// and install the on-access hook. Returns with the catalog
    /// switched and **zero** records transformed.
    ///
    /// Rename-in-place split plans are rejected: the lazy scheme needs
    /// the frozen source intact as the transform input, which the
    /// in-place rename destroys.
    pub fn start(db: &Arc<Database>, plan: &TransformPlan) -> DbResult<Arc<LazyMigration>> {
        if let TransformPlan::Split(s) = plan {
            if s.mode == SplitMode::RenameInPlace {
                return Err(DbError::TransformationAborted(
                    "lazy migration does not support rename-in-place splits".into(),
                ));
            }
        }
        let (oper, _names) = plan.prepare_operator(db)?;
        let sources = crate::sync::sorted_sources(db, &*oper)?;
        let inverse = match oper.mirror_map() {
            MirrorMap::Union {
                r_id,
                s_id,
                t_id,
                r_tag,
                s_tag,
                ..
            } => Inverse::Union {
                src_r: r_id,
                src_s: s_id,
                target: t_id,
                r_tag,
                s_tag,
            },
            MirrorMap::Split { t, r_id, s_id, .. } => Inverse::Split {
                source: t.id(),
                r2: r_id,
                s2: s_id,
            },
            MirrorMap::Foj { t, .. } => Inverse::Foj { target: t.id() },
        };

        let lazy = Arc::new(LazyMigration {
            db: Arc::clone(db),
            oper: Mutex::new(oper),
            residual: Arc::new(ResidualSet::new()),
            sources,
            inverse,
            deferred: Mutex::new(HashMap::new()),
            token: AtomicU64::new(NO_TOKEN),
        });

        // --- the cutover pause: everything below runs under the latch.
        let guards: Vec<_> = lazy.sources.iter().map(|t| t.latch_exclusive()).collect();

        // Old transactions: anyone holding locks on a source. Their
        // exclusively-locked keys are dirty — track them (a rolled-back
        // delete restores a row the snapshot cannot see) and defer
        // their transform past the rollback.
        let mut old = std::collections::HashSet::new();
        // morph-lint: allow(lock_order, cutover pause: the coordinator alone holds these exclusive latches and user txns never latch shards while holding registry/side locks, so the rank protocol's reverse order cannot occur concurrently)
        for txn in db.active_txns() {
            for src in &lazy.sources {
                let held = db.locks().held_keys_in(txn, src.id());
                if held.is_empty() {
                    continue;
                }
                old.insert(txn);
                let mut defer = lazy.deferred.lock(); // morph-lint: rank(core.scratch)
                for (key, mode) in held {
                    if mode == LockMode::Exclusive {
                        lazy.residual.track(src.id(), key.clone());
                        defer.insert((src.id(), key), txn);
                    }
                }
            }
        }
        for txn in &old {
            db.doom(*txn);
        }
        for (src, guard) in lazy.sources.iter().zip(&guards) {
            // morph-lint: allow(lock_order, cutover pause: freezing under the exclusive latch is the point — nothing else can hold table.meta while every shard latch is ours)
            src.freeze(old.iter().copied().collect());
            for key in guard.keys() {
                lazy.residual.track(src.id(), key);
            }
        }
        // morph-lint: allow(lock_order, cutover pause: interceptor registration under the latch is what makes the cut atomic; writers blocked on the latch observe the interceptor the instant they resume)
        let token = db.add_interceptor(Arc::new(LazyInterceptor {
            lazy: Arc::downgrade(&lazy),
        }));
        lazy.token.store(token, Ordering::SeqCst);
        if let Err(e) = db.crash_point("router.lazy_cutover") {
            db.remove_interceptor(token);
            return Err(e);
        }
        drop(guards);
        Ok(lazy)
    }

    /// Keys still awaiting transformation.
    pub fn remaining(&self) -> usize {
        self.residual.remaining()
    }

    /// Whether every source record has been transformed.
    pub fn is_drained(&self) -> bool {
        self.residual.is_drained()
    }

    /// The underlying residual set (diagnostics and tests).
    pub fn residual(&self) -> &ResidualSet {
        &self.residual
    }

    /// Transform one source record now if it is still pending; blocks
    /// while another claimant is transforming it.
    pub fn touch(&self, source: TableId, key: &Key) -> DbResult<()> {
        match self.residual.claim(source, key) {
            Claim::Done => Ok(()),
            Claim::Transform(guard) => self.transform_one(guard),
        }
    }

    /// Throttled background backfill: claim and transform pending
    /// records in batches of `batch`, paying the priority throttle per
    /// batch so user transactions keep the machine. Returns the number
    /// of records this call transformed; the residual may still hold
    /// keys in flight with on-access claimants when it returns.
    pub fn backfill(&self, batch: usize, priority: f64) -> DbResult<usize> {
        let batch = batch.max(1);
        let mut throttle = Throttle::new(priority);
        let mut total = 0usize;
        loop {
            self.db.crash_point("router.backfill_batch")?;
            // morph-lint: allow(nondet, batch timing feeds throttle pacing only; wall time never enters table or WAL state)
            let t0 = Instant::now();
            let mut n = 0usize;
            while n < batch {
                match self.residual.claim_next() {
                    Some(guard) => {
                        self.transform_one(guard)?;
                        n += 1;
                    }
                    None => break,
                }
            }
            if n == 0 {
                return Ok(total);
            }
            total += n;
            throttle.pay(t0.elapsed());
        }
    }

    /// Unthrottled full drain (a backfill at full priority).
    pub fn drain_now(&self) -> DbResult<usize> {
        self.backfill(usize::MAX, 1.0)
    }

    /// Complete the migration: requires a drained residual, removes the
    /// on-access hook and drops the frozen sources.
    pub fn finish(&self) -> DbResult<()> {
        if !self.residual.is_drained() {
            return Err(DbError::TransformationAborted(
                "lazy migration finished before the residual set drained".into(),
            ));
        }
        let token = self.token.swap(NO_TOKEN, Ordering::SeqCst);
        if token != NO_TOKEN {
            self.db.remove_interceptor(token);
        }
        self.db.crash_point("router.lazy_done")?;
        for src in &self.sources {
            self.db.catalog().drop_table(&src.name())?;
        }
        let oper = self.oper.lock();
        oper.finalize(&self.db)?;
        Ok(())
    }

    /// The interceptor's entry: resolve a target-table access to the
    /// source record(s) that must be transformed first.
    fn on_access(&self, table: &Table, op: &PlannedOp<'_>) -> DbResult<()> {
        if self.residual.is_drained() {
            return Ok(());
        }
        match &self.inverse {
            Inverse::Union {
                src_r,
                src_s,
                target,
                r_tag,
                s_tag,
            } => {
                if table.id() != *target {
                    return Ok(());
                }
                let key = Self::op_key(table, op);
                let Some((tag, rest)) = key.values().split_first() else {
                    return Ok(());
                };
                let src = if tag == r_tag {
                    *src_r
                } else if tag == s_tag {
                    *src_s
                } else {
                    return Ok(());
                };
                self.touch(src, &Key(rest.to_vec()))
            }
            Inverse::Split { source, r2, s2 } => {
                if Some(table.id()) == *r2 {
                    // R₂'s key is the source key verbatim.
                    let key = Self::op_key(table, op);
                    self.touch(*source, &key)
                } else if table.id() == *s2 {
                    // An S₂ record aggregates many source rows (its
                    // reference counter sums over them): no single
                    // source key to touch — drain.
                    self.drain_now().map(|_| ())
                } else {
                    Ok(())
                }
            }
            Inverse::Foj { target } => {
                if table.id() == *target {
                    // FOJ keys pair rows of both sources; resolving one
                    // touch may require join partners from either side
                    // — drain.
                    self.drain_now().map(|_| ())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The target key an operation addresses (for inserts, the key the
    /// new row would get).
    fn op_key(table: &Table, op: &PlannedOp<'_>) -> Key {
        match op {
            PlannedOp::Insert { values } => table.schema().key_of(values),
            PlannedOp::Update { key, .. } | PlannedOp::Delete { key } | PlannedOp::Read { key } => {
                (*key).clone()
            }
        }
    }

    /// Transform one claimed source record: wait out a doomed writer's
    /// rollback, read the frozen row, feed it through the operator's
    /// propagation rules as an `Insert` at the row's own LSN.
    fn transform_one(&self, guard: ClaimGuard<'_>) -> DbResult<()> {
        let Some(src) = self.sources.iter().find(|t| t.id() == guard.table()) else {
            guard.complete();
            return Ok(());
        };
        // Deferred key: a doomed old transaction wrote this row; its
        // committed image is only back once the rollback finishes. The
        // wait mirrors eager NBA's transferred proxy locks, which block
        // access to exactly these rows for exactly this long.
        let owner = {
            let defer = self.deferred.lock(); // morph-lint: rank(core.scratch)
            defer.get(&(guard.table(), guard.key().clone())).copied()
        };
        if let Some(txn) = owner {
            while self.db.is_active(txn) {
                std::thread::sleep(Duration::from_micros(100));
            }
            let mut defer = self.deferred.lock(); // morph-lint: rank(core.scratch)
            defer.remove(&(guard.table(), guard.key().clone()));
        }
        let Some(row) = src.get(guard.key()) else {
            // The row is gone from the frozen source (a doomed insert,
            // rolled back): nothing to transform.
            guard.complete();
            return Ok(());
        };
        self.db.crash_point("router.lazy_touch")?;
        let op = LogOp::Insert {
            table: guard.table(),
            row: row.values,
        };
        {
            let mut oper = self.oper.lock();
            oper.apply(row.lsn, &op)?;
        }
        guard.complete();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union::UnionSpec;
    use morph_common::{ColumnType, Schema};

    fn setup_union() -> Arc<Database> {
        let db = Arc::new(Database::new());
        let schema = || {
            Schema::builder()
                .column("id", ColumnType::Int)
                .column("v", ColumnType::Int)
                .primary_key(&["id"])
                .build()
                .unwrap()
        };
        db.create_table("r", schema()).unwrap();
        db.create_table("s", schema()).unwrap();
        for i in 0..8 {
            let t = db.begin();
            db.insert(t, "r", vec![Value::Int(i), Value::Int(i * 10)])
                .unwrap();
            db.insert(t, "s", vec![Value::Int(i), Value::Int(i * 100)])
                .unwrap();
            db.commit(t).unwrap();
        }
        db
    }

    fn union_plan() -> TransformPlan {
        TransformPlan::Union(UnionSpec::new("r", "s", "t"))
    }

    fn t_key(src: &str, id: i64) -> Key {
        Key::new([Value::str(src), Value::Int(id)])
    }

    #[test]
    fn lazy_union_backfill_drains_and_finishes() {
        let db = setup_union();
        let lazy = LazyMigration::start(&db, &union_plan()).unwrap();
        assert_eq!(lazy.remaining(), 16);
        let n = lazy.backfill(4, 1.0).unwrap();
        assert_eq!(n, 16);
        assert!(lazy.is_drained());
        lazy.finish().unwrap();
        let t = db.begin();
        let row = db.read(t, "t", &t_key("r", 3)).unwrap().unwrap();
        assert_eq!(row[2], Value::Int(30));
        db.commit(t).unwrap();
        assert!(db.catalog().get("r").is_err());
    }

    #[test]
    fn lazy_union_on_access_transforms_before_read() {
        let db = setup_union();
        let lazy = LazyMigration::start(&db, &union_plan()).unwrap();
        // No backfill: the read itself must materialize the record.
        let t = db.begin();
        let row = db.read(t, "t", &t_key("s", 5)).unwrap().unwrap();
        assert_eq!(row[2], Value::Int(500));
        db.commit(t).unwrap();
        assert_eq!(lazy.remaining(), 15);
        lazy.drain_now().unwrap();
        lazy.finish().unwrap();
    }

    #[test]
    fn lazy_union_write_beats_stale_backfill() {
        let db = setup_union();
        let lazy = LazyMigration::start(&db, &union_plan()).unwrap();
        // Workload updates a record through the target; the on-access
        // touch transforms it first, then the update lands on top. The
        // later backfill of everything else must not resurrect the
        // frozen image.
        let t = db.begin();
        let key = t_key("r", 2);
        db.update(t, "t", &key, &[(2, Value::Int(-1))]).unwrap();
        db.commit(t).unwrap();
        lazy.drain_now().unwrap();
        lazy.finish().unwrap();
        let t = db.begin();
        let row = db.read(t, "t", &key).unwrap().unwrap();
        assert_eq!(row[2], Value::Int(-1));
        db.commit(t).unwrap();
    }

    #[test]
    fn lazy_rejects_rename_in_place() {
        let db = Arc::new(Database::new());
        let schema = Schema::builder()
            .column("id", ColumnType::Int)
            .column("g", ColumnType::Int)
            .column("d", ColumnType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        db.create_table("w", schema).unwrap();
        let plan = TransformPlan::Split(crate::spec::SplitSpec {
            source: "w".into(),
            r_target: "w2".into(),
            s_target: "g2".into(),
            r_cols: vec!["id".into(), "g".into()],
            split_col: "g".into(),
            s_dep_cols: vec!["d".into()],
            check_consistency: false,
            mode: SplitMode::RenameInPlace,
        });
        assert!(LazyMigration::start(&db, &plan).is_err());
    }

    #[test]
    fn lazy_defers_doomed_writers_rows() {
        let db = setup_union();
        // An in-flight transaction dirties r#4 and is still active at
        // cutover: it gets doomed, and the touch of its row must wait
        // for the rollback to restore the committed image.
        let old = db.begin();
        db.update(old, "r", &Key::single(4), &[(1, Value::Int(999))])
            .unwrap();
        let lazy = LazyMigration::start(&db, &union_plan()).unwrap();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                done.store(true, Ordering::SeqCst);
                db.abort(old).unwrap();
            });
            let t = db.begin();
            let row = db.read(t, "t", &t_key("r", 4)).unwrap().unwrap();
            // The touch blocked until the rollback finished.
            assert!(done.load(Ordering::SeqCst));
            assert_eq!(row[2], Value::Int(40));
            db.commit(t).unwrap();
        });
        lazy.drain_now().unwrap();
        lazy.finish().unwrap();
    }
}
