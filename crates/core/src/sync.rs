//! Synchronization strategies (§3.4) and lock transfer (§4.3).
//!
//! All three strategies the paper describes are implemented:
//!
//! * **Blocking commit** — freeze the source tables for new
//!   transactions, let current holders finish, final drain, switch.
//! * **Non-blocking abort** — latch the sources for one final (very
//!   short) drain, transfer the locks of still-active transactions to
//!   the transformed tables, doom those transactions, switch; their
//!   compensations wash out through continued background propagation,
//!   which releases the transferred locks as it processes each
//!   transaction's rollback-complete record.
//! * **Non-blocking commit** — like non-blocking abort, but the old
//!   transactions continue to completion on the frozen sources; every
//!   subsequent operation is mirrored onto the transformed tables via
//!   an [`OpInterceptor`] under the Figure-2 origin-tagged
//!   compatibility matrix.
//!
//! ## Proxy lock ownership
//!
//! Transferred locks are installed under a *proxy owner*
//! ([`proxy_owner`]) rather than the original transaction id. The
//! engine releases a transaction's own locks the moment it commits or
//! finishes rolling back — but the transformed tables may only be
//! unlocked once the *propagator has processed* that transaction's end
//! record (§3.4), which happens strictly later. The proxy owner
//! decouples the two lifetimes.

use crate::operator::{source_tables, TransformOperator};
use crate::propagate::Propagator;
use crate::report::SyncStats;
use crate::spec::{SyncStrategy, TransformOptions};
use morph_common::{DbError, DbResult, Key, TableId, TxnId, Value};
use morph_engine::{Database, OpInterceptor, PlannedOp};
use morph_storage::Table;
use morph_txn::LockOrigin;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Proxy lock owner for a grandfathered transaction (top bit set; the
/// engine never allocates ids in that range).
pub fn proxy_owner(txn: TxnId) -> TxnId {
    TxnId(txn.0 | (1 << 63))
}

/// Immutable mapping data used to mirror source-table locks onto the
/// transformed tables from arbitrary client threads.
pub enum MirrorMap {
    /// FOJ transformation mapping.
    Foj {
        r_id: TableId,
        s_id: TableId,
        t: Arc<Table>,
        idx_rpk: usize,
        idx_join: usize,
        idx_spk: usize,
        r_pk: Vec<usize>,
        r_join: usize,
        s_join: usize,
        many: bool,
    },
    /// Split transformation mapping.
    Split {
        t: Arc<Table>,
        r_id: Option<TableId>,
        s_id: TableId,
        split_t: usize,
        t_pk: Vec<usize>,
    },
    /// Union transformation mapping.
    Union {
        r_id: TableId,
        s_id: TableId,
        t_id: TableId,
        r_tag: Value,
        s_tag: Value,
        src_pk: Vec<usize>,
    },
}

impl MirrorMap {
    /// Transformed-table records affected by `op` on `source`, with the
    /// lock origin to tag them with. Best-effort for inserts (derived
    /// placeholder rows are not pre-locked; the propagator is the only
    /// writer of those and new transactions cannot observe them before
    /// the lock release anyway).
    pub fn targets_for(
        &self,
        source: TableId,
        op: &PlannedOp<'_>,
    ) -> Vec<(TableId, Key, LockOrigin)> {
        match self {
            MirrorMap::Foj {
                r_id,
                s_id,
                t,
                idx_rpk,
                idx_join,
                idx_spk,
                r_pk,
                r_join,
                s_join,
                many,
            } => {
                let (idx, origin, join_pos) = if source == *r_id {
                    (*idx_rpk, LockOrigin::SourceR, *r_join)
                } else if source == *s_id {
                    (*idx_spk, LockOrigin::SourceS, *s_join)
                } else {
                    return Vec::new();
                };
                match op {
                    PlannedOp::Insert { values } => {
                        if source == *r_id && !*many {
                            // Predicted T key: R-pk ⧺ join (as prepared).
                            let mut cols = r_pk.clone();
                            if !cols.contains(r_join) {
                                cols.push(*r_join);
                            }
                            vec![(t.id(), Key::project(values, &cols), origin)]
                        } else {
                            // Rows that will absorb / pair with the new
                            // record: everything on its join value.
                            let jv = values.get(join_pos).cloned().unwrap_or(Value::Null);
                            t.index_lookup(*idx_join, &Key::new([jv]))
                                .into_iter()
                                .map(|k| (t.id(), k, origin))
                                .collect()
                        }
                    }
                    PlannedOp::Update { key, .. }
                    | PlannedOp::Delete { key }
                    | PlannedOp::Read { key } => t
                        .index_lookup(idx, key)
                        .into_iter()
                        .map(|k| (t.id(), k, origin))
                        .collect(),
                }
            }
            MirrorMap::Split {
                t,
                r_id,
                s_id,
                split_t,
                t_pk,
            } => {
                if source != t.id() {
                    return Vec::new();
                }
                let mut out = Vec::new();
                match op {
                    PlannedOp::Insert { values } => {
                        if let Some(r) = r_id {
                            out.push((*r, Key::project(values, t_pk), LockOrigin::SourceR));
                        }
                        if let Some(v) = values.get(*split_t) {
                            out.push((*s_id, Key::new([v.clone()]), LockOrigin::SourceS));
                        }
                    }
                    PlannedOp::Update { key, .. }
                    | PlannedOp::Delete { key }
                    | PlannedOp::Read { key } => {
                        if let Some(r) = r_id {
                            out.push((*r, (*key).clone(), LockOrigin::SourceR));
                        }
                        if let Some(row) = t.get(key) {
                            out.push((
                                *s_id,
                                Key::new([row.values[*split_t].clone()]),
                                LockOrigin::SourceS,
                            ));
                        }
                    }
                }
                out
            }
            MirrorMap::Union {
                r_id,
                s_id,
                t_id,
                r_tag,
                s_tag,
                src_pk,
            } => {
                let (tag, origin) = if source == *r_id {
                    (r_tag, LockOrigin::SourceR)
                } else if source == *s_id {
                    (s_tag, LockOrigin::SourceS)
                } else {
                    return Vec::new();
                };
                let prefix_key = |key: &Key| {
                    let mut vals = Vec::with_capacity(key.arity() + 1);
                    vals.push(tag.clone());
                    vals.extend(key.values().iter().cloned());
                    Key(vals)
                };
                match op {
                    PlannedOp::Insert { values } => {
                        vec![(*t_id, prefix_key(&Key::project(values, src_pk)), origin)]
                    }
                    PlannedOp::Update { key, .. }
                    | PlannedOp::Delete { key }
                    | PlannedOp::Read { key } => vec![(*t_id, prefix_key(key), origin)],
                }
            }
        }
    }
}

/// Interceptor installed by non-blocking-commit synchronization: every
/// further operation by a grandfathered transaction on a source table
/// first acquires the corresponding origin-tagged locks on the
/// transformed tables (conflicting with new transactions per Figure 2),
/// then installs proxy grants so the locks outlive the transaction
/// until the propagator has caught up.
pub struct MirrorInterceptor {
    map: MirrorMap,
    old_txns: HashSet<TxnId>,
    sources: Vec<TableId>,
}

impl OpInterceptor for MirrorInterceptor {
    fn before_op(
        &self,
        db: &Database,
        txn: TxnId,
        table: &Table,
        op: &PlannedOp<'_>,
    ) -> DbResult<()> {
        if !self.old_txns.contains(&txn) || !self.sources.contains(&table.id()) {
            return Ok(());
        }
        let mode = op.lock_mode();
        for (tid, key, origin) in self.map.targets_for(table.id(), op) {
            // Acquire under the transaction itself (correct wait–die
            // ages against new transactions)…
            db.locks().lock_tagged(txn, tid, &key, mode, origin)?;
            // …then pin a proxy grant that survives until the
            // propagator processes the transaction's end record.
            db.locks()
                .grant_transferred(proxy_owner(txn), tid, &key, mode, origin);
        }
        Ok(())
    }
}

/// Everything the caller learns from synchronization.
pub struct SyncOutcome {
    /// Timing and counts for the report.
    pub stats: SyncStats,
    /// Grandfathered transactions (empty for blocking commit).
    pub old_txns: HashSet<TxnId>,
    /// Interceptor registration token (non-blocking commit only);
    /// removed when the transformation finishes.
    pub interceptor_token: Option<u64>,
}

/// Run the synchronization step.
pub fn synchronize(
    db: &Arc<Database>,
    oper: &mut dyn TransformOperator,
    prop: &mut Propagator,
    options: &TransformOptions,
) -> DbResult<SyncOutcome> {
    match options.strategy {
        SyncStrategy::BlockingCommit => blocking_commit(db, oper, prop, options),
        SyncStrategy::NonBlockingAbort | SyncStrategy::NonBlockingCommit => {
            non_blocking(db, oper, prop, options)
        }
    }
}

pub(crate) fn sorted_sources(
    db: &Database,
    oper: &dyn TransformOperator,
) -> DbResult<Vec<Arc<Table>>> {
    let mut sources = source_tables(db, oper)?;
    sources.sort_by_key(|t| t.id());
    Ok(sources)
}

pub(crate) fn transfer_locks(
    db: &Database,
    oper: &dyn TransformOperator,
    sources: &[Arc<Table>],
) -> (HashSet<TxnId>, usize) {
    let mut old = HashSet::new();
    let mut transferred = 0usize;
    for txn in db.active_txns() {
        for (si, src) in sources.iter().enumerate() {
            let held = db.locks().held_keys_in(txn, src.id());
            if held.is_empty() {
                continue;
            }
            old.insert(txn);
            let origin = if si == 0 {
                LockOrigin::SourceR
            } else {
                LockOrigin::SourceS
            };
            for (key, mode) in held {
                for (tid, tkey) in oper.target_keys_for(src.id(), &key) {
                    db.locks()
                        .grant_transferred(proxy_owner(txn), tid, &tkey, mode, origin);
                    transferred += 1;
                }
            }
        }
    }
    (old, transferred)
}

/// Catalog switch: freeze (or rename) the sources so new transactions
/// land on the transformed tables.
fn switch_catalog(
    _db: &Database,
    oper: &dyn TransformOperator,
    sources: &[Arc<Table>],
    old: &HashSet<TxnId>,
) -> DbResult<()> {
    if oper.renames_source() {
        // The source becomes a target in place (§5.2 rename-in-place).
        // The table stays Active: old transactions keep operating on it
        // legitimately (their log records still resolve by table id),
        // and new transactions reach it under its new name. The rename
        // itself happens right after the latch is released — it is an
        // O(1) catalog pointer swap either way.
        return Ok(());
    }
    for src in sources {
        src.freeze(old.iter().copied().collect());
    }
    Ok(())
}

fn non_blocking(
    db: &Arc<Database>,
    oper: &mut dyn TransformOperator,
    prop: &mut Propagator,
    options: &TransformOptions,
) -> DbResult<SyncOutcome> {
    // Crash-simulation points, named per strategy so the crash matrix
    // can enumerate kills inside each of the three strategies.
    let (p_latched, p_drained, p_treated, p_switched) = match options.strategy {
        SyncStrategy::NonBlockingAbort => (
            "sync.nba.latched",
            "sync.nba.drained",
            "sync.nba.treated",
            "sync.nba.switched",
        ),
        SyncStrategy::NonBlockingCommit => (
            "sync.nbc.latched",
            "sync.nbc.drained",
            "sync.nbc.treated",
            "sync.nbc.switched",
        ),
        SyncStrategy::BlockingCommit => unreachable!("handled elsewhere"), // morph-lint: allow(panic, the BlockingCommit arm is dispatched to its own path before this match)
    };
    let sources = sorted_sources(db, oper)?;
    // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
    let t0 = Instant::now();
    let guards: Vec<_> = sources.iter().map(|t| t.latch_exclusive()).collect();
    db.crash_point(p_latched)?;

    // Final propagation: after this, the transformed tables are in the
    // same state as the (latched) sources.
    // morph-lint: allow(lock_order, cutover pause: the final drain deliberately runs under the exclusive source latches; catalog/meta acquisitions below cannot deadlock because no other thread latches shards while holding those locks — writers are parked on the latch itself)
    let final_records = prop.drain_all(db, oper)?;
    db.crash_point(p_drained)?;

    // Transfer locks of still-active transactions (§3.4/§4.3).
    let (old, locks_transferred) = transfer_locks(db, oper, &sources);

    // Strategy-specific treatment of the old transactions.
    let interceptor_token = match options.strategy {
        SyncStrategy::NonBlockingAbort => {
            for txn in &old {
                db.doom(*txn);
            }
            None
        }
        SyncStrategy::NonBlockingCommit => {
            let token = db.add_interceptor(Arc::new(MirrorInterceptor {
                map: oper.mirror_map(),
                old_txns: old.clone(),
                sources: sources.iter().map(|t| t.id()).collect(),
            }));
            Some(token)
        }
        SyncStrategy::BlockingCommit => unreachable!("handled elsewhere"), // morph-lint: allow(panic, the BlockingCommit arm is dispatched to its own path before this match)
    };
    let un_intercept = |db: &Database, e: DbError| {
        if let Some(tok) = interceptor_token {
            db.remove_interceptor(tok);
        }
        Err(e)
    };
    if let Err(e) = db.crash_point(p_treated) {
        return un_intercept(db, e);
    }

    if let Err(e) = switch_catalog(db, oper, &sources, &old) {
        return un_intercept(db, e);
    }
    drop(guards);
    let latch_pause = t0.elapsed();
    if let Err(e) = db.crash_point(p_switched) {
        return un_intercept(db, e);
    }

    // Rename-in-place publishes outside the latch (the rename itself is
    // a catalog pointer swap; doing it after unlatching keeps the pause
    // honest — the name flip is atomic either way).
    if oper.renames_source() {
        oper.publish(db)?;
    }

    prop.enter_post_sync(old.clone());
    Ok(SyncOutcome {
        stats: SyncStats {
            strategy: options.strategy,
            latch_pause,
            final_records,
            old_txns: old.len(),
            locks_transferred,
        },
        old_txns: old,
        interceptor_token,
    })
}

fn blocking_commit(
    db: &Arc<Database>,
    oper: &mut dyn TransformOperator,
    prop: &mut Propagator,
    options: &TransformOptions,
) -> DbResult<SyncOutcome> {
    let sources = sorted_sources(db, oper)?;
    // morph-lint: allow(nondet, elapsed-time stats for the report; wall time never enters table or WAL state)
    let t0 = Instant::now();

    // Block new transactions; let current lock holders finish.
    let mut holders: HashSet<TxnId> = HashSet::new();
    for txn in db.active_txns() {
        if sources
            .iter()
            .any(|s| !db.locks().held_keys_in(txn, s.id()).is_empty())
        {
            holders.insert(txn);
        }
    }
    for src in &sources {
        src.freeze(holders.clone());
    }
    if let Err(e) = db.crash_point("sync.bc.frozen") {
        for src in &sources {
            src.reactivate();
        }
        return Err(e);
    }
    // morph-lint: allow(nondet, drain-wait deadline; wall-time bound on blocking, never replayed state)
    let wait_deadline = Instant::now() + options.deadline.unwrap_or(Duration::from_secs(60));
    while holders.iter().any(|t| db.is_active(*t)) {
        // morph-lint: allow(nondet, drain-wait deadline; wall-time bound on blocking, never replayed state)
        if Instant::now() > wait_deadline {
            for src in &sources {
                src.reactivate();
            }
            return Err(DbError::TransformationAborted(
                "blocking-commit: active transactions did not finish in time".into(),
            ));
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    db.crash_point("sync.bc.quiesced")?;

    // Final drain under the latch; then either publish the renamed
    // source or drop the sources outright.
    let guards: Vec<_> = sources.iter().map(|t| t.latch_exclusive()).collect();
    let final_records = prop.drain_all(db, oper)?;
    db.crash_point("sync.bc.drained")?;
    drop(guards);
    if oper.renames_source() {
        oper.publish(db)?;
    } else {
        for src in &sources {
            db.catalog().drop_table(&src.name())?;
        }
    }
    prop.enter_post_sync(HashSet::new());

    Ok(SyncOutcome {
        stats: SyncStats {
            strategy: SyncStrategy::BlockingCommit,
            // For the blocking strategy the user-visible pause is the
            // whole freeze window, not just the latch.
            latch_pause: t0.elapsed(),
            final_records,
            old_txns: holders.len(),
            locks_transferred: 0,
        },
        old_txns: HashSet::new(),
        interceptor_token: None,
    })
}
