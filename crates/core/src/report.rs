//! Transformation reports: what each of the four steps cost.
//!
//! The experiment harness (Figure 4 reproduction) is built on these
//! numbers, in particular [`SyncStats::latch_pause`] — the paper's
//! "<1 ms" synchronization claim — and the per-iteration backlog trace
//! that shows whether propagation converges at a given priority.

use crate::pool::PoolStats;
use crate::spec::SyncStrategy;
use std::time::Duration;

/// Initial population statistics (§3.2).
#[derive(Clone, Debug, Default)]
pub struct PopulationStats {
    /// Wall-clock duration of the fuzzy read + operator + insert.
    pub duration: Duration,
    /// Source rows read fuzzily.
    pub rows_read: usize,
    /// Rows written to the transformed tables.
    pub rows_written: usize,
}

/// One log-propagation iteration (§3.3).
#[derive(Clone, Debug, Default)]
pub struct IterationStats {
    /// Log records examined.
    pub records: usize,
    /// Records that concerned the source tables (and were applied
    /// through the propagation rules).
    pub relevant: usize,
    /// Wall-clock duration (including throttle sleeps).
    pub duration: Duration,
    /// Remaining log records when the iteration ended — the analysis
    /// input.
    pub backlog_after: usize,
}

/// Synchronization statistics (§3.4).
#[derive(Clone, Debug)]
pub struct SyncStats {
    /// Strategy used.
    pub strategy: SyncStrategy,
    /// How long the source tables were latched (user-visible pause).
    pub latch_pause: Duration,
    /// Log records drained during the final latched propagation.
    pub final_records: usize,
    /// Transactions doomed (non-blocking abort) or carried over
    /// (non-blocking commit).
    pub old_txns: usize,
    /// Record locks transferred to the transformed tables.
    pub locks_transferred: usize,
}

impl Default for SyncStats {
    fn default() -> Self {
        SyncStats {
            strategy: SyncStrategy::NonBlockingAbort,
            latch_pause: Duration::ZERO,
            final_records: 0,
            old_txns: 0,
            locks_transferred: 0,
        }
    }
}

/// Full account of one transformation run.
#[derive(Clone, Debug, Default)]
pub struct TransformReport {
    /// Preparation step duration (table + index creation).
    pub prepare: Duration,
    /// Initial population statistics.
    pub population: PopulationStats,
    /// One entry per propagation iteration, in order.
    pub iterations: Vec<IterationStats>,
    /// Synchronization statistics.
    pub sync: SyncStats,
    /// Post-synchronization background propagation (until all old
    /// transactions ended and the source tables were dropped).
    pub post_duration: Duration,
    /// Records processed post-synchronization.
    pub post_records: usize,
    /// Number of consistency-checker certification rounds run (split
    /// with §5.3 checking only).
    pub cc_rounds: usize,
    /// Apply-pool counters (steal/handoff/epoch rates), present when
    /// the job ran with `apply_shards > 1`.
    pub pool: Option<PoolStats>,
    /// End-to-end duration.
    pub total: Duration,
}

impl TransformReport {
    /// Total log records processed across all phases.
    pub fn records_processed(&self) -> usize {
        self.iterations.iter().map(|i| i.records).sum::<usize>()
            + self.sync.final_records
            + self.post_records
    }

    /// Number of propagation iterations before synchronization.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_totals_add_up() {
        let mut r = TransformReport::default();
        r.iterations.push(IterationStats {
            records: 10,
            relevant: 4,
            duration: Duration::from_millis(1),
            backlog_after: 2,
        });
        r.iterations.push(IterationStats {
            records: 5,
            ..Default::default()
        });
        r.sync.final_records = 2;
        r.post_records = 3;
        assert_eq!(r.records_processed(), 20);
        assert_eq!(r.iteration_count(), 2);
    }
}
