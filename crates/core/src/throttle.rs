//! Priority throttling of the background transformation.
//!
//! The paper runs the transformation "as a low priority background
//! process" and studies (Figure 4(d)) how the priority knob trades
//! transformation completion time against interference with user
//! transactions — including the floor below which propagation never
//! converges. This module implements the knob: after spending `d`
//! seconds of work, the propagator sleeps `d·(1−p)/p`, so that the
//! long-run fraction of time it is runnable is `p`.

use std::time::{Duration, Instant};

/// Duty-cycle throttle.
#[derive(Debug)]
pub struct Throttle {
    priority: f64,
    /// Accumulated sleep debt, paid in chunks ≥ `min_sleep` so that
    /// tiny batches do not degenerate into zero-length sleeps (which
    /// the OS rounds to "no sleep at all", silently raising the
    /// effective priority).
    debt: Duration,
    min_sleep: Duration,
}

impl Throttle {
    /// A throttle running at the given priority (clamped to (0, 1]).
    pub fn new(priority: f64) -> Throttle {
        Throttle {
            priority: priority.clamp(1e-4, 1.0),
            debt: Duration::ZERO,
            min_sleep: Duration::from_micros(200),
        }
    }

    /// Current priority.
    pub fn priority(&self) -> f64 {
        self.priority
    }

    /// Raise the priority (non-convergence escalation). Clamped to 1.
    pub fn escalate(&mut self, factor: f64) {
        self.priority = (self.priority * factor).clamp(1e-4, 1.0);
    }

    /// Record `busy` seconds of work; sleeps if enough debt has
    /// accumulated. Returns the time actually slept.
    pub fn pay(&mut self, busy: Duration) -> Duration {
        if self.priority >= 1.0 {
            return Duration::ZERO;
        }
        let owed = busy.mul_f64((1.0 - self.priority) / self.priority);
        self.debt += owed;
        if self.debt < self.min_sleep {
            return Duration::ZERO;
        }
        let sleeping = self.debt;
        self.debt = Duration::ZERO;
        // morph-lint: allow(nondet, throttle pacing is wall-time by definition; full priority (the sim setting) never consults it)
        let t0 = Instant::now();
        std::thread::sleep(sleeping);
        t0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_priority_never_sleeps() {
        let mut t = Throttle::new(1.0);
        assert_eq!(t.pay(Duration::from_millis(10)), Duration::ZERO);
    }

    #[test]
    fn half_priority_sleeps_about_as_long_as_it_works() {
        let mut t = Throttle::new(0.5);
        let slept = t.pay(Duration::from_millis(20));
        assert!(
            slept >= Duration::from_millis(15),
            "expected ≈20ms sleep, got {slept:?}"
        );
    }

    #[test]
    fn low_priority_sleeps_much_longer() {
        let mut t = Throttle::new(0.1);
        // 2ms of work at p=0.1 → 18ms owed.
        let slept = t.pay(Duration::from_millis(2));
        assert!(slept >= Duration::from_millis(14), "got {slept:?}");
    }

    #[test]
    fn debt_accumulates_below_min_sleep() {
        let mut t = Throttle::new(0.5);
        // 50µs of work → 50µs owed < 200µs min: no sleep yet.
        assert_eq!(t.pay(Duration::from_micros(50)), Duration::ZERO);
        assert_eq!(t.pay(Duration::from_micros(50)), Duration::ZERO);
        // Two more pushes it over the threshold.
        let slept = t.pay(Duration::from_micros(150));
        assert!(slept > Duration::ZERO);
    }

    #[test]
    fn escalation_raises_priority() {
        let mut t = Throttle::new(0.1);
        t.escalate(2.0);
        assert!((t.priority() - 0.2).abs() < 1e-9);
        t.escalate(100.0);
        assert_eq!(t.priority(), 1.0);
    }
}
