//! # morph-core
//!
//! The paper's contribution: **online, non-blocking relational schema
//! changes** — full outer join (FOJ) and vertical split transformations
//! executed while user transactions keep running, with the log as the
//! only channel of change propagation (Løland & Hvasshovd, EDBT 2006).
//!
//! ## The four steps (§3)
//!
//! 1. **Preparation** ([`prepare`] inside [`Transformer`]): create the
//!    transformed tables — containing at least one candidate key from
//!    each source — plus the indexes the propagation rules need (join
//!    attribute, S-key).
//! 2. **Initial population**: write a fuzzy mark, read the source
//!    tables *fuzzily* (chunked, without transaction locks), apply the
//!    relational operator and insert the result — the *initial image*,
//!    possibly inconsistent by construction.
//! 3. **Log propagation**: repeatedly drain the log tail through the
//!    operator-specific, idempotent rules (FOJ rules 1–7 in
//!    [`foj`], split rules 8–11 in [`split`]), throttled to a
//!    configurable priority; after each iteration, analyze the backlog
//!    and decide: another iteration, synchronize, or give up
//!    ([`DbError::CannotConverge`]).
//! 4. **Synchronization** ([`sync`]): one of *blocking commit*,
//!    *non-blocking abort* or *non-blocking commit* (§3.4), all three
//!    implemented, including source-to-target lock transfer under the
//!    Figure-2 compatibility matrix.
//!
//! ## Entry points
//!
//! ```no_run
//! use morph_core::{FojSpec, Transformer, TransformOptions};
//! # use morph_engine::Database;
//! # use std::sync::Arc;
//! # let db: Arc<Database> = Arc::new(Database::new());
//! let spec = FojSpec::new("orders", "customers", "orders_denorm", "cust_id", "id");
//! let handle = Transformer::spawn_foj(Arc::clone(&db), spec, TransformOptions::default());
//! // ... user transactions keep running ...
//! let report = handle.join().unwrap();
//! println!("latch pause: {:?}", report.sync.latch_pause);
//! ```
//!
//! [`DbError::CannotConverge`]: morph_common::DbError::CannotConverge

pub mod baseline;
pub mod cc;
pub mod foj;
pub mod lazy;
pub mod operator;
pub mod pool;
pub mod progress;
pub mod propagate;
pub mod report;
pub mod spec;
pub mod split;
pub mod sync;
#[cfg(test)]
mod sync_tests;
pub mod throttle;
pub mod transform;
pub mod union;

pub use foj::FojMapping;
pub use lazy::LazyMigration;
pub use operator::{CoalescePolicy, LaneScratch, TransformOperator};
pub use pool::{ApplyPool, EpochTask, PoolStats};
pub use progress::{Progress, ProgressHandle, ProgressPhase};
pub use report::{IterationStats, PopulationStats, SyncStats, TransformReport};
pub use spec::{
    FojSpec, NonConvergencePolicy, ParallelConfig, SplitMode, SplitSpec, SyncStrategy,
    TransformMode, TransformOptions,
};
pub use split::SplitMapping;
pub use transform::{TransformHandle, TransformJob, TransformPlan, Transformer};
pub use union::{UnionMapping, UnionSpec};
