//! Basic lock modes.

/// Record lock mode: shared (read) or exclusive (write).
///
/// The paper's propagation proof (§4.2) assumes "all write operations
/// on the source tables use exclusive locks; i.e. delta updates are not
/// allowed" — morphdb's engine takes an exclusive lock for every
/// insert/update/delete, satisfying that premise.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LockMode {
    /// Shared / read.
    Shared,
    /// Exclusive / write.
    Exclusive,
}

impl LockMode {
    /// Classic S/X compatibility: only shared–shared coexists.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// Whether holding `self` subsumes a request for `req`.
    pub fn covers(self, req: LockMode) -> bool {
        match (self, req) {
            (LockMode::Exclusive, _) => true,
            (LockMode::Shared, LockMode::Shared) => true,
            (LockMode::Shared, LockMode::Exclusive) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sx_compatibility() {
        assert!(LockMode::Shared.compatible(LockMode::Shared));
        assert!(!LockMode::Shared.compatible(LockMode::Exclusive));
        assert!(!LockMode::Exclusive.compatible(LockMode::Shared));
        assert!(!LockMode::Exclusive.compatible(LockMode::Exclusive));
    }

    #[test]
    fn coverage() {
        assert!(LockMode::Exclusive.covers(LockMode::Shared));
        assert!(LockMode::Exclusive.covers(LockMode::Exclusive));
        assert!(LockMode::Shared.covers(LockMode::Shared));
        assert!(!LockMode::Shared.covers(LockMode::Exclusive));
    }
}
