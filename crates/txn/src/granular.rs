//! Multigranularity (table-level intention) locking.
//!
//! The paper notes that the Figure-2 record-lock matrix "can easily be
//! extended to multigranularity locking" (§4.3, citing Bernstein et
//! al.). This module provides the classic hierarchy: transactions take
//! an *intention* lock (IS/IX) on a table before S/X record locks, and
//! whole-table operations take S or X at the table level.
//!
//! One caveat makes whole-table X locks awkward for the blocking
//! baseline: under pure wait–die a freshly begun (young) transaction
//! requesting table-X *dies* instead of waiting for older intention
//! holders; production systems give DDL lockers a wait priority. The
//! blocking baseline therefore keeps the freeze-based wait, and the
//! table-X path is exercised by older-than-holder lockers (see tests).
//!
//! Compatibility (requester × holder):
//!
//! ```text
//!        IS   IX    S   SIX    X
//!  IS     y    y    y    y     n
//!  IX     y    y    n    n     n
//!  S      y    n    y    n     n
//!  SIX    y    n    n    n     n
//!  X      n    n    n    n     n
//! ```
//!
//! Wait–die victim selection applies exactly as for record locks, with
//! the same transaction-id age ordering, so mixing granularities cannot
//! deadlock: every transaction acquires table locks strictly before
//! record locks on that table.

use crate::wait::Deadline;
use morph_common::{DbError, DbResult, TableId, TxnId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::Duration;

/// Table-granular lock mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum GranularMode {
    /// Intention shared: the transaction will take S record locks.
    IntentionShared,
    /// Intention exclusive: the transaction will take X record locks.
    IntentionExclusive,
    /// Whole-table shared.
    Shared,
    /// Shared + intention exclusive (read all, update some).
    SharedIntentionExclusive,
    /// Whole-table exclusive.
    Exclusive,
}

use GranularMode::*;

impl GranularMode {
    fn rank(self) -> usize {
        match self {
            IntentionShared => 0,
            IntentionExclusive => 1,
            Shared => 2,
            SharedIntentionExclusive => 3,
            Exclusive => 4,
        }
    }

    /// The classic multigranularity compatibility matrix.
    pub fn compatible(self, other: GranularMode) -> bool {
        const M: [[bool; 5]; 5] = [
            //        IS     IX     S      SIX    X
            /*IS */
            [true, true, true, true, false],
            /*IX */ [true, true, false, false, false],
            /*S  */ [true, false, true, false, false],
            /*SIX*/ [true, false, false, false, false],
            /*X  */ [false, false, false, false, false],
        ];
        M[self.rank()][other.rank()]
    }

    /// Whether holding `self` makes a request for `req` redundant.
    pub fn covers(self, req: GranularMode) -> bool {
        match (self, req) {
            (a, b) if a == b => true,
            (Exclusive, _) => true,
            (SharedIntentionExclusive, IntentionShared)
            | (SharedIntentionExclusive, IntentionExclusive)
            | (SharedIntentionExclusive, Shared) => true,
            (Shared, IntentionShared) => true,
            (IntentionExclusive, IntentionShared) => true,
            _ => false,
        }
    }

    /// Least upper bound of two held modes (used when a transaction
    /// escalates, e.g. IS + IX, or S + IX → SIX).
    pub fn combine(self, other: GranularMode) -> GranularMode {
        if self.covers(other) {
            return self;
        }
        if other.covers(self) {
            return other;
        }
        match (self, other) {
            (Shared, IntentionExclusive) | (IntentionExclusive, Shared) => SharedIntentionExclusive,
            _ => Exclusive,
        }
    }
}

#[derive(Default)]
struct TableEntry {
    grants: Vec<(TxnId, GranularMode)>,
}

/// Table-level lock manager (one entry per table). Record-level locks
/// remain in [`crate::LockManager`]; transactions take their intention
/// locks here first.
pub struct TableLocks {
    state: Mutex<HashMap<TableId, TableEntry>>,
    cv: Condvar,
    wait_timeout: Duration,
}

impl Default for TableLocks {
    fn default() -> Self {
        TableLocks::new(Duration::from_secs(10))
    }
}

impl TableLocks {
    /// Create with the given wait timeout (safety net; wait–die already
    /// prevents deadlock).
    pub fn new(wait_timeout: Duration) -> TableLocks {
        TableLocks {
            state: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            wait_timeout,
        }
    }

    /// Acquire (or escalate to) `mode` on `table`, blocking under
    /// wait–die.
    pub fn lock(&self, txn: TxnId, table: TableId, mode: GranularMode) -> DbResult<()> {
        let deadline = Deadline::after(self.wait_timeout);
        let mut state = self.state.lock();
        loop {
            let entry = state.entry(table).or_default();
            let own = entry.grants.iter().position(|(t, _)| *t == txn);
            let requested = match own {
                Some(i) if entry.grants[i].1.covers(mode) => return Ok(()),
                Some(i) => entry.grants[i].1.combine(mode),
                None => mode,
            };
            let conflicting: Vec<TxnId> = entry
                .grants
                .iter()
                .filter(|(t, m)| *t != txn && !requested.compatible(*m))
                .map(|(t, _)| *t)
                .collect();
            if conflicting.is_empty() {
                match own {
                    Some(i) => entry.grants[i].1 = requested,
                    None => entry.grants.push((txn, requested)),
                }
                return Ok(());
            }
            // Wait–die: wait only if older than every conflicting holder.
            if conflicting.iter().any(|h| !txn.is_older_than(*h)) {
                return Err(DbError::Deadlock(txn));
            }
            if deadline.wait_on(&self.cv, &mut state) {
                return Err(DbError::LockTimeout(txn));
            }
        }
    }

    /// Release every table lock held by `txn`.
    pub fn release_all(&self, txn: TxnId) {
        let mut state = self.state.lock();
        state.retain(|_, entry| {
            entry.grants.retain(|(t, _)| *t != txn);
            !entry.grants.is_empty()
        });
        drop(state);
        self.cv.notify_all();
    }

    /// Current grants on a table (diagnostics and tests).
    pub fn holders(&self, table: TableId) -> Vec<(TxnId, GranularMode)> {
        self.state
            .lock()
            .get(&table)
            .map(|e| e.grants.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    const T: TableId = TableId(1);

    #[test]
    fn matrix_is_the_textbook_one() {
        let modes = [
            IntentionShared,
            IntentionExclusive,
            Shared,
            SharedIntentionExclusive,
            Exclusive,
        ];
        // Symmetry.
        for &a in &modes {
            for &b in &modes {
                assert_eq!(a.compatible(b), b.compatible(a), "{a:?} vs {b:?}");
            }
        }
        // Spot checks against the table in the module docs.
        assert!(IntentionShared.compatible(SharedIntentionExclusive));
        assert!(IntentionExclusive.compatible(IntentionExclusive));
        assert!(!IntentionExclusive.compatible(Shared));
        assert!(!Shared.compatible(SharedIntentionExclusive));
        assert!(!Exclusive.compatible(IntentionShared));
    }

    #[test]
    fn coverage_and_combination() {
        assert!(Exclusive.covers(IntentionExclusive));
        assert!(SharedIntentionExclusive.covers(Shared));
        assert!(!IntentionShared.covers(IntentionExclusive));
        assert_eq!(Shared.combine(IntentionExclusive), SharedIntentionExclusive);
        assert_eq!(
            IntentionShared.combine(IntentionExclusive),
            IntentionExclusive
        );
        assert_eq!(Shared.combine(Exclusive), Exclusive);
    }

    #[test]
    fn intention_locks_coexist_table_x_excludes() {
        let tl = TableLocks::default();
        tl.lock(TxnId(1), T, IntentionExclusive).unwrap();
        tl.lock(TxnId(2), T, IntentionExclusive).unwrap();
        tl.lock(TxnId(3), T, IntentionShared).unwrap();
        assert_eq!(tl.holders(T).len(), 3);
        // A younger whole-table X requester dies against the holders.
        assert!(matches!(
            tl.lock(TxnId(9), T, Exclusive),
            Err(DbError::Deadlock(_))
        ));
    }

    #[test]
    fn older_table_x_waits_for_intention_holders() {
        let tl = Arc::new(TableLocks::default());
        tl.lock(TxnId(5), T, IntentionExclusive).unwrap();
        let got = Arc::new(AtomicBool::new(false));
        let (tl2, got2) = (Arc::clone(&tl), Arc::clone(&got));
        let h = std::thread::spawn(move || {
            tl2.lock(TxnId(1), T, Exclusive).unwrap();
            got2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!got.load(Ordering::SeqCst), "X must wait for IX holder");
        tl.release_all(TxnId(5));
        h.join().unwrap();
        assert!(got.load(Ordering::SeqCst));
        // The X holder now blocks younger intention lockers.
        assert!(matches!(
            tl.lock(TxnId(9), T, IntentionShared),
            Err(DbError::Deadlock(_))
        ));
        tl.release_all(TxnId(1));
        tl.lock(TxnId(9), T, IntentionShared).unwrap();
    }

    #[test]
    fn escalation_in_place() {
        let tl = TableLocks::default();
        tl.lock(TxnId(1), T, IntentionShared).unwrap();
        tl.lock(TxnId(1), T, Shared).unwrap();
        tl.lock(TxnId(1), T, IntentionExclusive).unwrap();
        assert_eq!(tl.holders(T), vec![(TxnId(1), SharedIntentionExclusive)]);
        // Escalating to SIX conflicts with another IX holder.
        tl.release_all(TxnId(1));
        tl.lock(TxnId(1), T, IntentionShared).unwrap();
        tl.lock(TxnId(2), T, IntentionExclusive).unwrap();
        // Txn 2 (younger) cannot escalate to S while 2's own IX…
        // rather: txn 2 requesting S would need SIX vs txn 1's IS —
        // compatible? SIX vs IS = y, so it succeeds:
        tl.lock(TxnId(2), T, Shared).unwrap();
        assert_eq!(
            tl.holders(T)
                .into_iter()
                .find(|(t, _)| *t == TxnId(2))
                .unwrap()
                .1,
            SharedIntentionExclusive
        );
    }

    #[test]
    fn release_unblocks_waiters() {
        let tl = Arc::new(TableLocks::new(Duration::from_millis(200)));
        tl.lock(TxnId(5), T, Exclusive).unwrap();
        // Older waiter times out if never released…
        let t0 = Instant::now();
        assert!(matches!(
            tl.lock(TxnId(1), T, IntentionShared),
            Err(DbError::LockTimeout(_))
        ));
        assert!(t0.elapsed() >= Duration::from_millis(150));
        tl.release_all(TxnId(5));
        tl.lock(TxnId(1), T, IntentionShared).unwrap();
    }
}
