//! Bounded condvar waiting, shared by the record lock manager and the
//! granular table-lock manager.
//!
//! This module is the *single* place in `crates/txn` that consults the
//! wall clock (morph-lint pass 2): lock-wait deadlines are inherently
//! wall-time — they bound how long a live thread may block on another
//! — and never feed back into replayed state. The single-threaded sim
//! never contends, so these waits never fire there; keeping the two
//! `Instant::now()` calls behind one audited seam is what lets the
//! rest of the crate stay lint-clean.

use parking_lot::{Condvar, MutexGuard};
use std::time::{Duration, Instant};

/// An absolute wall-clock deadline for a lock wait.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Deadline {
        Deadline {
            // morph-lint: allow(nondet, lock-wait deadline; wall-time bound on blocking, never replayed state)
            at: Instant::now() + timeout,
        }
    }

    /// Has the deadline already passed?
    pub fn expired(&self) -> bool {
        // morph-lint: allow(nondet, lock-wait deadline; wall-time bound on blocking, never replayed state)
        Instant::now() >= self.at
    }

    /// Block on `cv` until notified or the deadline passes. Returns
    /// `true` when the wait timed out (including a deadline already in
    /// the past), `false` when the thread was woken and should
    /// re-examine the guarded state.
    pub fn wait_on<T>(&self, cv: &Condvar, guard: &mut MutexGuard<'_, T>) -> bool {
        if self.expired() {
            return true;
        }
        cv.wait_until(guard, self.at).timed_out()
    }
}
