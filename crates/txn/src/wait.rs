//! Bounded condvar waiting, shared by the record lock manager and the
//! granular table-lock manager.
//!
//! This module is the *single* place in `crates/txn` that consults the
//! wall clock (morph-lint pass 2): lock-wait deadlines are inherently
//! wall-time — they bound how long a live thread may block on another
//! — and never feed back into replayed state. The single-threaded sim
//! never contends, so these waits never fire there; keeping the two
//! `Instant::now()` calls behind one audited seam is what lets the
//! rest of the crate stay lint-clean.

use parking_lot::{Condvar, MutexGuard};
use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    /// Lock waits this thread has entered (see [`thread_lock_waits`]).
    static LOCK_WAITS: Cell<u64> = const { Cell::new(0) };
}

/// Number of times *this thread* has blocked on a transaction-lock
/// condvar. Every lock wait in the engine funnels through
/// [`Deadline::wait_on`], so this is an exact per-thread count — the
/// observable behind the MVCC promise: a snapshot reader's count stays
/// at zero no matter what migrations and writers are doing (a global
/// counter could not assert that; concurrent writers legitimately wait
/// on each other).
pub fn thread_lock_waits() -> u64 {
    LOCK_WAITS.with(Cell::get)
}

/// An absolute wall-clock deadline for a lock wait.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Deadline {
        Deadline {
            // morph-lint: allow(nondet, lock-wait deadline; wall-time bound on blocking, never replayed state)
            at: Instant::now() + timeout,
        }
    }

    /// Has the deadline already passed?
    pub fn expired(&self) -> bool {
        // morph-lint: allow(nondet, lock-wait deadline; wall-time bound on blocking, never replayed state)
        Instant::now() >= self.at
    }

    /// Block on `cv` until notified or the deadline passes. Returns
    /// `true` when the wait timed out (including a deadline already in
    /// the past), `false` when the thread was woken and should
    /// re-examine the guarded state.
    pub fn wait_on<T>(&self, cv: &Condvar, guard: &mut MutexGuard<'_, T>) -> bool {
        if self.expired() {
            return true;
        }
        LOCK_WAITS.with(|c| c.set(c.get() + 1));
        cv.wait_until(guard, self.at).timed_out()
    }
}
