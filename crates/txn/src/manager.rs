//! The lock manager.
//!
//! Sharded record-lock table with strict 2PL semantics, **wait–die**
//! deadlock prevention (an older transaction waits for a younger one;
//! a younger requester is killed and must restart), optional wait
//! timeouts, and origin-tagged grants implementing the Figure-2
//! compatibility matrix on transformed tables.
//!
//! The transformation framework additionally needs to *transfer* locks:
//! at synchronization time it materializes, on the transformed table,
//! the locks that active transactions hold on source-table records
//! (§3.4, §4.3). [`LockManager::grant_transferred`] installs such a
//! grant unconditionally — legal because at that moment no new
//! transaction has been admitted to the transformed table yet, and
//! transferred grants are mutually compatible by construction.

use crate::mode::LockMode;
use crate::origin::{compatible, LockOrigin};
use crate::wait::Deadline;
use morph_common::{DbError, DbResult, Key, TableId, TxnId};
use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Duration;

const LOCK_SHARDS: usize = 64;
const HELD_SHARDS: usize = 16;

/// Fully qualified record-lock name.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LockKey {
    /// Table the record lives in.
    pub table: TableId,
    /// Primary key of the record.
    pub key: Key,
}

#[derive(Clone, Debug)]
struct Grant {
    txn: TxnId,
    mode: LockMode,
    origin: LockOrigin,
}

#[derive(Default)]
struct LockEntry {
    grants: Vec<Grant>,
}

struct Shard {
    map: Mutex<HashMap<LockKey, LockEntry>>,
    cv: Condvar,
}

/// Tuning knobs for the lock manager.
#[derive(Clone, Copy, Debug)]
pub struct LockManagerConfig {
    /// Upper bound on a single lock wait before the requester is given
    /// [`DbError::LockTimeout`]. Wait–die already prevents deadlock;
    /// the timeout is a safety net against pathological convoys.
    pub wait_timeout: Duration,
}

impl Default for LockManagerConfig {
    fn default() -> Self {
        LockManagerConfig {
            wait_timeout: Duration::from_secs(10),
        }
    }
}

/// Sharded record-lock manager.
pub struct LockManager {
    shards: Vec<Shard>,
    /// Per-transaction set of held lock names, sharded by txn id, so
    /// commit/abort can release everything without scanning the world.
    held: Vec<Mutex<HashMap<TxnId, HashSet<LockKey>>>>,
    config: LockManagerConfig,
    /// Blocking waits entered on this manager (statistics; the
    /// per-thread tally lives in [`crate::wait::thread_lock_waits`]).
    waits: std::sync::atomic::AtomicU64,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(LockManagerConfig::default())
    }
}

impl LockManager {
    /// Create a lock manager.
    pub fn new(config: LockManagerConfig) -> LockManager {
        LockManager {
            shards: (0..LOCK_SHARDS)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            held: (0..HELD_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            config,
            waits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Total blocking lock waits entered on this manager.
    pub fn waits(&self) -> u64 {
        self.waits.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn shard_of(&self, lk: &LockKey) -> &Shard {
        let mut h = DefaultHasher::new();
        lk.hash(&mut h);
        &self.shards[(h.finish() as usize) % LOCK_SHARDS]
    }

    fn held_shard(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, HashSet<LockKey>>> {
        &self.held[(txn.0 as usize) % HELD_SHARDS]
    }

    fn note_held(&self, txn: TxnId, lk: LockKey) {
        self.held_shard(txn)
            .lock()
            .entry(txn)
            .or_default()
            .insert(lk);
    }

    /// Acquire an ordinary (native-origin) record lock, blocking under
    /// wait–die.
    pub fn lock(&self, txn: TxnId, table: TableId, key: &Key, mode: LockMode) -> DbResult<()> {
        self.lock_tagged(txn, table, key, mode, LockOrigin::Native)
    }

    /// Acquire a lock with an explicit origin tag (Figure-2 semantics
    /// apply between grants of different origins).
    pub fn lock_tagged(
        &self,
        txn: TxnId,
        table: TableId,
        key: &Key,
        mode: LockMode,
        origin: LockOrigin,
    ) -> DbResult<()> {
        let lk = LockKey {
            table,
            key: key.clone(),
        };
        let shard = self.shard_of(&lk);
        let deadline = Deadline::after(self.config.wait_timeout);
        let mut map = shard.map.lock();
        loop {
            let entry = map.entry(lk.clone()).or_default();

            // Re-entrant: an existing grant that covers the request (or
            // can be upgraded without conflict) is enough.
            if let Some(own) = entry
                .grants
                .iter()
                .position(|g| g.txn == txn && g.origin == origin)
            {
                if entry.grants[own].mode.covers(mode) {
                    return Ok(());
                }
                // Upgrade S -> X: allowed if no *other* grant conflicts
                // with the exclusive request.
                let conflicting: Vec<&Grant> = entry
                    .grants
                    .iter()
                    .filter(|g| {
                        let own = g.txn == txn && g.origin == origin;
                        !own && !compatible((g.origin, g.mode), (origin, mode))
                    })
                    .collect();
                if conflicting.is_empty() {
                    entry.grants[own].mode = LockMode::Exclusive;
                    return Ok(());
                }
                // Wait–die applies to upgrades too; otherwise two
                // readers upgrading the same record deadlock.
                if conflicting.iter().any(|g| !txn.is_older_than(g.txn)) {
                    return Err(DbError::Deadlock(txn));
                }
            } else {
                let conflicting: Vec<&Grant> = entry
                    .grants
                    .iter()
                    .filter(|g| g.txn != txn && !compatible((g.origin, g.mode), (origin, mode)))
                    .collect();
                if conflicting.is_empty() {
                    entry.grants.push(Grant { txn, mode, origin });
                    drop(map);
                    self.note_held(txn, lk);
                    return Ok(());
                }
                // Wait–die: the requester may wait only if it is older
                // than every conflicting holder; otherwise it dies.
                if conflicting.iter().any(|g| !txn.is_older_than(g.txn)) {
                    return Err(DbError::Deadlock(txn));
                }
            }

            // Wait for a release, bounded by the timeout.
            self.waits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if deadline.wait_on(&shard.cv, &mut map) {
                return Err(DbError::LockTimeout(txn));
            }
        }
    }

    /// Non-blocking acquire: `Ok(true)` if granted, `Ok(false)` if a
    /// conflicting grant exists.
    pub fn try_lock_tagged(
        &self,
        txn: TxnId,
        table: TableId,
        key: &Key,
        mode: LockMode,
        origin: LockOrigin,
    ) -> bool {
        let lk = LockKey {
            table,
            key: key.clone(),
        };
        let shard = self.shard_of(&lk);
        let mut map = shard.map.lock();
        let entry = map.entry(lk.clone()).or_default();
        if let Some(own) = entry
            .grants
            .iter()
            .position(|g| g.txn == txn && g.origin == origin)
        {
            if entry.grants[own].mode.covers(mode) {
                return true;
            }
            let conflict = entry.grants.iter().any(|g| {
                let own = g.txn == txn && g.origin == origin;
                !own && !compatible((g.origin, g.mode), (origin, mode))
            });
            if !conflict {
                entry.grants[own].mode = LockMode::Exclusive;
                return true;
            }
            return false;
        }
        let conflict = entry
            .grants
            .iter()
            .any(|g| g.txn != txn && !compatible((g.origin, g.mode), (origin, mode)));
        if conflict {
            return false;
        }
        entry.grants.push(Grant { txn, mode, origin });
        drop(map);
        self.note_held(txn, lk);
        true
    }

    /// Unconditionally install a transferred grant (synchronization
    /// step, §3.4). See the module docs for why this is sound.
    pub fn grant_transferred(
        &self,
        txn: TxnId,
        table: TableId,
        key: &Key,
        mode: LockMode,
        origin: LockOrigin,
    ) {
        debug_assert!(origin.is_transferred());
        let lk = LockKey {
            table,
            key: key.clone(),
        };
        let shard = self.shard_of(&lk);
        {
            let mut map = shard.map.lock();
            let entry = map.entry(lk.clone()).or_default();
            if let Some(own) = entry
                .grants
                .iter()
                .position(|g| g.txn == txn && g.origin == origin)
            {
                if !entry.grants[own].mode.covers(mode) {
                    entry.grants[own].mode = LockMode::Exclusive;
                }
            } else {
                entry.grants.push(Grant { txn, mode, origin });
            }
        }
        self.note_held(txn, lk);
    }

    /// Release every lock `txn` holds (strict 2PL release point:
    /// commit, or rollback completion).
    pub fn release_all(&self, txn: TxnId) {
        let keys = {
            let mut held = self.held_shard(txn).lock();
            held.remove(&txn).unwrap_or_default()
        };
        for lk in keys {
            let shard = self.shard_of(&lk);
            let mut map = shard.map.lock();
            if let Some(entry) = map.get_mut(&lk) {
                entry.grants.retain(|g| g.txn != txn);
                if entry.grants.is_empty() {
                    map.remove(&lk);
                }
            }
            drop(map);
            shard.cv.notify_all();
        }
    }

    /// Release one specific lock early (used by the propagator when it
    /// retires a mirrored lock).
    pub fn release_one(&self, txn: TxnId, table: TableId, key: &Key) {
        let lk = LockKey {
            table,
            key: key.clone(),
        };
        {
            let mut held = self.held_shard(txn).lock();
            if let Some(set) = held.get_mut(&txn) {
                set.remove(&lk);
            }
        }
        let shard = self.shard_of(&lk);
        let mut map = shard.map.lock();
        if let Some(entry) = map.get_mut(&lk) {
            entry.grants.retain(|g| g.txn != txn);
            if entry.grants.is_empty() {
                map.remove(&lk);
            }
        }
        drop(map);
        shard.cv.notify_all();
    }

    /// Current grants on a record (diagnostics and tests).
    pub fn holders(&self, table: TableId, key: &Key) -> Vec<(TxnId, LockMode, LockOrigin)> {
        let lk = LockKey {
            table,
            key: key.clone(),
        };
        let shard = self.shard_of(&lk);
        let map = shard.map.lock();
        map.get(&lk)
            .map(|e| e.grants.iter().map(|g| (g.txn, g.mode, g.origin)).collect())
            .unwrap_or_default()
    }

    /// Number of locks currently held by `txn`.
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.held_shard(txn)
            .lock()
            .get(&txn)
            .map_or(0, HashSet::len)
    }

    /// The record keys `txn` currently holds locks on, restricted to
    /// `table` (the synchronization step transfers exactly these).
    pub fn held_keys_in(&self, txn: TxnId, table: TableId) -> Vec<(Key, LockMode)> {
        let held = self.held_shard(txn).lock();
        let Some(set) = held.get(&txn) else {
            return Vec::new();
        };
        let names: Vec<LockKey> = set.iter().filter(|lk| lk.table == table).cloned().collect();
        drop(held);
        let mut out = Vec::new();
        for lk in names {
            let shard = self.shard_of(&lk);
            let map = shard.map.lock();
            if let Some(entry) = map.get(&lk) {
                if let Some(g) = entry.grants.iter().find(|g| g.txn == txn) {
                    out.push((lk.key.clone(), g.mode));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::default())
    }

    fn fast_mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(LockManagerConfig {
            wait_timeout: Duration::from_millis(100),
        }))
    }

    const T: TableId = TableId(1);

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let m = mgr();
        let k = Key::single(1);
        m.lock(TxnId(1), T, &k, LockMode::Shared).unwrap();
        m.lock(TxnId(2), T, &k, LockMode::Shared).unwrap();
        assert_eq!(m.holders(T, &k).len(), 2);
        // Txn 3 (younger than both holders) dies requesting X.
        assert!(matches!(
            m.lock(TxnId(3), T, &k, LockMode::Exclusive),
            Err(DbError::Deadlock(TxnId(3)))
        ));
    }

    #[test]
    fn reentrant_and_upgrade() {
        let m = mgr();
        let k = Key::single(1);
        m.lock(TxnId(1), T, &k, LockMode::Shared).unwrap();
        m.lock(TxnId(1), T, &k, LockMode::Shared).unwrap();
        m.lock(TxnId(1), T, &k, LockMode::Exclusive).unwrap(); // upgrade, sole holder
        assert_eq!(
            m.holders(T, &k),
            vec![(TxnId(1), LockMode::Exclusive, LockOrigin::Native)]
        );
        // X covers a later S request.
        m.lock(TxnId(1), T, &k, LockMode::Shared).unwrap();
        assert_eq!(m.held_count(TxnId(1)), 1);
    }

    #[test]
    fn wait_die_older_waits_younger_dies() {
        let m = fast_mgr();
        let k = Key::single(1);
        // Txn 5 holds X.
        m.lock(TxnId(5), T, &k, LockMode::Exclusive).unwrap();
        // Younger txn 9 dies immediately.
        assert!(matches!(
            m.lock(TxnId(9), T, &k, LockMode::Shared),
            Err(DbError::Deadlock(TxnId(9)))
        ));
        // Older txn 2 waits; after release it succeeds.
        let m2 = Arc::clone(&m);
        let got = Arc::new(AtomicBool::new(false));
        let got2 = Arc::clone(&got);
        let k2 = k.clone();
        let h = std::thread::spawn(move || {
            m2.lock(TxnId(2), T, &k2, LockMode::Shared).unwrap();
            got2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!got.load(Ordering::SeqCst), "older txn should be waiting");
        m.release_all(TxnId(5));
        h.join().unwrap();
        assert!(got.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_times_out() {
        let m = fast_mgr();
        let k = Key::single(1);
        m.lock(TxnId(5), T, &k, LockMode::Exclusive).unwrap();
        let start = Instant::now();
        let err = m.lock(TxnId(1), T, &k, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout(TxnId(1))));
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn release_all_frees_everything() {
        let m = mgr();
        for i in 0..10 {
            m.lock(TxnId(1), T, &Key::single(i), LockMode::Exclusive)
                .unwrap();
        }
        assert_eq!(m.held_count(TxnId(1)), 10);
        m.release_all(TxnId(1));
        assert_eq!(m.held_count(TxnId(1)), 0);
        // Everyone can lock now.
        m.lock(TxnId(99), T, &Key::single(3), LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn try_lock_does_not_block() {
        let m = mgr();
        let k = Key::single(1);
        m.lock(TxnId(1), T, &k, LockMode::Exclusive).unwrap();
        assert!(!m.try_lock_tagged(TxnId(2), T, &k, LockMode::Shared, LockOrigin::Native));
        assert!(m.try_lock_tagged(
            TxnId(2),
            T,
            &Key::single(2),
            LockMode::Shared,
            LockOrigin::Native
        ));
    }

    #[test]
    fn transferred_grants_ignore_each_other() {
        let m = mgr();
        let k = Key::single(1);
        // An R-write and an S-write on the same T record: both granted.
        m.grant_transferred(TxnId(1), T, &k, LockMode::Exclusive, LockOrigin::SourceR);
        m.grant_transferred(TxnId(2), T, &k, LockMode::Exclusive, LockOrigin::SourceS);
        assert_eq!(m.holders(T, &k).len(), 2);
        // A native reader is blocked by the transferred writes (younger
        // txn: dies; per Figure 2, T.r vs R.w = conflict).
        assert!(matches!(
            m.lock(TxnId(9), T, &k, LockMode::Shared),
            Err(DbError::Deadlock(_))
        ));
        // Native reads are compatible with transferred reads.
        let k2 = Key::single(2);
        m.grant_transferred(TxnId(1), T, &k2, LockMode::Shared, LockOrigin::SourceR);
        m.lock(TxnId(9), T, &k2, LockMode::Shared).unwrap();
    }

    #[test]
    fn release_one_unblocks_record() {
        let m = mgr();
        let k = Key::single(1);
        m.grant_transferred(TxnId(1), T, &k, LockMode::Exclusive, LockOrigin::SourceR);
        assert!(!m.try_lock_tagged(TxnId(5), T, &k, LockMode::Exclusive, LockOrigin::Native));
        m.release_one(TxnId(1), T, &k);
        assert!(m.try_lock_tagged(TxnId(5), T, &k, LockMode::Exclusive, LockOrigin::Native));
    }

    #[test]
    fn held_keys_in_reports_table_locks() {
        let m = mgr();
        m.lock(TxnId(1), T, &Key::single(1), LockMode::Exclusive)
            .unwrap();
        m.lock(TxnId(1), T, &Key::single(2), LockMode::Shared)
            .unwrap();
        m.lock(TxnId(1), TableId(2), &Key::single(3), LockMode::Shared)
            .unwrap();
        let mut keys = m.held_keys_in(TxnId(1), T);
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            keys,
            vec![
                (Key::single(1), LockMode::Exclusive),
                (Key::single(2), LockMode::Shared)
            ]
        );
    }

    #[test]
    fn concurrent_disjoint_locking_is_safe() {
        let m = mgr();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let k = Key::single((t * 1000 + i) as i64);
                    m.lock(TxnId(t), T, &k, LockMode::Exclusive).unwrap();
                }
                m.release_all(TxnId(t));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            assert_eq!(m.held_count(TxnId(t)), 0);
        }
    }

    #[test]
    fn contended_same_key_throughput() {
        // Threads fight over a tiny keyspace with retries; the invariant
        // is simply that everyone terminates (wait-die => no deadlock).
        let m = Arc::new(LockManager::new(LockManagerConfig {
            wait_timeout: Duration::from_secs(5),
        }));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut txn_counter = t * 1_000_000;
                let mut committed = 0;
                while committed < 50 {
                    txn_counter += 1;
                    let txn = TxnId(txn_counter);
                    let mut ok = true;
                    for i in 0..5 {
                        let k = Key::single(((txn_counter + i) % 7) as i64);
                        if m.lock(txn, T, &k, LockMode::Exclusive).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    m.release_all(txn);
                    if ok {
                        committed += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
