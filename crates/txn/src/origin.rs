//! Origin-tagged lock compatibility — Figure 2 of the paper.
//!
//! When a FOJ transformation synchronizes, locks held by transactions
//! on the source tables R and S are transferred onto the transformed
//! table T. An R-write and an S-write can land on the *same* T-record
//! (it is the join of one row from each source) without actually
//! conflicting — they modify disjoint attributes, and their real
//! conflict, if any, was already resolved by the concurrency controller
//! in the source table. The paper therefore extends the compatibility
//! matrix (Figure 2):
//!
//! ```text
//!        R.r  S.r  T.r  R.w  S.w  T.w
//!  R.r    y    y    y    y    y    n
//!  S.r    y    y    y    y    y    n
//!  T.r    y    y    y    n    n    n
//!  R.w    y    y    n    y    y    n
//!  S.w    y    y    n    y    y    n
//!  T.w    n    n    n    n    n    n
//! ```
//!
//! In words: transferred locks (origin R or S) are always compatible
//! with each other; locks taken natively on T (origin T) behave as
//! ordinary S/X locks against each other; and a transferred lock is
//! compatible with a native lock only when both are reads.

use crate::mode::LockMode;

/// Where a lock on a transformed table came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LockOrigin {
    /// Transferred from source table R (for split: from source T onto
    /// the R target).
    SourceR,
    /// Transferred from source table S.
    SourceS,
    /// Taken natively on the table by a new transaction (this is also
    /// the origin of every ordinary lock outside a transformation).
    Native,
}

impl LockOrigin {
    /// Whether this lock was transferred from a source table.
    pub fn is_transferred(self) -> bool {
        !matches!(self, LockOrigin::Native)
    }
}

/// The Figure-2 compatibility test for two lock grants on the same
/// record of a transformed table.
pub fn compatible(
    (origin_a, mode_a): (LockOrigin, LockMode),
    (origin_b, mode_b): (LockOrigin, LockMode),
) -> bool {
    match (origin_a.is_transferred(), origin_b.is_transferred()) {
        // Two transferred locks never conflict: their true conflict was
        // resolved in the source tables.
        (true, true) => true,
        // Two native locks: ordinary S/X.
        (false, false) => mode_a.compatible(mode_b),
        // Mixed: compatible only if both are reads.
        _ => mode_a == LockMode::Shared && mode_b == LockMode::Shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive as W, Shared as R};
    use LockOrigin::{Native, SourceR, SourceS};

    /// The six row/column labels of Figure 2, in the paper's order.
    const LABELS: [(LockOrigin, LockMode); 6] = [
        (SourceR, R), // R.r
        (SourceS, R), // S.r
        (Native, R),  // T.r
        (SourceR, W), // R.w
        (SourceS, W), // S.w
        (Native, W),  // T.w
    ];

    /// Figure 2, transcribed literally (true = "y").
    const FIGURE_2: [[bool; 6]; 6] = [
        //        R.r    S.r    T.r    R.w    S.w    T.w
        /*R.r*/
        [true, true, true, true, true, false],
        /*S.r*/ [true, true, true, true, true, false],
        /*T.r*/ [true, true, true, false, false, false],
        /*R.w*/ [true, true, false, true, true, false],
        /*S.w*/ [true, true, false, true, true, false],
        /*T.w*/ [false, false, false, false, false, false],
    ];

    #[test]
    fn matrix_matches_paper_figure_2() {
        for (i, &a) in LABELS.iter().enumerate() {
            for (j, &b) in LABELS.iter().enumerate() {
                assert_eq!(
                    compatible(a, b),
                    FIGURE_2[i][j],
                    "mismatch at row {i} col {j}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        for &a in &LABELS {
            for &b in &LABELS {
                assert_eq!(compatible(a, b), compatible(b, a));
            }
        }
    }

    #[test]
    fn native_only_reduces_to_sx() {
        assert!(compatible((Native, R), (Native, R)));
        assert!(!compatible((Native, R), (Native, W)));
        assert!(!compatible((Native, W), (Native, W)));
    }

    #[test]
    fn transferred_writes_coexist() {
        // The paper's motivating case: an R-write and an S-write landing
        // on the same T record do not conflict.
        assert!(compatible((SourceR, W), (SourceS, W)));
        // Even two writes transferred from the same source table — they
        // were serialized there already.
        assert!(compatible((SourceR, W), (SourceR, W)));
    }

    #[test]
    fn origin_is_transferred() {
        assert!(SourceR.is_transferred());
        assert!(SourceS.is_transferred());
        assert!(!Native.is_transferred());
    }
}
