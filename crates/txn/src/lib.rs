//! # morph-txn
//!
//! Transaction-level concurrency control: strict two-phase record
//! locking with wait–die deadlock prevention, plus the paper's
//! **origin-tagged lock compatibility matrix** (Figure 2 of Løland &
//! Hvasshovd, EDBT 2006).
//!
//! During the synchronization step of a transformation, locks held by
//! transactions on the *source* tables are transferred to the
//! corresponding records of the *transformed* table. Two source-table
//! operations can map to the same transformed record (a row of T is the
//! join of one R-row and one S-row) even though they touch disjoint
//! attributes — so transferred locks must not conflict with each other,
//! only with locks taken natively on the transformed table. The
//! [`origin`] module encodes that matrix literally and tests it against
//! the paper's figure.

pub mod granular;
pub mod manager;
pub mod mode;
pub mod origin;
pub mod wait;

pub use granular::{GranularMode, TableLocks};
pub use manager::{LockManager, LockManagerConfig};
pub use mode::LockMode;
pub use origin::LockOrigin;
pub use wait::{thread_lock_waits, Deadline};
