//! Shared-nothing shard router (SLSM direction, PAPERS.md).
//!
//! A [`ShardedDatabase`] is a key-hash router over N fully independent
//! [`Database`] instances — each shard owns its storage, WAL, lock
//! manager, transaction registry, and MVCC state. Nothing on the data
//! path takes a lock that crosses shards: the router's only shared
//! state is the immutable shard vector and the per-table routing
//! specification, both fixed before traffic starts. Threads play the
//! role of nodes; the single-engine ceiling the benches hit
//! (wal_commit_rate ~7.4K/s at 8 clients) lifts by running N commit
//! pipelines that never contend.
//!
//! Routing defaults to a stable FNV-1a hash of the primary key. A
//! table can opt into routing by a column subset
//! ([`ShardedDatabase::route_by`]) so that migrations whose
//! correctness needs co-partitioning (a FOJ's two sources on the join
//! attribute, a split source on the split column) keep every joined /
//! merged record group within one shard — the classic shard-key design
//! decision, made explicit per table.

use crate::counters::CountersSnapshot;
use crate::database::Database;
use morph_common::{DbError, DbResult, Key, Schema, Value};
use morph_txn::LockManagerConfig;
use morph_wal::{LogManager, WalMode};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Stable 64-bit FNV-1a over a canonical value encoding; must never
/// change across versions or shard counts (it decides data placement).
fn hash_values(values: &[Value]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    };
    for v in values {
        match v {
            Value::Null => eat(0),
            Value::Int(i) => {
                eat(1);
                for b in i.to_le_bytes() {
                    eat(b);
                }
            }
            Value::Str(s) => {
                eat(2);
                for &b in s.as_bytes() {
                    eat(b);
                }
                eat(0xff);
            }
        }
    }
    h
}

/// Per-shard counter report plus the field-wise aggregate — what
/// benches and tests read instead of poking individual engines.
#[derive(Clone, Debug, Default)]
pub struct ShardCounters {
    /// One snapshot per shard, in shard order.
    pub per_shard: Vec<CountersSnapshot>,
    /// Field-wise sum of `per_shard`.
    pub total: CountersSnapshot,
}

/// A key-hash router over N shared-nothing engine shards.
pub struct ShardedDatabase {
    shards: Vec<Arc<Database>>,
    /// Optional routing columns per table name (positions into the
    /// row); tables not listed route by primary key.
    route_cols: RwLock<HashMap<String, Vec<usize>>>,
    /// Leading key columns to skip when routing point accesses (union
    /// targets: skip the provenance tag).
    key_skip: RwLock<HashMap<String, usize>>,
}

impl ShardedDatabase {
    /// N shards, each with its own group-commit WAL (`WalMode::Group`)
    /// and default lock configuration.
    pub fn new(shards: usize) -> ShardedDatabase {
        Self::with_wal_mode(shards, WalMode::Group)
    }

    /// N shards with a chosen per-shard WAL mode.
    pub fn with_wal_mode(shards: usize, mode: WalMode) -> ShardedDatabase {
        let shards = (0..shards.max(1))
            .map(|_| {
                Arc::new(Database::with_log(
                    Arc::new(LogManager::new_in(mode)),
                    LockManagerConfig::default(),
                ))
            })
            .collect();
        Self::from_parts(shards)
    }

    /// Assemble a router from caller-built shards (the crash simulator
    /// builds shards over fault-injecting WAL backends, then routes
    /// through them like production code would).
    pub fn from_parts(shards: Vec<Arc<Database>>) -> ShardedDatabase {
        assert!(!shards.is_empty(), "a router needs at least one shard");
        ShardedDatabase {
            shards,
            route_cols: RwLock::new(HashMap::new()),
            key_skip: RwLock::new(HashMap::new()),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct handle to one shard's engine.
    pub fn shard(&self, i: usize) -> &Arc<Database> {
        &self.shards[i]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[Arc<Database>] {
        &self.shards
    }

    /// Create `name` on every shard (same schema everywhere; table ids
    /// are per-shard).
    pub fn create_table(&self, name: &str, schema: Schema) -> DbResult<()> {
        for db in &self.shards {
            db.create_table(name, schema.clone())?;
        }
        Ok(())
    }

    /// Route `table` by the given row positions instead of its primary
    /// key (co-partitioning for migrations: both FOJ sources by the
    /// join attribute, a split source by the split column). Must be
    /// set before any rows are inserted.
    pub fn route_by(&self, table: &str, cols: Vec<usize>) {
        self.route_cols.write().insert(table.to_owned(), cols);
    }

    /// Shard index for a full row of `table`.
    pub fn shard_of_row(&self, table: &str, values: &[Value]) -> DbResult<usize> {
        if let Some(cols) = self.route_cols.read().get(table) {
            let routed: Vec<Value> = cols
                .iter()
                .map(|&c| values.get(c).cloned().unwrap_or(Value::Null))
                .collect();
            return Ok(hash_values(&routed) as usize % self.shards.len());
        }
        let schema = self.shards[0].catalog().get(table)?.schema().clone();
        Ok(hash_values(schema.key_of(values).values()) as usize % self.shards.len())
    }

    /// Route point accesses to `table` by its primary key *minus*
    /// `skip` leading columns. A union target's key prepends a
    /// provenance tag to the source key — skipping the tag makes the
    /// target row route to the same shard as the source row it was
    /// transformed from, so reads mid-migration land where the frozen
    /// source (and its residual entry) lives.
    pub fn route_key_suffix(&self, table: &str, skip: usize) {
        self.key_skip.write().insert(table.to_owned(), skip);
    }

    /// Shard index for a primary key of `table`. Only valid when the
    /// table routes by primary key (the default, optionally minus a
    /// [`route_key_suffix`](ShardedDatabase::route_key_suffix) prefix);
    /// a table routed by non-key columns cannot place a bare key.
    pub fn shard_of_key(&self, table: &str, key: &Key) -> DbResult<usize> {
        if self.route_cols.read().contains_key(table) {
            return Err(DbError::Internal(format!(
                "table {table:?} routes by explicit columns; point access needs the full row"
            )));
        }
        let skip = self.key_skip.read().get(table).copied().unwrap_or(0);
        let vals = key.values();
        let suffix = vals.get(skip..).unwrap_or(vals);
        Ok(hash_values(suffix) as usize % self.shards.len())
    }

    /// Owning shard for a primary key of `table`.
    pub fn shard_for_key(&self, table: &str, key: &Key) -> DbResult<&Arc<Database>> {
        Ok(&self.shards[self.shard_of_key(table, key)?])
    }

    // --- routed single-shot operations --------------------------------
    //
    // Each runs one short transaction on the owning shard. Multi-key
    // transactions stay per-shard by construction (shared-nothing: no
    // cross-shard commit protocol in this layer).

    /// Insert a row into `table` on its owning shard.
    pub fn insert(&self, table: &str, values: Vec<Value>) -> DbResult<Key> {
        let db = &self.shards[self.shard_of_row(table, &values)?];
        let txn = db.begin();
        match db.insert(txn, table, values) {
            Ok(key) => {
                db.commit(txn)?;
                Ok(key)
            }
            Err(e) => {
                let _ = db.abort(txn);
                Err(e)
            }
        }
    }

    /// Read the row at `key` from its owning shard.
    pub fn read(&self, table: &str, key: &Key) -> DbResult<Option<Vec<Value>>> {
        let db = self.shard_for_key(table, key)?;
        let txn = db.begin();
        match db.read(txn, table, key) {
            Ok(row) => {
                db.commit(txn)?;
                Ok(row)
            }
            Err(e) => {
                let _ = db.abort(txn);
                Err(e)
            }
        }
    }

    /// Update columns of the row at `key` on its owning shard.
    pub fn update(&self, table: &str, key: &Key, cols: &[(usize, Value)]) -> DbResult<()> {
        let db = self.shard_for_key(table, key)?;
        let txn = db.begin();
        match db.update(txn, table, key, cols) {
            Ok(()) => db.commit(txn),
            Err(e) => {
                let _ = db.abort(txn);
                Err(e)
            }
        }
    }

    /// Delete the row at `key` on its owning shard.
    pub fn delete(&self, table: &str, key: &Key) -> DbResult<()> {
        let db = self.shard_for_key(table, key)?;
        let txn = db.begin();
        match db.delete(txn, table, key) {
            Ok(()) => db.commit(txn),
            Err(e) => {
                let _ = db.abort(txn);
                Err(e)
            }
        }
    }

    /// Aggregate engine counters across all shards with the per-shard
    /// breakdown (WAL flushes, apply-pool steals, MVCC reclamation,
    /// lock waits, transaction and op counts).
    pub fn counters(&self) -> ShardCounters {
        let per_shard: Vec<CountersSnapshot> = self
            .shards
            .iter()
            .map(|db| db.counters_snapshot())
            .collect();
        let mut total = CountersSnapshot::default();
        for s in &per_shard {
            total.add(s);
        }
        ShardCounters { per_shard, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::ColumnType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", ColumnType::Int)
            .nullable("v", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn routing_is_stable_and_total() {
        let sdb = ShardedDatabase::new(4);
        sdb.create_table("t", schema()).unwrap();
        for i in 0..64i64 {
            let a = sdb.shard_of_key("t", &Key::single(i)).unwrap();
            let b = sdb.shard_of_key("t", &Key::single(i)).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
        // All shards get some keys (sanity of the hash spread).
        let mut seen = [false; 4];
        for i in 0..64i64 {
            seen[sdb.shard_of_key("t", &Key::single(i)).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn routed_ops_round_trip() {
        let sdb = ShardedDatabase::new(3);
        sdb.create_table("t", schema()).unwrap();
        for i in 0..32i64 {
            sdb.insert("t", vec![Value::Int(i), Value::str(format!("v{i}"))])
                .unwrap();
        }
        for i in 0..32i64 {
            let row = sdb.read("t", &Key::single(i)).unwrap().unwrap();
            assert_eq!(row[1], Value::str(format!("v{i}")));
        }
        sdb.update("t", &Key::single(7), &[(1, Value::str("x"))])
            .unwrap();
        assert_eq!(
            sdb.read("t", &Key::single(7)).unwrap().unwrap()[1],
            Value::str("x")
        );
        sdb.delete("t", &Key::single(7)).unwrap();
        assert!(sdb.read("t", &Key::single(7)).unwrap().is_none());
        // Rows actually live on distinct shards, and only there.
        let total: usize = sdb
            .shards()
            .iter()
            .map(|db| db.catalog().get("t").unwrap().len())
            .sum();
        assert_eq!(total, 31);
    }

    #[test]
    fn explicit_route_columns_co_partition() {
        let sdb = ShardedDatabase::new(4);
        sdb.create_table("t", schema()).unwrap();
        sdb.route_by("t", vec![1]);
        // Same column-1 value ⇒ same shard, regardless of key.
        let a = sdb
            .shard_of_row("t", &[Value::Int(1), Value::str("g")])
            .unwrap();
        let b = sdb
            .shard_of_row("t", &[Value::Int(999), Value::str("g")])
            .unwrap();
        assert_eq!(a, b);
        // Bare-key routing is refused for explicitly routed tables.
        assert!(sdb.shard_of_key("t", &Key::single(1)).is_err());
    }

    #[test]
    fn counters_roll_up() {
        let sdb = ShardedDatabase::new(2);
        sdb.create_table("t", schema()).unwrap();
        for i in 0..16i64 {
            sdb.insert("t", vec![Value::Int(i), Value::Null]).unwrap();
        }
        let c = sdb.counters();
        assert_eq!(c.per_shard.len(), 2);
        assert_eq!(c.total.commits, 16);
        assert_eq!(c.total.ops, 16);
        assert_eq!(
            c.total.commits,
            c.per_shard.iter().map(|s| s.commits).sum::<u64>()
        );
        // Both shards saw traffic and appended to their own WALs.
        assert!(c.per_shard.iter().all(|s| s.wal_records > 0));
    }
}
