//! Engine-level activity counters (lock-free; used by the workload
//! harness to report throughput and by tests to assert behaviour).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of engine activity.
#[derive(Default, Debug)]
pub struct Counters {
    /// Transactions begun.
    pub begins: AtomicU64,
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions rolled back (for any reason).
    pub aborts: AtomicU64,
    /// Rollbacks caused by wait–die victimization.
    pub deadlock_aborts: AtomicU64,
    /// Rollbacks caused by schema-change dooming (§3.4).
    pub doomed_aborts: AtomicU64,
    /// Data operations executed (insert + update + delete).
    pub ops: AtomicU64,
    /// Archived row versions reclaimed by MVCC garbage collection
    /// ([`Database::mvcc_gc`](../database/struct.Database.html)).
    pub mvcc_reclaimed: AtomicU64,
}

impl Counters {
    /// Relaxed add (all counters are statistics, not synchronization).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot of (begins, commits, aborts, ops).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            Self::get(&self.begins),
            Self::get(&self.commits),
            Self::get(&self.aborts),
            Self::get(&self.ops),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counters::default();
        Counters::bump(&c.begins);
        Counters::bump(&c.begins);
        Counters::bump(&c.commits);
        assert_eq!(c.snapshot(), (2, 1, 0, 0));
    }
}
