//! Engine-level activity counters (lock-free; used by the workload
//! harness to report throughput and by tests to assert behaviour).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of engine activity.
#[derive(Default, Debug)]
pub struct Counters {
    /// Transactions begun.
    pub begins: AtomicU64,
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions rolled back (for any reason).
    pub aborts: AtomicU64,
    /// Rollbacks caused by wait–die victimization.
    pub deadlock_aborts: AtomicU64,
    /// Rollbacks caused by schema-change dooming (§3.4).
    pub doomed_aborts: AtomicU64,
    /// Data operations executed (insert + update + delete).
    pub ops: AtomicU64,
    /// Archived row versions reclaimed by MVCC garbage collection
    /// ([`Database::mvcc_gc`](../database/struct.Database.html)).
    pub mvcc_reclaimed: AtomicU64,
    /// Work-stealing apply-pool steals flushed back to the engine at
    /// pool shutdown (per-shard rollup; the live per-pool figure is in
    /// `PoolStats`).
    pub steals: AtomicU64,
}

/// One engine's counters, read at a point in time — the per-shard leaf
/// of [`ShardCounters`](../router/struct.ShardCounters.html). WAL and
/// lock-manager figures are folded in by
/// [`Database::counters_snapshot`](../database/struct.Database.html#method.counters_snapshot)
/// since they live outside [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions rolled back (for any reason).
    pub aborts: u64,
    /// Rollbacks caused by wait–die victimization.
    pub deadlock_aborts: u64,
    /// Rollbacks caused by schema-change dooming.
    pub doomed_aborts: u64,
    /// Data operations executed.
    pub ops: u64,
    /// Versions reclaimed by MVCC GC.
    pub mvcc_reclaimed: u64,
    /// Apply-pool steals flushed to this engine.
    pub steals: u64,
    /// WAL flushes performed by this engine's log manager.
    pub wal_flushes: u64,
    /// Records appended to this engine's WAL.
    pub wal_records: u64,
    /// Blocking record-lock waits entered on this engine.
    pub lock_waits: u64,
}

impl CountersSnapshot {
    /// Field-wise sum (the aggregate side of the per-shard rollup).
    pub fn add(&mut self, other: &CountersSnapshot) {
        self.begins += other.begins;
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.deadlock_aborts += other.deadlock_aborts;
        self.doomed_aborts += other.doomed_aborts;
        self.ops += other.ops;
        self.mvcc_reclaimed += other.mvcc_reclaimed;
        self.steals += other.steals;
        self.wal_flushes += other.wal_flushes;
        self.wal_records += other.wal_records;
        self.lock_waits += other.lock_waits;
    }
}

impl Counters {
    /// Relaxed add (all counters are statistics, not synchronization).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Engine-local part of a [`CountersSnapshot`] (WAL and lock
    /// figures are zero here; `Database::counters_snapshot` fills
    /// them).
    pub fn full_snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            begins: Self::get(&self.begins),
            commits: Self::get(&self.commits),
            aborts: Self::get(&self.aborts),
            deadlock_aborts: Self::get(&self.deadlock_aborts),
            doomed_aborts: Self::get(&self.doomed_aborts),
            ops: Self::get(&self.ops),
            mvcc_reclaimed: Self::get(&self.mvcc_reclaimed),
            steals: Self::get(&self.steals),
            wal_flushes: 0,
            wal_records: 0,
            lock_waits: 0,
        }
    }

    /// Snapshot of (begins, commits, aborts, ops).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            Self::get(&self.begins),
            Self::get(&self.commits),
            Self::get(&self.aborts),
            Self::get(&self.ops),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counters::default();
        Counters::bump(&c.begins);
        Counters::bump(&c.begins);
        Counters::bump(&c.commits);
        assert_eq!(c.snapshot(), (2, 1, 0, 0));
    }
}
