//! Migration job registry: which tables are claimed by which running
//! migration job.
//!
//! The orchestrator (crate `morph-orchestrator`) serializes migrations
//! whose table sets overlap and runs disjoint ones concurrently; the
//! claim table that makes that decision lives here, on the
//! [`Database`](crate::Database), so every orchestrator instance over
//! the same engine sees the same claims.
//!
//! The registry is deliberately engine-agnostic about what a "job" is:
//! it hands out ids, records table claims, and reports conflicts. All
//! richer state (phase, spec, progress) stays in the orchestrator,
//! which persists it through the WAL.

use morph_common::{DbError, DbResult};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Claim table for running migration jobs. Owned by the database; all
/// methods take `&self` and are safe from any thread.
#[derive(Default)]
pub struct MigrationRegistry {
    /// Claimed tables per job id.
    jobs: RwLock<HashMap<u64, Vec<String>>>,
    /// Next job id to hand out (monotone; resumed jobs bump it past
    /// their recovered id so fresh jobs never collide).
    next_job: AtomicU64,
}

impl MigrationRegistry {
    /// Fresh, empty registry (ids start at 1).
    pub fn new() -> MigrationRegistry {
        MigrationRegistry {
            jobs: RwLock::new(HashMap::new()),
            next_job: AtomicU64::new(1),
        }
    }

    /// Allocate a fresh job id.
    pub fn next_job_id(&self) -> u64 {
        self.next_job.fetch_add(1, Ordering::Relaxed)
    }

    /// Ensure future [`MigrationRegistry::next_job_id`] calls return
    /// ids strictly greater than `id` — used when resuming a job whose
    /// id was recovered from the WAL.
    pub fn bump_past(&self, id: u64) {
        self.next_job.fetch_max(id + 1, Ordering::Relaxed);
    }

    /// Claim `tables` for `job`. Fails with
    /// [`DbError::MigrationConflict`] if any of them is already claimed
    /// by a different job; the claim is all-or-nothing.
    pub fn claim(&self, job: u64, tables: &[String]) -> DbResult<()> {
        let mut jobs = self.jobs.write();
        for (other, claimed) in jobs.iter() {
            if *other == job {
                continue;
            }
            if let Some(t) = tables.iter().find(|t| claimed.contains(t)) {
                return Err(DbError::MigrationConflict {
                    table: t.clone(),
                    job: *other,
                });
            }
        }
        let entry = jobs.entry(job).or_default();
        for t in tables {
            if !entry.contains(t) {
                entry.push(t.clone());
            }
        }
        Ok(())
    }

    /// Release every claim held by `job` (idempotent).
    pub fn release(&self, job: u64) {
        self.jobs.write().remove(&job);
    }

    /// The job currently claiming `table`, if any.
    pub fn claimed_by(&self, table: &str) -> Option<u64> {
        let jobs = self.jobs.read();
        jobs.iter()
            .find(|(_, claimed)| claimed.iter().any(|t| t == table))
            .map(|(job, _)| *job)
    }

    /// Ids of every job holding at least one claim, in ascending order.
    pub fn active_jobs(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.jobs.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_claims_coexist_overlapping_conflict() {
        let reg = MigrationRegistry::new();
        let a = reg.next_job_id();
        let b = reg.next_job_id();
        assert_ne!(a, b);
        reg.claim(a, &["t".into(), "r".into()]).unwrap();
        reg.claim(b, &["u".into()]).unwrap();
        let err = reg.claim(b, &["x".into(), "r".into()]).unwrap_err();
        assert!(matches!(
            err,
            DbError::MigrationConflict { ref table, job } if table == "r" && job == a
        ));
        // The failed claim must not have claimed "x" either.
        assert_eq!(reg.claimed_by("x"), None);
        assert_eq!(reg.claimed_by("r"), Some(a));
        reg.release(a);
        assert_eq!(reg.claimed_by("r"), None);
        reg.claim(b, &["r".into()]).unwrap();
        assert_eq!(reg.active_jobs(), vec![b]);
    }

    #[test]
    fn re_claim_by_same_job_is_idempotent() {
        let reg = MigrationRegistry::new();
        reg.claim(7, &["t".into()]).unwrap();
        reg.claim(7, &["t".into(), "u".into()]).unwrap();
        assert_eq!(reg.claimed_by("t"), Some(7));
        assert_eq!(reg.claimed_by("u"), Some(7));
        reg.bump_past(7);
        assert!(reg.next_job_id() > 7);
    }
}
