//! Restart recovery (ARIES-style, adapted to a main-memory engine).
//!
//! Because morphdb keeps all data in memory, a restart loses every
//! materialized row; recovery therefore replays the *entire* log from
//! genesis: an **analysis** pass classifies transactions, a **redo**
//! pass re-executes every operation — including CLRs, exactly as they
//! were logged — and an **undo** pass rolls back loser transactions,
//! appending fresh CLRs. This is the same discipline the paper assumes
//! of its substrate ("undo operations produce Compensating Log Records
//! as described in the ARIES method", §1); the transformation framework
//! itself is *not* made crash-persistent — an interrupted
//! transformation simply restarts from its preparation step, which is
//! safe because transformed tables are invisible to users until
//! synchronization completes. That claim is regression-pinned by the
//! crash simulator: `crates/sim/tests/crash_matrix.rs` kills
//! transformations at every instrumented point, recovers from the
//! torn log, restarts from preparation, and demands equivalence with
//! an uninterrupted run (see `morph-sim` and DESIGN.md §9).

use crate::database::Database;
use morph_common::{DbResult, Lsn, TxnId};
use morph_storage::Row;
use morph_wal::{LogOp, LogRecord};
use std::collections::{HashMap, HashSet};

/// What recovery did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Operations (forward + CLR) re-applied.
    pub redone: usize,
    /// Transactions that were alive at the crash and were rolled back.
    pub losers: Vec<TxnId>,
    /// CLRs appended during the undo pass.
    pub clrs_written: usize,
}

/// Replay `records` into `db`. The caller must have re-created the
/// schema: every table id referenced by the log must resolve in the
/// catalog, and the tables must be empty.
pub fn recover_into(db: &Database, records: &[LogRecord]) -> DbResult<RecoveryReport> {
    // --- analysis ---
    struct TxnInfo {
        finished: bool,
        /// Forward ops in order, with their LSNs.
        ops: Vec<(Lsn, LogOp)>,
        /// LSNs already compensated by logged CLRs.
        compensated: HashSet<Lsn>,
    }
    let mut txns: HashMap<TxnId, TxnInfo> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        let lsn = Lsn(i as u64 + 1);
        match rec {
            LogRecord::Begin { txn } => {
                txns.insert(
                    *txn,
                    TxnInfo {
                        finished: false,
                        ops: Vec::new(),
                        compensated: HashSet::new(),
                    },
                );
            }
            LogRecord::Commit { txn } | LogRecord::AbortEnd { txn } => {
                if let Some(info) = txns.get_mut(txn) {
                    info.finished = true;
                }
            }
            LogRecord::Op { txn, op } => {
                if let Some(info) = txns.get_mut(txn) {
                    info.ops.push((lsn, op.clone()));
                }
            }
            LogRecord::Clr {
                txn, undone_lsn, ..
            } => {
                if let Some(info) = txns.get_mut(txn) {
                    info.compensated.insert(*undone_lsn);
                }
            }
            _ => {}
        }
    }

    // --- redo: replay history exactly as logged ---
    let mut redone = 0usize;
    for (i, rec) in records.iter().enumerate() {
        let lsn = Lsn(i as u64 + 1);
        if let Some(op) = rec.op() {
            apply_physical(db, op, lsn)?;
            redone += 1;
        }
    }

    // --- undo losers ---
    let mut losers: Vec<TxnId> = txns
        .iter()
        .filter(|(_, info)| !info.finished)
        .map(|(id, _)| *id)
        .collect();
    losers.sort();
    let mut clrs_written = 0usize;
    for txn in &losers {
        let info = &txns[txn];
        db.log().append(LogRecord::Abort { txn: *txn });
        for (lsn, op) in info.ops.iter().rev() {
            if info.compensated.contains(lsn) {
                continue;
            }
            let inverse = invert_for_undo(db, op)?;
            let clr_lsn = db.log().append(LogRecord::Clr {
                txn: *txn,
                undone_lsn: *lsn,
                op: inverse.clone(),
            });
            apply_physical(db, &inverse, clr_lsn)?;
            clrs_written += 1;
        }
        db.log().append(LogRecord::AbortEnd { txn: *txn });
    }
    db.log().flush()?;

    Ok(RecoveryReport {
        redone,
        losers,
        clrs_written,
    })
}

/// Apply one logged operation physically, stamping `lsn`.
pub fn apply_physical(db: &Database, op: &LogOp, lsn: Lsn) -> DbResult<()> {
    let table = db.catalog().get_by_id(op.table())?;
    match op {
        LogOp::Insert { row, .. } => {
            table.insert_row(Row::new(row.clone(), lsn))?;
        }
        LogOp::Delete { key, .. } => {
            table.delete(key)?;
        }
        LogOp::Update { key, new, .. } => {
            table.update(key, new, lsn)?;
        }
    }
    Ok(())
}

/// Build the ready-to-apply inverse of a forward op during recovery
/// undo. For updates this must target the row's *current* key, which
/// may differ from the logged (pre-image) key if primary-key columns
/// were updated.
fn invert_for_undo(db: &Database, op: &LogOp) -> DbResult<LogOp> {
    match op {
        LogOp::Insert { table, row } => {
            let t = db.catalog().get_by_id(*table)?;
            Ok(LogOp::Delete {
                table: *table,
                key: t.schema().key_of(row),
                old: row.clone(),
            })
        }
        LogOp::Delete { table, old, .. } => Ok(LogOp::Insert {
            table: *table,
            row: old.clone(),
        }),
        LogOp::Update {
            table,
            key,
            old,
            new,
        } => {
            let t = db.catalog().get_by_id(*table)?;
            let schema = t.schema();
            // Post-image key: substitute updated primary-key columns.
            let mut post = key.clone();
            for (kpos, col) in schema.pkey().iter().enumerate() {
                if let Some((_, v)) = new.iter().find(|(i, _)| i == col) {
                    post.0[kpos] = v.clone();
                }
            }
            Ok(LogOp::Update {
                table: *table,
                key: post,
                old: new.clone(),
                new: old.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::{ColumnType, DbError, Key, Schema, Value};
    use morph_txn::LockManagerConfig;
    use morph_wal::LogManager;
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", ColumnType::Int)
            .column("val", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    fn row(id: i64, v: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::str(v)]
    }

    /// Run `work` against a fresh DB, then "crash": replay the log into
    /// a second DB with the same schema and return both.
    fn crash_and_recover(work: impl FnOnce(&Database)) -> (Database, Database, RecoveryReport) {
        let db1 = Database::new();
        db1.create_table("t", schema()).unwrap();
        work(&db1);
        let records: Vec<LogRecord> = db1
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();

        let db2 = Database::with_log(
            Arc::new(LogManager::with_records(records.clone())),
            LockManagerConfig::default(),
        );
        // Recreate schema with the same table id.
        let orig = db1.catalog().get("t").unwrap();
        db2.catalog()
            .create_table_with_id(orig.id(), "t", schema())
            .unwrap();
        let report = recover_into(&db2, &records).unwrap();
        (db1, db2, report)
    }

    fn table_state(db: &Database) -> Vec<(Key, Vec<Value>)> {
        db.catalog()
            .get("t")
            .unwrap()
            .snapshot()
            .into_iter()
            .map(|(k, r)| (k, r.values))
            .collect()
    }

    #[test]
    fn committed_work_survives() {
        let (db1, db2, report) = crash_and_recover(|db| {
            let txn = db.begin();
            db.insert(txn, "t", row(1, "a")).unwrap();
            db.insert(txn, "t", row(2, "b")).unwrap();
            db.update(txn, "t", &Key::single(1), &[(1, Value::str("a2"))])
                .unwrap();
            db.delete(txn, "t", &Key::single(2)).unwrap();
            db.commit(txn).unwrap();
        });
        assert_eq!(table_state(&db1), table_state(&db2));
        assert_eq!(report.losers, vec![]);
        assert_eq!(report.redone, 4);
    }

    #[test]
    fn loser_transaction_is_rolled_back() {
        let (_db1, db2, report) = crash_and_recover(|db| {
            let committed = db.begin();
            db.insert(committed, "t", row(1, "keep")).unwrap();
            db.commit(committed).unwrap();
            // Crash with this one in flight:
            let loser = db.begin();
            db.insert(loser, "t", row(2, "gone")).unwrap();
            db.update(loser, "t", &Key::single(1), &[(1, Value::str("dirty"))])
                .unwrap();
            // no commit/abort — crash
        });
        let state = table_state(&db2);
        assert_eq!(state.len(), 1);
        assert_eq!(state[0].1, row(1, "keep"));
        assert_eq!(report.losers.len(), 1);
        assert_eq!(report.clrs_written, 2);
    }

    #[test]
    fn crash_mid_rollback_resumes_via_clrs() {
        // A txn that aborted *and completed* rollback before the crash:
        // redo replays its CLRs; undo must not double-compensate.
        let (db1, db2, report) = crash_and_recover(|db| {
            let setup = db.begin();
            db.insert(setup, "t", row(1, "base")).unwrap();
            db.commit(setup).unwrap();
            let txn = db.begin();
            db.update(txn, "t", &Key::single(1), &[(1, Value::str("x"))])
                .unwrap();
            db.abort(txn).unwrap();
        });
        assert_eq!(table_state(&db1), table_state(&db2));
        assert!(report.losers.is_empty());
    }

    #[test]
    fn loser_with_pkey_move_restored() {
        let (_db1, db2, _report) = crash_and_recover(|db| {
            let setup = db.begin();
            db.insert(setup, "t", row(1, "orig")).unwrap();
            db.commit(setup).unwrap();
            let loser = db.begin();
            db.update(loser, "t", &Key::single(1), &[(0, Value::Int(7))])
                .unwrap();
            // crash
        });
        let state = table_state(&db2);
        assert_eq!(state, vec![(Key::single(1), row(1, "orig"))]);
    }

    #[test]
    fn recovered_log_is_replayable_again() {
        // Idempotence at the system level: recovering the *recovered*
        // log yields the same state (all losers now have AbortEnd).
        let (_db1, db2, _report) = crash_and_recover(|db| {
            let loser = db.begin();
            db.insert(loser, "t", row(5, "x")).unwrap();
        });
        let records: Vec<LogRecord> = db2
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();
        let db3 = Database::new();
        db3.catalog()
            .create_table_with_id(db2.catalog().get("t").unwrap().id(), "t", schema())
            .unwrap();
        let report2 = recover_into(&db3, &records).unwrap();
        assert!(report2.losers.is_empty());
        assert_eq!(table_state(&db2), {
            db3.catalog()
                .get("t")
                .unwrap()
                .snapshot()
                .into_iter()
                .map(|(k, r)| (k, r.values))
                .collect::<Vec<_>>()
        });
    }

    #[test]
    fn missing_table_is_reported() {
        let db1 = Database::new();
        db1.create_table("t", schema()).unwrap();
        let txn = db1.begin();
        db1.insert(txn, "t", row(1, "a")).unwrap();
        db1.commit(txn).unwrap();
        let records: Vec<LogRecord> = db1
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();
        let db2 = Database::new(); // no table created
        assert!(matches!(
            recover_into(&db2, &records),
            Err(DbError::NoSuchTableId(_))
        ));
    }
}
