//! Restart recovery (ARIES-style, adapted to a main-memory engine).
//!
//! Because morphdb keeps all data in memory, a restart loses every
//! materialized row; recovery therefore replays the *entire* log from
//! genesis: an **analysis** pass classifies transactions, a **redo**
//! pass re-executes every operation — including CLRs, exactly as they
//! were logged — and an **undo** pass rolls back loser transactions,
//! appending fresh CLRs. This is the same discipline the paper assumes
//! of its substrate ("undo operations produce Compensating Log Records
//! as described in the ARIES method", §1); the transformation framework
//! itself is *not* made crash-persistent — an interrupted
//! transformation simply restarts from its preparation step, which is
//! safe because transformed tables are invisible to users until
//! synchronization completes. That claim is regression-pinned by the
//! crash simulator: `crates/sim/tests/crash_matrix.rs` kills
//! transformations at every instrumented point, recovers from the
//! torn log, restarts from preparation, and demands equivalence with
//! an uninterrupted run (see `morph-sim` and DESIGN.md §9).

use crate::database::Database;
use morph_common::{DbResult, Key, Lsn, TxnId, Value};
use morph_storage::Row;
use morph_wal::{scan_stream, LogOp, LogOpRef, LogRecord, LogRecordRef, ValueRef};
use std::collections::{HashMap, HashSet};

/// What recovery did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Operations (forward + CLR) re-applied.
    pub redone: usize,
    /// Transactions that were alive at the crash and were rolled back.
    pub losers: Vec<TxnId>,
    /// CLRs appended during the undo pass.
    pub clrs_written: usize,
}

/// Replay `records` into `db`. The caller must have re-created the
/// schema: every table id referenced by the log must resolve in the
/// catalog, and the tables must be empty.
pub fn recover_into(db: &Database, records: &[LogRecord]) -> DbResult<RecoveryReport> {
    // --- analysis ---
    struct TxnInfo {
        finished: bool,
        /// Forward ops in order, with their LSNs.
        ops: Vec<(Lsn, LogOp)>,
        /// LSNs already compensated by logged CLRs.
        compensated: HashSet<Lsn>,
    }
    let mut txns: HashMap<TxnId, TxnInfo> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        let lsn = Lsn(i as u64 + 1);
        match rec {
            LogRecord::Begin { txn } => {
                txns.insert(
                    *txn,
                    TxnInfo {
                        finished: false,
                        ops: Vec::new(),
                        compensated: HashSet::new(),
                    },
                );
            }
            LogRecord::Commit { txn } | LogRecord::AbortEnd { txn } => {
                if let Some(info) = txns.get_mut(txn) {
                    info.finished = true;
                }
            }
            LogRecord::Op { txn, op } => {
                if let Some(info) = txns.get_mut(txn) {
                    info.ops.push((lsn, op.clone()));
                }
            }
            LogRecord::Clr {
                txn, undone_lsn, ..
            } => {
                if let Some(info) = txns.get_mut(txn) {
                    info.compensated.insert(*undone_lsn);
                }
            }
            _ => {}
        }
    }

    // --- redo: replay history exactly as logged ---
    let mut redone = 0usize;
    for (i, rec) in records.iter().enumerate() {
        let lsn = Lsn(i as u64 + 1);
        if let Some(op) = rec.op() {
            apply_physical(db, op, lsn)?;
            redone += 1;
        }
    }

    // --- undo losers ---
    let mut losers: Vec<TxnId> = txns
        .iter()
        .filter(|(_, info)| !info.finished)
        .map(|(id, _)| *id)
        .collect();
    losers.sort();
    let mut clrs_written = 0usize;
    for txn in &losers {
        let info = &txns[txn];
        db.log().append(LogRecord::Abort { txn: *txn });
        for (lsn, op) in info.ops.iter().rev() {
            if info.compensated.contains(lsn) {
                continue;
            }
            let inverse = invert_for_undo(db, op)?;
            let clr_lsn = db.log().append(LogRecord::Clr {
                txn: *txn,
                undone_lsn: *lsn,
                op: inverse.clone(),
            });
            apply_physical(db, &inverse, clr_lsn)?;
            clrs_written += 1;
        }
        db.log().append(LogRecord::AbortEnd { txn: *txn });
    }
    db.log().flush()?;

    Ok(RecoveryReport {
        redone,
        losers,
        clrs_written,
    })
}

/// Replay a raw length-prefixed WAL byte stream into `db` without
/// materializing owned records for the bulk of the log. Behaviorally
/// identical to decoding the stream and calling [`recover_into`]
/// (regression-pinned by `recover_from_bytes_matches_recover_into`),
/// but the analysis and redo passes run on borrowed
/// [`LogRecordRef`]s: control records, fuzzy marks, checkpoints and
/// CLR bookkeeping never allocate a single `String`; owned values are
/// built only for the column images an applied operation actually
/// writes, and for the (typically few) loser operations the undo pass
/// must retain past their borrow.
pub fn recover_from_bytes(db: &Database, bytes: &[u8]) -> DbResult<RecoveryReport> {
    // --- analysis (borrowed): who finished, what was compensated ---
    struct TxnMeta {
        finished: bool,
        compensated: HashSet<Lsn>,
    }
    let mut txns: HashMap<TxnId, TxnMeta> = HashMap::new();
    let mut lsn = 0u64;
    scan_stream(bytes, |rec| {
        lsn += 1;
        match rec {
            LogRecordRef::Begin { txn } => {
                txns.insert(
                    txn,
                    TxnMeta {
                        finished: false,
                        compensated: HashSet::new(),
                    },
                );
            }
            LogRecordRef::Commit { txn } | LogRecordRef::AbortEnd { txn } => {
                if let Some(meta) = txns.get_mut(&txn) {
                    meta.finished = true;
                }
            }
            LogRecordRef::Clr {
                txn, undone_lsn, ..
            } => {
                if let Some(meta) = txns.get_mut(&txn) {
                    meta.compensated.insert(undone_lsn);
                }
            }
            _ => {}
        }
        Ok(())
    })?;

    // --- redo (borrowed), collecting owned ops only for losers ---
    let is_loser =
        |txns: &HashMap<TxnId, TxnMeta>, txn: TxnId| txns.get(&txn).is_some_and(|m| !m.finished);
    let mut loser_ops: HashMap<TxnId, Vec<(Lsn, LogOp)>> = HashMap::new();
    let mut redone = 0usize;
    let mut lsn = 0u64;
    scan_stream(bytes, |rec| {
        lsn += 1;
        if let Some(op) = rec.op() {
            apply_physical_ref(db, op, Lsn(lsn))?;
            redone += 1;
            if let LogRecordRef::Op { txn, op } = &rec {
                if is_loser(&txns, *txn) {
                    loser_ops
                        .entry(*txn)
                        .or_default()
                        .push((Lsn(lsn), op.to_owned()));
                }
            }
        }
        Ok(())
    })?;

    // --- undo losers (same protocol as recover_into) ---
    let mut losers: Vec<TxnId> = txns
        .iter()
        .filter(|(_, meta)| !meta.finished)
        .map(|(id, _)| *id)
        .collect();
    losers.sort();
    let mut clrs_written = 0usize;
    for txn in &losers {
        let meta = &txns[txn];
        let ops = loser_ops.remove(txn).unwrap_or_default();
        db.log().append(LogRecord::Abort { txn: *txn });
        for (lsn, op) in ops.iter().rev() {
            if meta.compensated.contains(lsn) {
                continue;
            }
            let inverse = invert_for_undo(db, op)?;
            let clr_lsn = db.log().append(LogRecord::Clr {
                txn: *txn,
                undone_lsn: *lsn,
                op: inverse.clone(),
            });
            apply_physical(db, &inverse, clr_lsn)?;
            clrs_written += 1;
        }
        db.log().append(LogRecord::AbortEnd { txn: *txn });
    }
    db.log().flush()?;

    Ok(RecoveryReport {
        redone,
        losers,
        clrs_written,
    })
}

/// Apply one borrowed logged operation physically, stamping `lsn`.
/// Owned values are built only for the images the write needs: the
/// pre-images (`old`) riding along for undo are never converted.
fn apply_physical_ref(db: &Database, op: &LogOpRef<'_>, lsn: Lsn) -> DbResult<()> {
    fn owned(vals: &[ValueRef<'_>]) -> Vec<Value> {
        vals.iter().map(ValueRef::to_owned).collect()
    }
    let table = db.catalog().get_by_id(op.table())?;
    match op {
        LogOpRef::Insert { row, .. } => {
            table.insert_row(Row::new(owned(row), lsn))?;
        }
        LogOpRef::Delete { key, .. } => {
            // SYSTEM-stamped so a replayed delete stays visible by LSN
            // order under versioning (recovered logs carry no
            // commit-table state to resolve original writers).
            table.delete_with_writer(&Key(owned(key)), morph_storage::SYSTEM, |_| Ok(lsn))?;
        }
        LogOpRef::Update { key, new, .. } => {
            let new: Vec<(usize, Value)> = new.iter().map(|(i, v)| (*i, v.to_owned())).collect();
            table.update(&Key(owned(key)), &new, lsn)?;
        }
    }
    Ok(())
}

/// Apply one logged operation physically, stamping `lsn`.
pub fn apply_physical(db: &Database, op: &LogOp, lsn: Lsn) -> DbResult<()> {
    let table = db.catalog().get_by_id(op.table())?;
    match op {
        LogOp::Insert { row, .. } => {
            table.insert_row(Row::new(row.clone(), lsn))?;
        }
        LogOp::Delete { key, .. } => {
            // See `apply_physical_ref`: SYSTEM stamp, LSN of the
            // replayed record.
            table.delete_with_writer(key, morph_storage::SYSTEM, |_| Ok(lsn))?;
        }
        LogOp::Update { key, new, .. } => {
            table.update(key, new, lsn)?;
        }
    }
    Ok(())
}

/// Build the ready-to-apply inverse of a forward op during recovery
/// undo. For updates this must target the row's *current* key, which
/// may differ from the logged (pre-image) key if primary-key columns
/// were updated.
fn invert_for_undo(db: &Database, op: &LogOp) -> DbResult<LogOp> {
    match op {
        LogOp::Insert { table, row } => {
            let t = db.catalog().get_by_id(*table)?;
            Ok(LogOp::Delete {
                table: *table,
                key: t.schema().key_of(row),
                old: row.clone(),
            })
        }
        LogOp::Delete { table, old, .. } => Ok(LogOp::Insert {
            table: *table,
            row: old.clone(),
        }),
        LogOp::Update {
            table,
            key,
            old,
            new,
        } => {
            let t = db.catalog().get_by_id(*table)?;
            let schema = t.schema();
            // Post-image key: substitute updated primary-key columns.
            let mut post = key.clone();
            for (kpos, col) in schema.pkey().iter().enumerate() {
                if let Some((_, v)) = new.iter().find(|(i, _)| i == col) {
                    post.0[kpos] = v.clone();
                }
            }
            Ok(LogOp::Update {
                table: *table,
                key: post,
                old: new.clone(),
                new: old.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::{ColumnType, DbError, Key, Schema, Value};
    use morph_txn::LockManagerConfig;
    use morph_wal::LogManager;
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", ColumnType::Int)
            .column("val", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    fn row(id: i64, v: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::str(v)]
    }

    /// Run `work` against a fresh DB, then "crash": replay the log into
    /// a second DB with the same schema and return both.
    fn crash_and_recover(work: impl FnOnce(&Database)) -> (Database, Database, RecoveryReport) {
        let db1 = Database::new();
        db1.create_table("t", schema()).unwrap();
        work(&db1);
        let records: Vec<LogRecord> = db1
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();

        let db2 = Database::with_log(
            Arc::new(LogManager::with_records(records.clone())),
            LockManagerConfig::default(),
        );
        // Recreate schema with the same table id.
        let orig = db1.catalog().get("t").unwrap();
        db2.catalog()
            .create_table_with_id(orig.id(), "t", schema())
            .unwrap();
        let report = recover_into(&db2, &records).unwrap();
        (db1, db2, report)
    }

    fn table_state(db: &Database) -> Vec<(Key, Vec<Value>)> {
        db.catalog()
            .get("t")
            .unwrap()
            .snapshot()
            .into_iter()
            .map(|(k, r)| (k, r.values))
            .collect()
    }

    #[test]
    fn committed_work_survives() {
        let (db1, db2, report) = crash_and_recover(|db| {
            let txn = db.begin();
            db.insert(txn, "t", row(1, "a")).unwrap();
            db.insert(txn, "t", row(2, "b")).unwrap();
            db.update(txn, "t", &Key::single(1), &[(1, Value::str("a2"))])
                .unwrap();
            db.delete(txn, "t", &Key::single(2)).unwrap();
            db.commit(txn).unwrap();
        });
        assert_eq!(table_state(&db1), table_state(&db2));
        assert_eq!(report.losers, vec![]);
        assert_eq!(report.redone, 4);
    }

    #[test]
    fn loser_transaction_is_rolled_back() {
        let (_db1, db2, report) = crash_and_recover(|db| {
            let committed = db.begin();
            db.insert(committed, "t", row(1, "keep")).unwrap();
            db.commit(committed).unwrap();
            // Crash with this one in flight:
            let loser = db.begin();
            db.insert(loser, "t", row(2, "gone")).unwrap();
            db.update(loser, "t", &Key::single(1), &[(1, Value::str("dirty"))])
                .unwrap();
            // no commit/abort — crash
        });
        let state = table_state(&db2);
        assert_eq!(state.len(), 1);
        assert_eq!(state[0].1, row(1, "keep"));
        assert_eq!(report.losers.len(), 1);
        assert_eq!(report.clrs_written, 2);
    }

    #[test]
    fn crash_mid_rollback_resumes_via_clrs() {
        // A txn that aborted *and completed* rollback before the crash:
        // redo replays its CLRs; undo must not double-compensate.
        let (db1, db2, report) = crash_and_recover(|db| {
            let setup = db.begin();
            db.insert(setup, "t", row(1, "base")).unwrap();
            db.commit(setup).unwrap();
            let txn = db.begin();
            db.update(txn, "t", &Key::single(1), &[(1, Value::str("x"))])
                .unwrap();
            db.abort(txn).unwrap();
        });
        assert_eq!(table_state(&db1), table_state(&db2));
        assert!(report.losers.is_empty());
    }

    #[test]
    fn loser_with_pkey_move_restored() {
        let (_db1, db2, _report) = crash_and_recover(|db| {
            let setup = db.begin();
            db.insert(setup, "t", row(1, "orig")).unwrap();
            db.commit(setup).unwrap();
            let loser = db.begin();
            db.update(loser, "t", &Key::single(1), &[(0, Value::Int(7))])
                .unwrap();
            // crash
        });
        let state = table_state(&db2);
        assert_eq!(state, vec![(Key::single(1), row(1, "orig"))]);
    }

    #[test]
    fn recovered_log_is_replayable_again() {
        // Idempotence at the system level: recovering the *recovered*
        // log yields the same state (all losers now have AbortEnd).
        let (_db1, db2, _report) = crash_and_recover(|db| {
            let loser = db.begin();
            db.insert(loser, "t", row(5, "x")).unwrap();
        });
        let records: Vec<LogRecord> = db2
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();
        let db3 = Database::new();
        db3.catalog()
            .create_table_with_id(db2.catalog().get("t").unwrap().id(), "t", schema())
            .unwrap();
        let report2 = recover_into(&db3, &records).unwrap();
        assert!(report2.losers.is_empty());
        assert_eq!(table_state(&db2), {
            db3.catalog()
                .get("t")
                .unwrap()
                .snapshot()
                .into_iter()
                .map(|(k, r)| (k, r.values))
                .collect::<Vec<_>>()
        });
    }

    /// Length-prefix-encode records exactly as the file backend does.
    fn to_stream(records: &[LogRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for rec in records {
            let body = morph_wal::codec::encode(rec);
            bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&body);
        }
        bytes
    }

    #[test]
    fn recover_from_bytes_matches_recover_into() {
        // One committed txn (with a pkey move and strings, so borrowed
        // values matter), one fully-rolled-back txn (CLRs in the log),
        // one loser crashed mid-flight.
        let db1 = Database::new();
        db1.create_table("t", schema()).unwrap();
        let committed = db1.begin();
        db1.insert(committed, "t", row(1, "alpha")).unwrap();
        db1.insert(committed, "t", row(2, "beta")).unwrap();
        db1.update(committed, "t", &Key::single(1), &[(0, Value::Int(10))])
            .unwrap();
        db1.commit(committed).unwrap();
        let aborted = db1.begin();
        db1.update(aborted, "t", &Key::single(2), &[(1, Value::str("dirty"))])
            .unwrap();
        db1.abort(aborted).unwrap();
        let loser = db1.begin();
        db1.insert(loser, "t", row(3, "gone")).unwrap();
        db1.delete(loser, "t", &Key::single(2)).unwrap();
        // no commit — crash

        let records: Vec<LogRecord> = db1
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();
        let bytes = to_stream(&records);
        let t_id = db1.catalog().get("t").unwrap().id();

        let db_a = Database::new();
        db_a.catalog()
            .create_table_with_id(t_id, "t", schema())
            .unwrap();
        let report_a = recover_into(&db_a, &records).unwrap();

        let db_b = Database::new();
        db_b.catalog()
            .create_table_with_id(t_id, "t", schema())
            .unwrap();
        let report_b = recover_from_bytes(&db_b, &bytes).unwrap();

        assert_eq!(report_a, report_b);
        assert_eq!(table_state(&db_a), table_state(&db_b));
        // The undo pass must have appended the same records, too.
        let tail = |db: &Database| -> Vec<LogRecord> {
            db.log()
                .read_range(Lsn(1), usize::MAX)
                .into_iter()
                .map(|(_, r)| (*r).clone())
                .collect()
        };
        assert_eq!(tail(&db_a), tail(&db_b));
    }

    #[test]
    fn recover_from_bytes_tolerates_torn_tail() {
        let db1 = Database::new();
        db1.create_table("t", schema()).unwrap();
        let txn = db1.begin();
        db1.insert(txn, "t", row(1, "keep")).unwrap();
        db1.commit(txn).unwrap();
        let records: Vec<LogRecord> = db1
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();
        let mut bytes = to_stream(&records);
        bytes.extend_from_slice(&(4096u32).to_le_bytes()); // torn append
        bytes.extend_from_slice(&[7, 7]);

        let db2 = Database::new();
        db2.catalog()
            .create_table_with_id(db1.catalog().get("t").unwrap().id(), "t", schema())
            .unwrap();
        let report = recover_from_bytes(&db2, &bytes).unwrap();
        assert!(report.losers.is_empty());
        assert_eq!(table_state(&db2), vec![(Key::single(1), row(1, "keep"))]);
    }

    #[test]
    fn missing_table_is_reported() {
        let db1 = Database::new();
        db1.create_table("t", schema()).unwrap();
        let txn = db1.begin();
        db1.insert(txn, "t", row(1, "a")).unwrap();
        db1.commit(txn).unwrap();
        let records: Vec<LogRecord> = db1
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();
        let db2 = Database::new(); // no table created
        assert!(matches!(
            recover_into(&db2, &records),
            Err(DbError::NoSuchTableId(_))
        ));
    }
}
