//! Pre-operation hooks.
//!
//! Interceptors run after the engine has taken its own record lock and
//! before anything is logged or applied. They exist for exactly two
//! users in this code base:
//!
//! 1. **Non-blocking commit synchronization** (§3.4/§4.3): while old
//!    transactions continue on the (frozen) source tables, every one of
//!    their operations must first acquire the corresponding
//!    origin-tagged lock on the transformed table, so that conflicts
//!    with new transactions on the transformed table are detected under
//!    the Figure-2 matrix.
//! 2. The **trigger-based baseline** (Ronström's method, §2.1), which
//!    applies the transformation synchronously inside the user
//!    transaction — the approach the paper argues is more expensive
//!    than log propagation, and which the ablation bench quantifies.
//!
//! Returning an error vetoes the operation before any state changes.

use crate::database::{Database, PlannedOp};
use morph_common::{DbResult, TxnId};
use morph_storage::Table;

/// A hook invoked before every data operation (see module docs).
pub trait OpInterceptor: Send + Sync {
    /// Inspect (and possibly veto or augment) an operation `txn` is
    /// about to perform on `table`. The engine already holds the
    /// operation's own record lock.
    fn before_op(
        &self,
        db: &Database,
        txn: TxnId,
        table: &Table,
        op: &PlannedOp<'_>,
    ) -> DbResult<()>;
}
