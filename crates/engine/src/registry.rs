//! The active-transaction registry.
//!
//! Tracks, for every live transaction: its first LSN (fuzzy marks need
//! the oldest one, §3.2), the undo chain for rollback, and the *doomed*
//! flag set by non-blocking-abort synchronization (§3.4).
//!
//! The registry guards a critical ordering invariant: a transaction is
//! registered (with its first LSN fixed) under the same lock that
//! [`write_fuzzy_mark`](crate::Database::write_fuzzy_mark) takes, so a
//! fuzzy mark can never miss an in-flight transaction whose operations
//! might not be reflected in the fuzzy read — the premise of the
//! paper's Theorem 1.

use morph_common::{DbError, DbResult, Lsn, TxnId};
use morph_wal::LogOp;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Mutable per-transaction state.
#[derive(Default)]
pub struct TxnState {
    /// Inverse operations ready to apply, one per forward op, in
    /// forward order (rollback walks it backwards). Each entry pairs
    /// the forward record's LSN with the prepared inverse.
    pub undo: Vec<(Lsn, LogOp)>,
    /// Table-granular lock modes this transaction already holds — a
    /// local cache that lets the engine skip the (global) table-lock
    /// manager for the common repeat acquisition within a transaction.
    pub table_modes: Vec<(morph_common::TableId, morph_txn::GranularMode)>,
}

/// Shared handle to one transaction's bookkeeping.
pub struct TxnCell {
    /// The transaction id.
    pub id: TxnId,
    /// LSN of the Begin record (immutable after creation).
    pub first_lsn: Lsn,
    /// Set by non-blocking-abort synchronization: the transaction must
    /// roll back; every further operation returns `TxnDoomed`.
    pub doomed: AtomicBool,
    /// Undo chain and other mutable state.
    pub state: Mutex<TxnState>,
}

impl TxnCell {
    /// Whether the transaction has been doomed.
    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }
}

/// Shard count. Transaction ids are sequential, so a plain modulo
/// spreads them perfectly; 16 shards is comfortably past the
/// updater-thread counts the workloads drive while keeping the
/// all-shards fuzzy-mark sweep cheap.
const REGISTRY_SHARDS: usize = 16;

/// Registry of active transactions, sharded by transaction id so that
/// concurrent begin/get/remove traffic from updater threads and
/// parallel apply lanes does not serialize on one map lock. Whole-set
/// operations (fuzzy mark, checkpoint) take every shard's write lock
/// in index order — same-class nesting in a canonical order, exactly
/// like the storage shard latches — which still blocks admission
/// globally, preserving the Theorem-1 premise.
pub struct TxnRegistry {
    shards: Vec<RwLock<HashMap<TxnId, Arc<TxnCell>>>>,
}

impl Default for TxnRegistry {
    fn default() -> TxnRegistry {
        TxnRegistry::new()
    }
}

impl TxnRegistry {
    /// Empty registry.
    pub fn new() -> TxnRegistry {
        TxnRegistry {
            shards: (0..REGISTRY_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_of(&self, id: TxnId) -> &RwLock<HashMap<TxnId, Arc<TxnCell>>> {
        &self.shards[(id.0 as usize) % self.shards.len()]
    }

    /// Register a transaction. `log_begin` must append the Begin record
    /// and return its LSN; it runs under the transaction's shard write
    /// lock so that fuzzy marks (which hold *all* shard write locks)
    /// serialize against transaction admission.
    pub fn begin_with(&self, id: TxnId, log_begin: impl FnOnce() -> Lsn) -> Arc<TxnCell> {
        let mut map = self.shard_of(id).write();
        let first_lsn = log_begin();
        let cell = Arc::new(TxnCell {
            id,
            first_lsn,
            doomed: AtomicBool::new(false),
            state: Mutex::new(TxnState::default()),
        });
        map.insert(id, Arc::clone(&cell));
        cell
    }

    /// Fetch an active transaction.
    pub fn get(&self, id: TxnId) -> DbResult<Arc<TxnCell>> {
        self.shard_of(id)
            .read()
            .get(&id)
            .cloned()
            .ok_or(DbError::TxnNotActive(id))
    }

    /// Deregister (commit or rollback complete).
    pub fn remove(&self, id: TxnId) {
        self.shard_of(id).write().remove(&id);
    }

    /// Whether the transaction is active.
    pub fn is_active(&self, id: TxnId) -> bool {
        self.shard_of(id).read().contains_key(&id)
    }

    /// Ids of all active transactions.
    pub fn active_ids(&self) -> Vec<TxnId> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            ids.extend(shard.read().keys().copied());
        }
        ids
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Run `f` with a consistent snapshot of (active ids, oldest first
    /// LSN) while *blocking transaction admission* — the fuzzy-mark
    /// primitive. `f` typically appends the mark to the log. Admission
    /// is blocked by holding every shard's write lock, acquired in
    /// index order (`begin_with` takes exactly one of them).
    pub fn with_admission_blocked<R>(&self, f: impl FnOnce(Vec<TxnId>, Option<Lsn>) -> R) -> R {
        let guards: Vec<_> = self.shards.iter().map(|shard| shard.write()).collect();
        let active: Vec<TxnId> = guards.iter().flat_map(|g| g.keys().copied()).collect();
        let oldest = guards
            .iter()
            .flat_map(|g| g.values().map(|c| c.first_lsn))
            .min();
        f(active, oldest)
    }

    /// Run `f` with the active transactions and their first LSNs while
    /// blocking admission (checkpointing). Same all-shards protocol as
    /// [`TxnRegistry::with_admission_blocked`].
    pub fn with_checkpoint_snapshot<R>(&self, f: impl FnOnce(Vec<(TxnId, Lsn)>) -> R) -> R {
        let guards: Vec<_> = self.shards.iter().map(|shard| shard.write()).collect();
        let entries: Vec<(TxnId, Lsn)> = guards
            .iter()
            .flat_map(|g| g.values().map(|c| (c.id, c.first_lsn)))
            .collect();
        f(entries)
    }

    /// Doom a transaction (non-blocking abort synchronization). Returns
    /// `false` if it is no longer active.
    pub fn doom(&self, id: TxnId) -> bool {
        if let Some(cell) = self.shard_of(id).read().get(&id) {
            cell.doomed.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::TableId;

    fn dummy_op() -> LogOp {
        LogOp::Insert {
            table: TableId(1),
            row: vec![],
        }
    }

    #[test]
    fn begin_get_remove() {
        let reg = TxnRegistry::new();
        let cell = reg.begin_with(TxnId(1), || Lsn(10));
        assert_eq!(cell.first_lsn, Lsn(10));
        assert!(reg.is_active(TxnId(1)));
        assert_eq!(reg.get(TxnId(1)).unwrap().id, TxnId(1));
        reg.remove(TxnId(1));
        assert!(!reg.is_active(TxnId(1)));
        assert!(matches!(reg.get(TxnId(1)), Err(DbError::TxnNotActive(_))));
    }

    #[test]
    fn snapshot_reports_oldest_first_lsn() {
        let reg = TxnRegistry::new();
        reg.begin_with(TxnId(1), || Lsn(5));
        reg.begin_with(TxnId(2), || Lsn(9));
        reg.with_admission_blocked(|active, oldest| {
            assert_eq!(active.len(), 2);
            assert_eq!(oldest, Some(Lsn(5)));
        });
        reg.remove(TxnId(1));
        reg.remove(TxnId(2));
        reg.with_admission_blocked(|active, oldest| {
            assert!(active.is_empty());
            assert_eq!(oldest, None);
        });
    }

    #[test]
    fn doom_flags_active_only() {
        let reg = TxnRegistry::new();
        let cell = reg.begin_with(TxnId(1), || Lsn(1));
        assert!(!cell.is_doomed());
        assert!(reg.doom(TxnId(1)));
        assert!(cell.is_doomed());
        assert!(!reg.doom(TxnId(99)));
    }

    #[test]
    fn sharded_snapshot_spans_every_shard() {
        // Ids chosen to land on many distinct shards; the admission
        // snapshot and the counters must still see all of them.
        let reg = TxnRegistry::new();
        for i in 0..40u64 {
            reg.begin_with(TxnId(i), || Lsn(100 + i));
        }
        assert_eq!(reg.active_count(), 40);
        assert_eq!(reg.active_ids().len(), 40);
        reg.with_admission_blocked(|active, oldest| {
            assert_eq!(active.len(), 40);
            assert_eq!(oldest, Some(Lsn(100)));
        });
        reg.with_checkpoint_snapshot(|entries| {
            assert_eq!(entries.len(), 40);
            assert!(entries
                .iter()
                .any(|&(id, lsn)| id == TxnId(39) && lsn == Lsn(139)));
        });
        for i in 0..40u64 {
            reg.remove(TxnId(i));
        }
        assert_eq!(reg.active_count(), 0);
    }

    #[test]
    fn undo_chain_accumulates() {
        let reg = TxnRegistry::new();
        let cell = reg.begin_with(TxnId(1), || Lsn(1));
        cell.state.lock().undo.push((Lsn(2), dummy_op()));
        cell.state.lock().undo.push((Lsn(3), dummy_op()));
        assert_eq!(cell.state.lock().undo.len(), 2);
    }
}
