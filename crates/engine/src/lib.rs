//! # morph-engine
//!
//! The transactional database facade tying storage, locking and the
//! write-ahead log together. This is the substrate the paper assumes to
//! exist (§1): strict two-phase record locking (every write takes an
//! exclusive lock — "delta updates are not allowed"), redo **and** undo
//! logging with LSNs, and rollback that emits **Compensating Log
//! Records** so that the log can always be replayed strictly forward.
//!
//! The facade also exposes the three hooks the transformation framework
//! needs and nothing more:
//!
//! * [`Database::write_fuzzy_mark`] — append a fuzzy mark carrying the
//!   active-transaction snapshot and the LSN log propagation must start
//!   from (§3.2),
//! * [`Database::doom`] — condemn a transaction during non-blocking
//!   abort synchronization (§3.4); its next operation fails and the
//!   client must roll it back,
//! * [`interceptor::OpInterceptor`] — a pre-operation hook used by the
//!   non-blocking *commit* strategy (mirroring source-table locks onto
//!   the transformed table) and by the trigger-based baseline of §2.1.

pub mod counters;
pub mod database;
pub mod interceptor;
pub mod migrations;
pub mod recovery;
pub mod registry;
pub mod router;

pub use counters::{Counters, CountersSnapshot};
pub use database::{CrashHook, Database, LogProtection, PlannedOp};
pub use interceptor::OpInterceptor;
pub use migrations::MigrationRegistry;
pub use morph_storage::{CommitTable, Snapshot, SnapshotTracker};
pub use recovery::{recover_from_bytes, recover_into, RecoveryReport};
pub use router::{ShardCounters, ShardedDatabase};
