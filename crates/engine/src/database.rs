//! The transactional database facade.
//!
//! ## Operation protocol
//!
//! Every data operation follows the same sequence:
//!
//! 1. doomed / frozen-table checks,
//! 2. exclusive (or shared, for reads) record lock via the wait–die
//!    lock manager — strict 2PL, released only at commit / rollback
//!    completion,
//! 3. registered [`OpInterceptor`]s run (lock mirroring for
//!    non-blocking-commit synchronization, trigger baselines),
//! 4. **atomically under the table latch**: constraint checks, log
//!    append, physical apply, row LSN stamp.
//!
//! Step 4's atomicity is load-bearing for the paper's correctness
//! argument: a fuzzy scan (which takes the same latch per chunk) can
//! never observe a physical change whose log record is not yet in the
//! log, and a row's LSN stamp is never stale. Together with the fuzzy
//! mark fixing `start_lsn` to the first LSN of the oldest active
//! transaction, this yields Theorem 1's "no lost updates" guarantee.
//!
//! ## Rollback
//!
//! Rollback applies prepared inverse operations in reverse order, each
//! logged as a CLR ([`LogRecord::Clr`]) *before* … strictly: atomically
//! with … its physical application, then writes
//! [`LogRecord::AbortEnd`]. The log propagator treats CLRs exactly like
//! forward operations, which is how aborted work is washed out of
//! transformed tables without ever scanning backwards.

use crate::counters::Counters;
use crate::interceptor::OpInterceptor;
use crate::migrations::MigrationRegistry;
use crate::registry::{TxnCell, TxnRegistry};
use morph_common::{DbError, DbResult, Key, Lsn, Schema, TableId, TxnId, Value};
use morph_storage::{Catalog, CommitTable, Snapshot, SnapshotTracker, Table, SYSTEM};
use morph_txn::{GranularMode, LockManager, LockManagerConfig, LockMode, TableLocks};
use morph_wal::{LogManager, LogOp, LogRecord};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A data operation about to be executed, as seen by interceptors.
#[derive(Debug)]
pub enum PlannedOp<'a> {
    /// Row about to be inserted.
    Insert { values: &'a [Value] },
    /// Columns about to change on the row at `key`.
    Update {
        key: &'a Key,
        cols: &'a [(usize, Value)],
    },
    /// Row at `key` about to be deleted.
    Delete { key: &'a Key },
    /// Row at `key` about to be read (shared lock).
    Read { key: &'a Key },
}

impl PlannedOp<'_> {
    /// The lock mode this operation takes.
    pub fn lock_mode(&self) -> LockMode {
        match self {
            PlannedOp::Read { .. } => LockMode::Shared,
            _ => LockMode::Exclusive,
        }
    }

    /// The primary key the operation targets (pre-image key for
    /// updates; for inserts, derived by the caller).
    pub fn key(&self) -> Option<&Key> {
        match self {
            PlannedOp::Insert { .. } => None,
            PlannedOp::Update { key, .. } | PlannedOp::Delete { key } | PlannedOp::Read { key } => {
                Some(key)
            }
        }
    }
}

/// Observer of named execution points inside long-running engine and
/// transformation code, installed with [`Database::set_crash_hook`].
///
/// This is the spine of the deterministic crash simulator: the hook
/// sees every `crash_point` a run passes through (in a deterministic
/// order for a deterministic workload), may inject workload activity
/// at safe points, and kills the run by returning
/// [`DbError::SimulatedCrash`] — which unwinds the transformation
/// exactly as a process kill would leave the *durable* state, once the
/// fault backend drops its unflushed bytes.
///
/// Production code never installs a hook; [`Database::crash_point`] is
/// a single relaxed atomic load in that case.
pub trait CrashHook: Send + Sync {
    /// Called at the named point. Returning an error aborts the
    /// surrounding operation (the simulated kill).
    fn at(&self, db: &Database, point: &str) -> DbResult<()>;
}

/// RAII registration of a truncation-protected LSN (see
/// [`Database::protect_log`]).
pub struct LogProtection {
    db: Arc<Database>,
    token: u64,
}

impl LogProtection {
    /// Move the protected point forward (the cursor advanced).
    pub fn update(&self, lsn: Lsn) {
        self.db.protected_lsns.write().insert(self.token, lsn);
    }
}

impl Drop for LogProtection {
    fn drop(&mut self) {
        self.db.protected_lsns.write().remove(&self.token);
    }
}

/// Multi-version state of a database: the commit table snapshot
/// readers consult for visibility, the tracker of live snapshot
/// timestamps (the GC low-watermark source), and the commit seal.
///
/// ## The seal
///
/// A snapshot's timestamp is the published log tail; a committing
/// writer becomes visible by recording its commit LSN in the commit
/// table. Those are two steps — without ordering, a reader could
/// observe `last_lsn() ≥ commit_lsn` while the commit-table entry is
/// not yet written, fall through to the floor rule, and wrongly treat
/// a committed-before-its-snapshot transaction as invisible. The
/// `seal` mutex makes `append(Commit) + record_commit` atomic with
/// respect to `last_lsn() + register`: a snapshot sees a commit's LSN
/// if and only if it sees its outcome. It is held across one log
/// append and two map writes — never across a durability wait — so
/// commit throughput is unaffected (the fsync stays outside).
///
/// Aborts need no seal: an active or aborted transaction is invisible
/// either way, and the floor rule keeps pruned aborts invisible (see
/// `morph_storage::mvcc` module docs for the full argument).
struct MvccState {
    enabled: AtomicBool,
    commit: Arc<CommitTable>,
    snapshots: Arc<SnapshotTracker>,
    seal: Mutex<()>,
}

impl Default for MvccState {
    fn default() -> Self {
        MvccState {
            enabled: AtomicBool::new(false),
            commit: Arc::new(CommitTable::default()),
            snapshots: Arc::new(SnapshotTracker::default()),
            seal: Mutex::new(()),
        }
    }
}

/// The morphdb database: catalog + WAL + lock manager + transactions.
pub struct Database {
    catalog: Catalog,
    log: Arc<LogManager>,
    locks: LockManager,
    table_locks: TableLocks,
    registry: TxnRegistry,
    counters: Counters,
    next_txn: AtomicU64,
    interceptors: RwLock<Vec<(u64, Arc<dyn OpInterceptor>)>>,
    next_interceptor: AtomicU64,
    /// LSNs that log truncation must not cross (live propagation
    /// cursors), keyed by protection token.
    protected_lsns: RwLock<std::collections::HashMap<u64, Lsn>>,
    next_protection: AtomicU64,
    crash_hook: RwLock<Option<Arc<dyn CrashHook>>>,
    has_crash_hook: AtomicBool,
    /// Table claims of running migration jobs (orchestrator conflict
    /// detection).
    migrations: MigrationRegistry,
    /// Multi-version read state (see [`MvccState`]). Inert until
    /// [`Database::enable_mvcc`].
    mvcc: MvccState,
    /// Snapshots pinned by in-flight snapshot-mode transformations
    /// ([`morph_storage::Snapshot`] per source table): the copy step
    /// registers one after writing its fuzzy mark so the population
    /// scan reads a clean cut instead of a fuzzy image, and clears it
    /// when population finishes (or the transformation dies).
    copy_snapshots: RwLock<HashMap<TableId, Arc<Snapshot>>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// In-memory database with default lock-manager settings.
    pub fn new() -> Database {
        Self::with_log(Arc::new(LogManager::new()), LockManagerConfig::default())
    }

    /// Database with a caller-supplied log (e.g. file-backed or
    /// preloaded for recovery) and lock configuration.
    pub fn with_log(log: Arc<LogManager>, lock_config: LockManagerConfig) -> Database {
        Database {
            catalog: Catalog::new(),
            log,
            locks: LockManager::new(lock_config),
            table_locks: TableLocks::new(lock_config.wait_timeout),
            registry: TxnRegistry::new(),
            counters: Counters::default(),
            next_txn: AtomicU64::new(1),
            interceptors: RwLock::new(Vec::new()),
            next_interceptor: AtomicU64::new(1),
            protected_lsns: RwLock::new(std::collections::HashMap::new()),
            next_protection: AtomicU64::new(1),
            crash_hook: RwLock::new(None),
            has_crash_hook: AtomicBool::new(false),
            migrations: MigrationRegistry::new(),
            mvcc: MvccState::default(),
            copy_snapshots: RwLock::new(HashMap::new()),
        }
    }

    // --- crash points (simulation only) -------------------------------

    /// Install the crash-simulation hook (see [`CrashHook`]).
    pub fn set_crash_hook(&self, hook: Arc<dyn CrashHook>) {
        *self.crash_hook.write() = Some(hook);
        self.has_crash_hook.store(true, Ordering::Release);
    }

    /// Remove the crash-simulation hook.
    pub fn clear_crash_hook(&self) {
        *self.crash_hook.write() = None;
        self.has_crash_hook.store(false, Ordering::Release);
    }

    /// Report reaching the named execution point to the installed
    /// [`CrashHook`], if any. One atomic load when no hook is set.
    pub fn crash_point(&self, point: &str) -> DbResult<()> {
        if !self.has_crash_hook.load(Ordering::Acquire) {
            return Ok(());
        }
        let hook = self.crash_hook.read().clone();
        match hook {
            Some(h) => h.at(self, point),
            None => Ok(()),
        }
    }

    // --- component access ---------------------------------------------

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The write-ahead log.
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// The record-lock manager (the transformation framework installs
    /// transferred grants through this).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// The table-granular (intention) lock manager. Every data
    /// operation takes IS/IX here before its record lock, so a
    /// whole-table S/X lock ("multigranularity locking", §4.3 remark)
    /// waits out record-level activity without polling.
    pub fn table_locks(&self) -> &TableLocks {
        &self.table_locks
    }

    /// Engine activity counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Point-in-time snapshot of this engine's counters with the WAL
    /// and lock-manager figures folded in — the per-shard leaf of
    /// [`ShardedDatabase::counters`](crate::router::ShardedDatabase::counters).
    pub fn counters_snapshot(&self) -> crate::counters::CountersSnapshot {
        let mut s = self.counters.full_snapshot();
        s.wal_flushes = self.log.flush_count();
        s.wal_records = self.log.len() as u64;
        s.lock_waits = self.locks.waits();
        s
    }

    /// Table claims of running migration jobs (see
    /// [`MigrationRegistry`]).
    pub fn migrations(&self) -> &MigrationRegistry {
        &self.migrations
    }

    /// Convenience: create a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> DbResult<Arc<Table>> {
        self.catalog.create_table(name, schema)
    }

    // --- transaction lifecycle ------------------------------------------

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        self.registry
            .begin_with(id, || self.log.append(LogRecord::Begin { txn: id }));
        Counters::bump(&self.counters.begins);
        id
    }

    /// Commit. If the transaction was doomed by a synchronization step,
    /// it is rolled back instead and `TxnDoomed` is returned.
    pub fn commit(&self, txn: TxnId) -> DbResult<()> {
        let cell = self.registry.get(txn)?;
        if cell.is_doomed() {
            self.rollback_cell(&cell)?;
            Counters::bump(&self.counters.doomed_aborts);
            return Err(DbError::TxnDoomed(txn));
        }
        // Read-only transactions have no redo/undo work: their Commit
        // record need not be durable before they acknowledge (there is
        // nothing to lose), so they skip the durability wait — and with
        // it the fsync — entirely. Writers wait on the group-commit
        // watermark: one backend flush may cover many committers.
        let wrote = !cell.state.lock().undo.is_empty();
        self.crash_point("commit.wal_append")?;
        let commit_lsn = if self.mvcc_enabled() {
            // Atomic with respect to snapshot acquisition: a snapshot
            // whose timestamp covers this commit's LSN must also see
            // its outcome in the commit table (see [`MvccState`]). The
            // seal spans one append and one map insert only — the
            // durability wait below stays outside it.
            let _seal = self.mvcc.seal.lock();
            let lsn = self.log.append(LogRecord::Commit { txn });
            self.mvcc.commit.record_commit(txn, lsn);
            lsn
        } else {
            self.log.append(LogRecord::Commit { txn })
        };
        if wrote {
            self.log.wait_durable(commit_lsn)?;
        }
        self.crash_point("commit.wal_durable")?;
        self.registry.remove(txn);
        self.locks.release_all(txn);
        self.table_locks.release_all(txn);
        Counters::bump(&self.counters.commits);
        Ok(())
    }

    /// Roll the transaction back, emitting CLRs.
    pub fn abort(&self, txn: TxnId) -> DbResult<()> {
        let cell = self.registry.get(txn)?;
        let was_doomed = cell.is_doomed();
        self.rollback_cell(&cell)?;
        if was_doomed {
            Counters::bump(&self.counters.doomed_aborts);
        }
        Ok(())
    }

    fn rollback_cell(&self, cell: &Arc<TxnCell>) -> DbResult<()> {
        let txn = cell.id;
        self.log.append(LogRecord::Abort { txn });
        let undo = std::mem::take(&mut cell.state.lock().undo);
        let wrote = !undo.is_empty();
        let mut first_err = None;
        for (undone_lsn, inverse) in undo.into_iter().rev() {
            // Rollback must run to completion no matter what: skipping
            // the lock release or leaving the transaction registered
            // would wedge every future accessor of its records. A
            // compensation can legitimately fail only when its table
            // was dropped after the fact (a completed schema change
            // discarding a source table), in which case the physical
            // state no longer matters.
            if let Err(e) = self.apply_clr(txn, undone_lsn, inverse) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        let end_lsn = self.log.append(LogRecord::AbortEnd { txn });
        if self.mvcc_enabled() {
            // No seal needed: the transaction was invisible while
            // active (no outcome entry, ops above the floor) and stays
            // invisible as Aborted — there is no visibility edge for a
            // snapshot to race with. The end LSN bounds commit-table
            // pruning: once it is at or below the GC watermark, the
            // compensating SYSTEM-stamped CLR versions resolve every
            // read that could still reach the aborted entries.
            self.mvcc.commit.record_abort(txn, end_lsn);
        }
        if wrote {
            // CLRs must be durable before the rollback acknowledges,
            // through the same group-commit watermark as commits.
            self.log.wait_durable(end_lsn)?;
        }
        self.crash_point("abort.wal_durable")?;
        self.registry.remove(txn);
        self.locks.release_all(txn);
        self.table_locks.release_all(txn);
        Counters::bump(&self.counters.aborts);
        match first_err {
            // Dropped table: the compensation target no longer exists;
            // the rollback is trivially complete for it.
            None | Some(DbError::NoSuchTableId(_)) => Ok(()),
            Some(e) => Err(DbError::Internal(format!(
                "rollback of {txn} could not compensate an operation: {e}"
            ))),
        }
    }

    /// Apply one compensation: log the CLR and execute the inverse
    /// operation atomically under the table latch.
    fn apply_clr(&self, txn: TxnId, undone_lsn: Lsn, inverse: LogOp) -> DbResult<()> {
        let table = self.catalog.get_by_id(inverse.table())?;
        match &inverse {
            LogOp::Insert { row, .. } => {
                let row = row.clone();
                let log = &self.log;
                let rec = LogRecord::Clr {
                    txn,
                    undone_lsn,
                    op: inverse.clone(),
                };
                table.insert_with(row, || Ok(log.append(rec)))?;
            }
            LogOp::Delete { key, .. } => {
                let rec = LogRecord::Clr {
                    txn,
                    undone_lsn,
                    op: inverse.clone(),
                };
                let log = &self.log;
                // The CLR's tombstone is stamped SYSTEM (visible by
                // LSN order): snapshots taken after the rollback see
                // the compensated state without consulting the — soon
                // pruned — aborted writer's outcome.
                table.delete_with_writer(key, SYSTEM, |_| Ok(log.append(rec)))?;
            }
            LogOp::Update { key, new, .. } => {
                let rec = LogRecord::Clr {
                    txn,
                    undone_lsn,
                    op: inverse.clone(),
                };
                let log = &self.log;
                table.update_with(key, new, |_| Ok(log.append(rec)))?;
            }
        }
        Ok(())
    }

    /// Whether `txn` is still active.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.registry.is_active(txn)
    }

    /// Ids of all active transactions.
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.registry.active_ids()
    }

    /// Doom a transaction: its next operation (and commit) fail with
    /// [`DbError::TxnDoomed`], forcing the client to roll it back. Used
    /// by non-blocking-abort synchronization (§3.4). Returns `false`
    /// if the transaction already finished.
    pub fn doom(&self, txn: TxnId) -> bool {
        self.registry.doom(txn)
    }

    // --- fuzzy mark (§3.2) ------------------------------------------------

    /// Append a fuzzy mark. Atomically (with respect to transaction
    /// admission) snapshots the active transactions and computes the
    /// LSN log propagation must start from: the first LSN of the
    /// oldest active transaction, or the mark itself when the system
    /// is quiescent. Returns `(mark_lsn, start_lsn, active)`.
    pub fn write_fuzzy_mark(&self) -> (Lsn, Lsn, Vec<TxnId>) {
        self.registry.with_admission_blocked(|active, oldest| {
            let start = oldest.unwrap_or_else(|| self.log.last_lsn().next());
            let mark = self.log.append(LogRecord::FuzzyMark {
                active: active.clone(),
                start_lsn: start,
            });
            (mark, start, active)
        })
    }

    /// Append a checkpoint record: the active transactions and their
    /// first LSNs. Restart recovery replays the whole log regardless
    /// (the engine is main-memory), but checkpoints let log-shipping
    /// and diagnostic tooling bound their scans, and keep the log
    /// format compatible with disk-based consumers.
    pub fn write_checkpoint(&self) -> Lsn {
        self.registry
            .with_checkpoint_snapshot(|active| self.log.append(LogRecord::Checkpoint { active }))
    }

    // --- MVCC snapshot reads ----------------------------------------------

    /// Switch multi-version reads on: every table (current and future)
    /// starts archiving pre-images on writes, commits and aborts are
    /// recorded in the commit table, and [`Database::begin_snapshot`]
    /// hands out consistent read timestamps. One-way and idempotent;
    /// rows written before the switch stay visible to every snapshot
    /// (they carry the `SYSTEM` writer stamp, visible by LSN order).
    pub fn enable_mvcc(&self) {
        self.catalog.enable_versioning_everywhere();
        self.mvcc.enabled.store(true, Ordering::Release);
    }

    /// Whether [`Database::enable_mvcc`] has been called.
    pub fn mvcc_enabled(&self) -> bool {
        self.mvcc.enabled.load(Ordering::Acquire)
    }

    /// The commit table snapshot visibility checks consult. Handed to
    /// [`morph_storage::Table::snapshot_scan`] and friends by callers
    /// that drive scanners directly (the transformation copy step, the
    /// benches).
    pub fn commit_table(&self) -> Arc<CommitTable> {
        Arc::clone(&self.mvcc.commit)
    }

    /// Number of snapshots currently live (tests and GC diagnostics).
    pub fn live_snapshots(&self) -> usize {
        self.mvcc.snapshots.live_count()
    }

    /// Take a consistent read timestamp: everything committed up to
    /// now is visible, nothing that commits later is. The snapshot
    /// pins the GC watermark until dropped and **never takes a record
    /// or table lock** — reads through it cannot block on, or be
    /// blocked by, writers or in-flight schema changes.
    pub fn begin_snapshot(&self) -> DbResult<Arc<Snapshot>> {
        self.crash_point("mvcc.snapshot_acquire")?;
        // The seal orders this against committers: a commit whose LSN
        // is at or below our timestamp has its outcome recorded before
        // we read the tail (see [`MvccState`]).
        let _seal = self.mvcc.seal.lock();
        let lsn = self.log.last_lsn();
        Ok(Arc::new(Snapshot::register(
            Arc::clone(&self.mvcc.snapshots),
            lsn,
        )))
    }

    /// Read the row at `key` as of `snap`. Lock-free (one shard latch).
    pub fn snapshot_read(
        &self,
        snap: &Snapshot,
        table: &str,
        key: &Key,
    ) -> DbResult<Option<Vec<Value>>> {
        let t = self.catalog.get(table)?;
        Ok(t.snapshot_get(key, snap.lsn(), &self.mvcc.commit)
            .map(|r| r.values))
    }

    /// All rows of `table` as of `snap`, in key order. Lock-free; the
    /// scan takes each shard latch briefly per chunk, so it neither
    /// blocks writers for long nor waits on any transaction lock.
    pub fn snapshot_scan(&self, snap: &Snapshot, table: &str) -> DbResult<Vec<(Key, Vec<Value>)>> {
        let t = self.catalog.get(table)?;
        let rows = t
            .snapshot_scan(256, snap.lsn(), self.commit_table())
            .collect_all()
            .into_iter()
            .map(|(k, r)| (k, r.values))
            .collect();
        Ok(rows)
    }

    /// Reclaim archived versions nothing can see any more. The
    /// low-watermark is the minimum of
    ///
    /// 1. the oldest live snapshot timestamp,
    /// 2. the first LSN of the oldest active transaction (its ops all
    ///    carry LSNs at or above it, so they stay resolvable while it
    ///    can still commit or abort),
    /// 3. the WAL durability watermark (restart recovery replays from
    ///    genesis, but tying GC to durability means a crash can never
    ///    lose the outcome of a transaction whose versions were
    ///    already reclaimed).
    ///
    /// Also prunes the commit table: outcomes ending at or below the
    /// watermark are dropped and the visibility *floor* rises, which
    /// is what keeps pruned history correctly visible (see
    /// `morph_storage::mvcc`). Returns the number of version entries
    /// reclaimed. No-op until [`Database::enable_mvcc`].
    pub fn mvcc_gc(&self) -> DbResult<u64> {
        if !self.mvcc_enabled() {
            return Ok(0);
        }
        let durable = self.log.durability_watermark();
        let oldest_txn = self
            .registry
            .with_checkpoint_snapshot(|active| active.iter().map(|(_, l)| *l).min());
        let mut watermark = durable;
        if let Some(l) = oldest_txn {
            watermark = watermark.min(l);
        }
        if let Some(l) = self.mvcc.snapshots.oldest() {
            watermark = watermark.min(l);
        }
        self.crash_point("mvcc.gc_reclaim")?;
        let mut reclaimed = 0u64;
        for t in self.catalog.tables() {
            reclaimed += t.gc_versions(watermark, &self.mvcc.commit);
        }
        self.mvcc.commit.prune(watermark);
        self.counters
            .mvcc_reclaimed
            .fetch_add(reclaimed, Ordering::Relaxed);
        Ok(reclaimed)
    }

    /// Pin a copy snapshot for `table` (snapshot-mode transformation
    /// population; see the `copy_snapshots` field).
    pub fn register_copy_snapshot(&self, table: TableId, snap: Arc<Snapshot>) {
        self.copy_snapshots.write().insert(table, snap);
    }

    /// Release the copy snapshot for `table`, if any.
    pub fn clear_copy_snapshot(&self, table: TableId) {
        self.copy_snapshots.write().remove(&table);
    }

    /// The pinned copy snapshot for `table`, if a snapshot-mode
    /// transformation is populating from it right now. The operator
    /// scan loops branch on this: `Some` → clean snapshot cut, `None`
    /// → fuzzy scan.
    pub fn copy_snapshot_for(&self, table: TableId) -> Option<Arc<Snapshot>> {
        self.copy_snapshots.read().get(&table).cloned()
    }

    /// Register an LSN that log truncation must never cross (a live
    /// propagation cursor). The returned guard moves the protected
    /// point forward via [`LogProtection::update`] and releases it on
    /// drop — so a transformation that dies on any path cannot leave a
    /// stale protection pinning the log.
    pub fn protect_log(self: &Arc<Self>, lsn: Lsn) -> LogProtection {
        let token = self.next_protection.fetch_add(1, Ordering::Relaxed);
        self.protected_lsns.write().insert(token, lsn);
        LogProtection {
            db: Arc::clone(self),
            token,
        }
    }

    /// Truncate the in-memory log up to (but excluding) the oldest LSN
    /// anything still needs: the first LSN of any active transaction
    /// and every registered protection ([`Database::protect_log`]).
    /// Returns the number of records discarded. The file backend, if
    /// any, keeps the complete archive for restart recovery.
    pub fn truncate_log(&self) -> DbResult<usize> {
        let oldest_protected = self.protected_lsns.read().values().copied().min();
        let keep = self.registry.with_checkpoint_snapshot(|active| {
            let oldest_txn = active.iter().map(|(_, l)| *l).min();
            match (oldest_txn, oldest_protected) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                // Nothing needs the log: everything up to the tail may
                // go (the next append is still totally ordered).
                (None, None) => self.log.last_lsn().next(),
            }
        });
        self.log.truncate_until(keep)
    }

    // --- interceptors ------------------------------------------------------

    /// Register an interceptor; returns a token for removal.
    pub fn add_interceptor(&self, i: Arc<dyn OpInterceptor>) -> u64 {
        let token = self.next_interceptor.fetch_add(1, Ordering::Relaxed);
        self.interceptors.write().push((token, i));
        token
    }

    /// Remove a previously registered interceptor.
    pub fn remove_interceptor(&self, token: u64) {
        self.interceptors.write().retain(|(t, _)| *t != token);
    }

    fn run_interceptors(&self, txn: TxnId, table: &Table, op: &PlannedOp<'_>) -> DbResult<()> {
        // Fast path: no interceptors registered.
        let snapshot: Vec<Arc<dyn OpInterceptor>> = {
            let g = self.interceptors.read();
            if g.is_empty() {
                return Ok(());
            }
            g.iter().map(|(_, i)| Arc::clone(i)).collect()
        };
        for i in snapshot {
            i.before_op(self, txn, table, op)?;
        }
        Ok(())
    }

    // --- data operations ----------------------------------------------------

    /// Acquire `mode` on `table` for `txn` unless an already-held mode
    /// covers it (cached in the transaction cell, so the global
    /// table-lock manager is consulted roughly twice per transaction
    /// rather than once per operation).
    fn ensure_table_lock(
        &self,
        cell: &TxnCell,
        table: morph_common::TableId,
        mode: GranularMode,
    ) -> DbResult<()> {
        {
            let state = cell.state.lock();
            if state
                .table_modes
                .iter()
                .any(|(t, m)| *t == table && m.covers(mode))
            {
                return Ok(());
            }
        }
        self.table_locks.lock(cell.id, table, mode)?;
        let mut state = cell.state.lock();
        match state.table_modes.iter_mut().find(|(t, _)| *t == table) {
            Some((_, m)) => *m = m.combine(mode),
            None => state.table_modes.push((table, mode)),
        }
        Ok(())
    }

    fn cell_for_op(&self, txn: TxnId) -> DbResult<Arc<TxnCell>> {
        let cell = self.registry.get(txn)?;
        if cell.is_doomed() {
            return Err(DbError::TxnDoomed(txn));
        }
        Ok(cell)
    }

    /// Insert a row into the named table.
    pub fn insert(&self, txn: TxnId, table: &str, values: Vec<Value>) -> DbResult<Key> {
        let t = self.catalog.get(table)?;
        self.insert_in(txn, &t, values)
    }

    /// Insert a row into a resolved table.
    pub fn insert_in(&self, txn: TxnId, table: &Arc<Table>, values: Vec<Value>) -> DbResult<Key> {
        let cell = self.cell_for_op(txn)?;
        table.check_access(txn)?;
        let schema = table.schema();
        schema.validate(&values)?;
        let key = schema.key_of(&values);
        self.ensure_table_lock(&cell, table.id(), GranularMode::IntentionExclusive)?;
        self.locks
            .lock(txn, table.id(), &key, LockMode::Exclusive)?;
        self.run_interceptors(txn, table, &PlannedOp::Insert { values: &values })?;

        let op = LogOp::Insert {
            table: table.id(),
            row: values.clone(),
        };
        let mut lsn = Lsn::ZERO;
        table.insert_with_writer(values.clone(), txn, || {
            // Re-check access under the latch: a synchronization step
            // may have frozen the table since the entry check.
            table.check_access(txn)?;
            lsn = self.log.append(LogRecord::Op { txn, op });
            Ok(lsn)
        })?;
        cell.state.lock().undo.push((
            lsn,
            LogOp::Delete {
                table: table.id(),
                key: key.clone(),
                old: values,
            },
        ));
        Counters::bump(&self.counters.ops);
        Ok(key)
    }

    /// Update columns of the row at `key` in the named table.
    pub fn update(
        &self,
        txn: TxnId,
        table: &str,
        key: &Key,
        cols: &[(usize, Value)],
    ) -> DbResult<()> {
        let t = self.catalog.get(table)?;
        self.update_in(txn, &t, key, cols)
    }

    /// Update columns of the row at `key` in a resolved table.
    pub fn update_in(
        &self,
        txn: TxnId,
        table: &Arc<Table>,
        key: &Key,
        cols: &[(usize, Value)],
    ) -> DbResult<()> {
        let cell = self.cell_for_op(txn)?;
        table.check_access(txn)?;
        self.ensure_table_lock(&cell, table.id(), GranularMode::IntentionExclusive)?;
        self.locks.lock(txn, table.id(), key, LockMode::Exclusive)?;

        // If primary-key columns change, the destination key must be
        // locked too before anything is logged.
        let schema = table.schema();
        let pkey_changes = schema
            .pkey()
            .iter()
            .any(|p| cols.iter().any(|(i, _)| i == p));
        if pkey_changes {
            let row = table
                .get(key)
                .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
            let mut new_values = row.values.clone();
            for (i, v) in cols {
                if *i < new_values.len() {
                    new_values[*i] = v.clone();
                }
            }
            let new_key = schema.key_of(&new_values);
            if new_key != *key {
                self.locks
                    .lock(txn, table.id(), &new_key, LockMode::Exclusive)?;
            }
        }
        self.run_interceptors(txn, table, &PlannedOp::Update { key, cols })?;

        let mut lsn = Lsn::ZERO;
        let outcome = table.update_with_writer(key, cols, txn, |plan| {
            table.check_access(txn)?;
            lsn = self.log.append(LogRecord::Op {
                txn,
                op: LogOp::Update {
                    table: table.id(),
                    key: key.clone(),
                    old: plan.old_cols.clone(),
                    new: cols.to_vec(),
                },
            });
            Ok(lsn)
        })?;
        cell.state.lock().undo.push((
            lsn,
            LogOp::Update {
                table: table.id(),
                key: outcome.new_key,
                old: cols.to_vec(),
                new: outcome.old_cols,
            },
        ));
        Counters::bump(&self.counters.ops);
        Ok(())
    }

    /// Delete the row at `key` in the named table.
    pub fn delete(&self, txn: TxnId, table: &str, key: &Key) -> DbResult<()> {
        let t = self.catalog.get(table)?;
        self.delete_in(txn, &t, key)
    }

    /// Delete the row at `key` in a resolved table.
    pub fn delete_in(&self, txn: TxnId, table: &Arc<Table>, key: &Key) -> DbResult<()> {
        let cell = self.cell_for_op(txn)?;
        table.check_access(txn)?;
        self.ensure_table_lock(&cell, table.id(), GranularMode::IntentionExclusive)?;
        self.locks.lock(txn, table.id(), key, LockMode::Exclusive)?;
        self.run_interceptors(txn, table, &PlannedOp::Delete { key })?;

        let mut pre_image = Vec::new();
        let mut lsn = Lsn::ZERO;
        table.delete_with_writer(key, txn, |row| {
            table.check_access(txn)?;
            pre_image = row.values.clone();
            lsn = self.log.append(LogRecord::Op {
                txn,
                op: LogOp::Delete {
                    table: table.id(),
                    key: key.clone(),
                    old: row.values.clone(),
                },
            });
            Ok(lsn)
        })?;
        cell.state.lock().undo.push((
            lsn,
            LogOp::Insert {
                table: table.id(),
                row: pre_image,
            },
        ));
        Counters::bump(&self.counters.ops);
        Ok(())
    }

    /// Read the row at `key` under a shared lock.
    pub fn read(&self, txn: TxnId, table: &str, key: &Key) -> DbResult<Option<Vec<Value>>> {
        let t = self.catalog.get(table)?;
        self.read_in(txn, &t, key)
    }

    /// Read the row at `key` in a resolved table under a shared lock.
    pub fn read_in(
        &self,
        txn: TxnId,
        table: &Arc<Table>,
        key: &Key,
    ) -> DbResult<Option<Vec<Value>>> {
        let cell = self.cell_for_op(txn)?;
        table.check_access(txn)?;
        self.ensure_table_lock(&cell, table.id(), GranularMode::IntentionShared)?;
        self.locks.lock(txn, table.id(), key, LockMode::Shared)?;
        self.run_interceptors(txn, table, &PlannedOp::Read { key })?;
        Ok(table.get(key).map(|r| r.values))
    }

    /// Lock-free dirty read (the consistency checker's "read without
    /// using locks", §5.3 — it still takes the short physical latch).
    pub fn read_dirty(&self, table: &str, key: &Key) -> DbResult<Option<Vec<Value>>> {
        Ok(self.catalog.get(table)?.get(key).map(|r| r.values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::ColumnType;

    fn db_with_table() -> (Database, Arc<Table>) {
        let db = Database::new();
        let schema = Schema::builder()
            .column("id", ColumnType::Int)
            .column("val", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let t = db.create_table("t", schema).unwrap();
        (db, t)
    }

    fn row(id: i64, v: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::str(v)]
    }

    #[test]
    fn insert_commit_visible() {
        let (db, t) = db_with_table();
        let txn = db.begin();
        db.insert(txn, "t", row(1, "a")).unwrap();
        db.commit(txn).unwrap();
        assert_eq!(t.get(&Key::single(1)).unwrap().values, row(1, "a"));
        assert_eq!(Counters::get(&db.counters().commits), 1);
        // Log: Begin, Op, Commit.
        assert_eq!(db.log().len(), 3);
    }

    #[test]
    fn rollback_restores_everything_and_writes_clrs() {
        let (db, t) = db_with_table();
        let setup = db.begin();
        db.insert(setup, "t", row(1, "keep")).unwrap();
        db.insert(setup, "t", row(2, "victim")).unwrap();
        db.commit(setup).unwrap();

        let txn = db.begin();
        db.insert(txn, "t", row(3, "new")).unwrap();
        db.update(txn, "t", &Key::single(1), &[(1, Value::str("dirty"))])
            .unwrap();
        db.delete(txn, "t", &Key::single(2)).unwrap();
        db.abort(txn).unwrap();

        assert_eq!(t.get(&Key::single(1)).unwrap().values, row(1, "keep"));
        assert_eq!(t.get(&Key::single(2)).unwrap().values, row(2, "victim"));
        assert!(t.get(&Key::single(3)).is_none());

        // 3 CLRs + Abort + AbortEnd present.
        let mut clrs = 0;
        let mut abort_end = 0;
        for (_, rec) in db.log().read_range(Lsn(1), usize::MAX) {
            match &*rec {
                LogRecord::Clr { .. } => clrs += 1,
                LogRecord::AbortEnd { .. } => abort_end += 1,
                _ => {}
            }
        }
        assert_eq!(clrs, 3);
        assert_eq!(abort_end, 1);
        // Locks released.
        assert_eq!(db.locks().held_count(txn), 0);
    }

    #[test]
    fn rollback_of_pkey_move_restores_original_key() {
        let (db, t) = db_with_table();
        let setup = db.begin();
        db.insert(setup, "t", row(1, "a")).unwrap();
        db.commit(setup).unwrap();

        let txn = db.begin();
        db.update(txn, "t", &Key::single(1), &[(0, Value::Int(9))])
            .unwrap();
        assert!(t.get(&Key::single(9)).is_some());
        db.abort(txn).unwrap();
        assert!(t.get(&Key::single(9)).is_none());
        assert_eq!(t.get(&Key::single(1)).unwrap().values, row(1, "a"));
    }

    #[test]
    fn doomed_txn_rejected_and_rolled_back_on_commit() {
        let (db, t) = db_with_table();
        let txn = db.begin();
        db.insert(txn, "t", row(1, "a")).unwrap();
        assert!(db.doom(txn));
        assert!(matches!(
            db.insert(txn, "t", row(2, "b")),
            Err(DbError::TxnDoomed(_))
        ));
        assert!(matches!(db.commit(txn), Err(DbError::TxnDoomed(_))));
        // Commit performed the rollback.
        assert!(t.get(&Key::single(1)).is_none());
        assert!(!db.is_active(txn));
        assert_eq!(Counters::get(&db.counters().doomed_aborts), 1);
    }

    #[test]
    fn write_conflict_between_txns_respects_locks() {
        let (db, _t) = db_with_table();
        let t1 = db.begin();
        let t2 = db.begin();
        db.insert(t1, "t", row(1, "a")).unwrap();
        // Younger t2 dies trying to touch the same record.
        assert!(matches!(
            db.update(t2, "t", &Key::single(1), &[(1, Value::str("x"))]),
            Err(DbError::Deadlock(_))
        ));
        db.abort(t2).unwrap();
        db.commit(t1).unwrap();
    }

    #[test]
    fn read_takes_shared_lock() {
        let (db, _t) = db_with_table();
        let w = db.begin();
        db.insert(w, "t", row(1, "a")).unwrap();
        db.commit(w).unwrap();

        let r1 = db.begin();
        let r2 = db.begin();
        assert_eq!(
            db.read(r1, "t", &Key::single(1)).unwrap(),
            Some(row(1, "a"))
        );
        assert_eq!(
            db.read(r2, "t", &Key::single(1)).unwrap(),
            Some(row(1, "a"))
        );
        // A younger writer dies against the two readers.
        let w2 = db.begin();
        assert!(matches!(
            db.update(w2, "t", &Key::single(1), &[(1, Value::str("x"))]),
            Err(DbError::Deadlock(_))
        ));
        db.abort(w2).unwrap();
        db.commit(r1).unwrap();
        db.commit(r2).unwrap();
    }

    #[test]
    fn read_missing_row_is_none_dirty_read_needs_no_txn() {
        let (db, _t) = db_with_table();
        let txn = db.begin();
        assert_eq!(db.read(txn, "t", &Key::single(404)).unwrap(), None);
        db.commit(txn).unwrap();
        assert_eq!(db.read_dirty("t", &Key::single(404)).unwrap(), None);
        assert!(db.read_dirty("ghost", &Key::single(1)).is_err());
    }

    #[test]
    fn fuzzy_mark_reports_active_and_start() {
        let (db, _t) = db_with_table();
        // Quiescent: start == mark lsn.
        let (mark, start, active) = db.write_fuzzy_mark();
        assert!(active.is_empty());
        assert_eq!(mark, start);

        let txn = db.begin();
        db.insert(txn, "t", row(1, "a")).unwrap();
        let (mark2, start2, active2) = db.write_fuzzy_mark();
        assert_eq!(active2, vec![txn]);
        // Start points at the Begin record of the active txn, which
        // precedes its op and the mark.
        assert!(start2 < mark2);
        assert_eq!(*db.log().read(start2).unwrap(), LogRecord::Begin { txn });
        db.commit(txn).unwrap();
    }

    #[test]
    fn frozen_table_blocks_new_txn_allows_grandfathered() {
        let (db, t) = db_with_table();
        let old = db.begin();
        db.insert(old, "t", row(1, "a")).unwrap();
        t.freeze([old].into_iter().collect());
        let newer = db.begin();
        assert!(matches!(
            db.insert(newer, "t", row(2, "b")),
            Err(DbError::TableFrozen(_))
        ));
        db.insert(old, "t", row(3, "c")).unwrap();
        db.commit(old).unwrap();
        db.abort(newer).unwrap();
    }

    #[test]
    fn ops_on_unknown_txn_fail() {
        let (db, _t) = db_with_table();
        assert!(matches!(
            db.insert(TxnId(999), "t", row(1, "a")),
            Err(DbError::TxnNotActive(_))
        ));
        assert!(matches!(
            db.commit(TxnId(999)),
            Err(DbError::TxnNotActive(_))
        ));
    }

    #[test]
    fn interceptor_can_veto_operations() {
        struct Veto;
        impl OpInterceptor for Veto {
            fn before_op(
                &self,
                _db: &Database,
                _txn: TxnId,
                _table: &Table,
                op: &PlannedOp<'_>,
            ) -> DbResult<()> {
                if matches!(op, PlannedOp::Delete { .. }) {
                    return Err(DbError::Internal("deletes vetoed".into()));
                }
                Ok(())
            }
        }
        let (db, t) = db_with_table();
        let token = db.add_interceptor(Arc::new(Veto));
        let txn = db.begin();
        db.insert(txn, "t", row(1, "a")).unwrap();
        assert!(db.delete(txn, "t", &Key::single(1)).is_err());
        assert!(t.get(&Key::single(1)).is_some(), "veto must precede apply");
        db.remove_interceptor(token);
        db.delete(txn, "t", &Key::single(1)).unwrap();
        db.commit(txn).unwrap();
    }

    #[test]
    fn update_missing_key_fails_cleanly() {
        let (db, _t) = db_with_table();
        let txn = db.begin();
        assert!(matches!(
            db.update(txn, "t", &Key::single(404), &[(1, Value::str("x"))]),
            Err(DbError::KeyNotFound(_))
        ));
        assert!(matches!(
            db.delete(txn, "t", &Key::single(404)),
            Err(DbError::KeyNotFound(_))
        ));
        // Txn still usable after a non-fatal error.
        db.insert(txn, "t", row(1, "a")).unwrap();
        db.commit(txn).unwrap();
    }

    #[test]
    fn truncation_respects_active_txns_and_protections() {
        let (db, _t) = db_with_table();
        let db = Arc::new(db);
        let setup = db.begin();
        for i in 0..10 {
            db.insert(setup, "t", row(i, "x")).unwrap();
        }
        db.commit(setup).unwrap();
        let total = db.log().len();

        // An active transaction pins the log at its Begin record.
        let active = db.begin();
        db.insert(active, "t", row(100, "y")).unwrap();
        let dropped = db.truncate_log().unwrap();
        assert!(dropped > 0, "prefix before the active txn is reclaimable");
        assert!(db
            .log()
            .read(db.registry.get(active).unwrap().first_lsn)
            .is_some());

        // A protection guard pins it harder.
        let guard = db.protect_log(Lsn(1)); // nothing below 1 → no-op
        assert_eq!(db.truncate_log().unwrap(), 0);
        db.commit(active).unwrap();
        assert_eq!(db.truncate_log().unwrap(), 0, "guard still pins LSN 1");
        drop(guard);
        // Everything is now reclaimable.
        assert!(db.truncate_log().unwrap() > 0);
        assert!(db.log().len() < total);
        // The engine keeps working after truncation.
        let txn = db.begin();
        db.insert(txn, "t", row(200, "z")).unwrap();
        db.commit(txn).unwrap();
    }

    #[test]
    fn checkpoint_records_active_txns() {
        let (db, _t) = db_with_table();
        let t1 = db.begin();
        db.insert(t1, "t", row(1, "a")).unwrap();
        let lsn = db.write_checkpoint();
        match &*db.log().read(lsn).unwrap() {
            LogRecord::Checkpoint { active } => {
                assert_eq!(active.len(), 1);
                assert_eq!(active[0].0, t1);
                // First LSN points at the Begin record.
                assert_eq!(
                    *db.log().read(active[0].1).unwrap(),
                    LogRecord::Begin { txn: t1 }
                );
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
        db.commit(t1).unwrap();
        // Quiescent checkpoint is empty; recovery replays across it.
        let lsn = db.write_checkpoint();
        match &*db.log().read(lsn).unwrap() {
            LogRecord::Checkpoint { active } => assert!(active.is_empty()),
            other => panic!("expected checkpoint, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_sees_only_prior_commits() {
        let (db, _t) = db_with_table();
        db.enable_mvcc();
        let w = db.begin();
        db.insert(w, "t", row(1, "v1")).unwrap();
        db.commit(w).unwrap();

        let snap = db.begin_snapshot().unwrap();
        // Later committed work is invisible to the snapshot…
        let w2 = db.begin();
        db.update(w2, "t", &Key::single(1), &[(1, Value::str("v2"))])
            .unwrap();
        db.insert(w2, "t", row(2, "new")).unwrap();
        db.commit(w2).unwrap();
        assert_eq!(
            db.snapshot_read(&snap, "t", &Key::single(1)).unwrap(),
            Some(row(1, "v1"))
        );
        assert_eq!(db.snapshot_read(&snap, "t", &Key::single(2)).unwrap(), None);
        // …while a fresh snapshot sees it.
        let snap2 = db.begin_snapshot().unwrap();
        assert_eq!(
            db.snapshot_read(&snap2, "t", &Key::single(1)).unwrap(),
            Some(row(1, "v2"))
        );
        assert_eq!(db.snapshot_scan(&snap, "t").unwrap().len(), 1);
        assert_eq!(db.snapshot_scan(&snap2, "t").unwrap().len(), 2);
    }

    #[test]
    fn snapshot_ignores_uncommitted_and_aborted_work() {
        let (db, _t) = db_with_table();
        db.enable_mvcc();
        let setup = db.begin();
        db.insert(setup, "t", row(1, "clean")).unwrap();
        db.commit(setup).unwrap();

        let dirty = db.begin();
        db.update(dirty, "t", &Key::single(1), &[(1, Value::str("dirty"))])
            .unwrap();
        // A snapshot taken while `dirty` is in flight never sees it —
        // neither active nor after its rollback.
        let snap = db.begin_snapshot().unwrap();
        assert_eq!(
            db.snapshot_read(&snap, "t", &Key::single(1)).unwrap(),
            Some(row(1, "clean"))
        );
        db.abort(dirty).unwrap();
        assert_eq!(
            db.snapshot_read(&snap, "t", &Key::single(1)).unwrap(),
            Some(row(1, "clean"))
        );
        let after = db.begin_snapshot().unwrap();
        assert_eq!(
            db.snapshot_read(&after, "t", &Key::single(1)).unwrap(),
            Some(row(1, "clean"))
        );
    }

    #[test]
    fn mvcc_gc_respects_live_snapshots() {
        let (db, t) = db_with_table();
        db.enable_mvcc();
        let w = db.begin();
        db.insert(w, "t", row(1, "v1")).unwrap();
        db.commit(w).unwrap();
        let snap = db.begin_snapshot().unwrap();
        for i in 0..3 {
            let w = db.begin();
            db.update(
                w,
                "t",
                &Key::single(1),
                &[(1, Value::str(format!("v{}", i + 2)))],
            )
            .unwrap();
            db.commit(w).unwrap();
        }
        assert!(t.version_count() > 0);
        // The live snapshot pins every version it can still reach.
        db.mvcc_gc().unwrap();
        assert_eq!(
            db.snapshot_read(&snap, "t", &Key::single(1)).unwrap(),
            Some(row(1, "v1"))
        );
        drop(snap);
        let reclaimed = db.mvcc_gc().unwrap();
        assert!(reclaimed > 0, "unpinned history must be reclaimed");
        assert_eq!(t.version_count(), 0);
        assert_eq!(Counters::get(&db.counters().mvcc_reclaimed), reclaimed);
        // Current state is untouched.
        let now = db.begin_snapshot().unwrap();
        assert_eq!(
            db.snapshot_read(&now, "t", &Key::single(1)).unwrap(),
            Some(row(1, "v4"))
        );
    }

    #[test]
    fn mvcc_disabled_is_inert() {
        let (db, t) = db_with_table();
        let w = db.begin();
        db.insert(w, "t", row(1, "a")).unwrap();
        db.commit(w).unwrap();
        let w = db.begin();
        db.update(w, "t", &Key::single(1), &[(1, Value::str("b"))])
            .unwrap();
        db.commit(w).unwrap();
        assert_eq!(t.version_count(), 0, "no archiving without enable_mvcc");
        assert_eq!(db.mvcc_gc().unwrap(), 0);
        assert!(db.mvcc.commit.is_empty(), "no outcomes recorded");
    }

    #[test]
    fn concurrent_transfer_workload_preserves_totals() {
        // Classic bank-transfer invariant under concurrency: total is
        // conserved across committed transfers despite deadlock aborts.
        let db = Arc::new(Database::new());
        let schema = Schema::builder()
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let t = db.create_table("acct", schema).unwrap();
        let setup = db.begin();
        for i in 0..20 {
            db.insert(setup, "acct", vec![Value::Int(i), Value::Int(100)])
                .unwrap();
        }
        db.commit(setup).unwrap();

        let mut handles = Vec::new();
        for seed in 0..8u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..100 {
                    let a = (rng() % 20) as i64;
                    let b = (rng() % 20) as i64;
                    if a == b {
                        continue;
                    }
                    let txn = db.begin();
                    let res = (|| -> DbResult<()> {
                        let va = db
                            .read(txn, "acct", &Key::single(a))?
                            .ok_or(DbError::KeyNotFound("a".into()))?;
                        let vb = db
                            .read(txn, "acct", &Key::single(b))?
                            .ok_or(DbError::KeyNotFound("b".into()))?;
                        let (ba, bb) = (va[1].as_int().unwrap(), vb[1].as_int().unwrap());
                        db.update(txn, "acct", &Key::single(a), &[(1, Value::Int(ba - 1))])?;
                        db.update(txn, "acct", &Key::single(b), &[(1, Value::Int(bb + 1))])?;
                        Ok(())
                    })();
                    match res {
                        Ok(()) => {
                            let _ = db.commit(txn);
                        }
                        Err(_) => {
                            let _ = db.abort(txn);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = t
            .snapshot()
            .iter()
            .map(|(_, r)| r.values[1].as_int().unwrap())
            .sum();
        assert_eq!(total, 2000, "transfers must conserve the total");
    }
}
