//! Lock-free workload statistics.
//!
//! Clients record each committed transaction's latency into log₂
//! buckets; the measurement thread snapshots the counters at window
//! boundaries and reports deltas, so arbitrarily long runs use constant
//! memory and no client ever blocks on a statistics lock.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 40; // log2(ns): covers 1ns .. ~18min

/// Shared, lock-free statistics sink.
pub struct SharedStats {
    /// Committed transactions.
    pub committed: AtomicU64,
    /// Transactions rolled back for any reason.
    pub aborted: AtomicU64,
    /// Rollbacks caused by schema-change dooming / frozen tables.
    pub schema_events: AtomicU64,
    /// Sum of committed-transaction latencies (ns).
    pub latency_sum_ns: AtomicU64,
    /// Log₂ latency histogram (ns).
    buckets: [AtomicU64; BUCKETS],
}

impl Default for SharedStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedStats {
    /// Fresh sink.
    pub fn new() -> SharedStats {
        SharedStats {
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            schema_events: AtomicU64::new(0),
            latency_sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one committed transaction.
    pub fn record_commit(&self, latency_ns: u64) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_ns.fetch_add(latency_ns, Ordering::Relaxed);
        let b = (64 - latency_ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one rollback; `schema` marks doom/freeze-caused ones.
    pub fn record_abort(&self, schema: bool) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
        if schema {
            self.schema_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cheap full snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            schema_events: self.schema_events.load(Ordering::Relaxed),
            latency_sum_ns: self.latency_sum_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of the counters.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    pub committed: u64,
    pub aborted: u64,
    pub schema_events: u64,
    pub latency_sum_ns: u64,
    buckets: [u64; BUCKETS],
}

impl StatsSnapshot {
    /// Delta between two snapshots (self = later).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsDelta {
        StatsDelta {
            committed: self.committed - earlier.committed,
            aborted: self.aborted - earlier.aborted,
            schema_events: self.schema_events - earlier.schema_events,
            latency_sum_ns: self.latency_sum_ns - earlier.latency_sum_ns,
            buckets: std::array::from_fn(|i| self.buckets[i] - earlier.buckets[i]),
        }
    }
}

/// Difference of two snapshots over a window.
#[derive(Clone, Debug)]
pub struct StatsDelta {
    pub committed: u64,
    pub aborted: u64,
    pub schema_events: u64,
    pub latency_sum_ns: u64,
    buckets: [u64; BUCKETS],
}

impl StatsDelta {
    /// Mean latency over the window.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.committed == 0 {
            return 0.0;
        }
        self.latency_sum_ns as f64 / self.committed as f64
    }

    /// Approximate latency percentile from the log₂ histogram (returns
    /// the bucket's upper bound in ns).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_abort_counters() {
        let s = SharedStats::new();
        s.record_commit(1_000);
        s.record_commit(3_000);
        s.record_abort(false);
        s.record_abort(true);
        let snap = s.snapshot();
        assert_eq!(snap.committed, 2);
        assert_eq!(snap.aborted, 2);
        assert_eq!(snap.schema_events, 1);
        assert_eq!(snap.latency_sum_ns, 4_000);
    }

    #[test]
    fn deltas_subtract() {
        let s = SharedStats::new();
        s.record_commit(1_000);
        let a = s.snapshot();
        s.record_commit(2_000);
        s.record_commit(2_000);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.committed, 2);
        assert_eq!(d.latency_sum_ns, 4_000);
        assert!((d.mean_latency_ns() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_monotone_and_bracketing() {
        let s = SharedStats::new();
        for _ in 0..90 {
            s.record_commit(1_000); // ~2^10
        }
        for _ in 0..10 {
            s.record_commit(1_000_000); // ~2^20
        }
        let d = s.snapshot().since(&SharedStats::new().snapshot());
        let p50 = d.percentile_ns(0.50);
        let p99 = d.percentile_ns(0.99);
        assert!(p50 <= p99);
        assert!((1_000..=4_096).contains(&p50), "p50={p50}");
        assert!(p99 >= 1_000_000, "p99={p99}");
    }

    #[test]
    fn zero_window_is_safe() {
        let s = SharedStats::new();
        let d = s.snapshot().since(&s.snapshot());
        assert_eq!(d.mean_latency_ns(), 0.0);
        assert_eq!(d.percentile_ns(0.99), 0);
    }
}
