//! The workload runner: thread pool + measurement windows.

use crate::client::{Client, ClientConfig};
use crate::stats::SharedStats;
use morph_engine::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Aggregates from one measurement window.
#[derive(Clone, Debug)]
pub struct WindowStats {
    /// Window length.
    pub duration: Duration,
    /// Transactions committed in the window.
    pub committed: u64,
    /// Transactions rolled back in the window.
    pub aborted: u64,
    /// Rollbacks caused by the schema change (doomed / frozen).
    pub schema_events: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Mean committed-transaction latency (milliseconds).
    pub mean_latency_ms: f64,
    /// Approximate 95th-percentile latency (milliseconds).
    pub p95_latency_ms: f64,
}

/// Before/during pair for relative-cost reporting (§6).
#[derive(Clone, Debug)]
pub struct RelativeRun {
    /// Window without a transformation running.
    pub baseline: WindowStats,
    /// Window with the transformation running.
    pub during: WindowStats,
}

impl RelativeRun {
    /// Throughput during / baseline — the y-axis of Figures 4(a)/(c).
    pub fn relative_throughput(&self) -> f64 {
        if self.baseline.throughput == 0.0 {
            return 0.0;
        }
        self.during.throughput / self.baseline.throughput
    }

    /// Response time during / baseline — the y-axis of Figure 4(b).
    pub fn relative_response_time(&self) -> f64 {
        if self.baseline.mean_latency_ms == 0.0 {
            return 0.0;
        }
        self.during.mean_latency_ms / self.baseline.mean_latency_ms
    }
}

/// A running closed-loop workload.
pub struct WorkloadRunner {
    stats: Arc<SharedStats>,
    stop: Arc<AtomicBool>,
    switched: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkloadRunner {
    /// Start `threads` clients against `db`.
    pub fn start(db: Arc<Database>, cfg: ClientConfig, threads: usize) -> WorkloadRunner {
        let stats = Arc::new(SharedStats::new());
        let stop = Arc::new(AtomicBool::new(false));
        let switched = Arc::new(AtomicBool::new(false));
        let handles = (0..threads.max(1))
            .map(|i| {
                let client = Client {
                    db: Arc::clone(&db),
                    cfg: cfg.clone(),
                    stats: Arc::clone(&stats),
                    stop: Arc::clone(&stop),
                    switched: Arc::clone(&switched),
                    seed: 0x5EED_0000 + i as u64,
                };
                std::thread::spawn(move || client.run())
            })
            .collect();
        WorkloadRunner {
            stats,
            stop,
            switched,
            handles,
        }
    }

    /// Shared statistics sink.
    pub fn stats(&self) -> &Arc<SharedStats> {
        &self.stats
    }

    /// Whether any client has observed the schema switch.
    pub fn switched(&self) -> bool {
        self.switched.load(Ordering::Relaxed)
    }

    /// Measure one window of the given length.
    pub fn measure(&self, window: Duration) -> WindowStats {
        let before = self.stats.snapshot();
        let t0 = Instant::now();
        std::thread::sleep(window);
        let elapsed = t0.elapsed();
        let delta = self.stats.snapshot().since(&before);
        WindowStats {
            duration: elapsed,
            committed: delta.committed,
            aborted: delta.aborted,
            schema_events: delta.schema_events,
            throughput: delta.committed as f64 / elapsed.as_secs_f64(),
            mean_latency_ms: delta.mean_latency_ns() / 1e6,
            p95_latency_ms: delta.percentile_ns(0.95) as f64 / 1e6,
        }
    }

    /// Stop all clients and wait for them.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Find the client count that maximizes throughput — the paper's
/// definition of 100 % workload (§6). Tries powers of two up to
/// `max_threads`, measuring `window` each, and returns the best.
pub fn calibrate_full_workload(
    make_db: impl Fn() -> Arc<Database>,
    cfg: &ClientConfig,
    max_threads: usize,
    window: Duration,
) -> usize {
    let mut best = (1usize, 0.0f64);
    let mut declines = 0;
    let mut t = 1usize;
    while t <= max_threads {
        let db = make_db();
        let runner = WorkloadRunner::start(db, cfg.clone(), t);
        // Warm-up, then measure.
        std::thread::sleep(window / 2);
        let w = runner.measure(window);
        runner.stop();
        if w.throughput > best.1 {
            best = (t, w.throughput);
            declines = 0;
        } else {
            // Stop once throughput has stopped improving twice in a
            // row — we are past saturation.
            declines += 1;
            if declines >= 2 {
                break;
            }
        }
        t *= 2;
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HotSide;
    use crate::setup;
    use morph_core::{FojSpec, ParallelConfig, SplitSpec, TransformOptions, Transformer};

    fn small_split_db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        setup::setup_dummy(&db, 500).unwrap();
        setup::setup_split_source(&db, 500, 50).unwrap();
        db
    }

    fn cfg_split() -> ClientConfig {
        ClientConfig {
            updates_per_txn: 10,
            hot_fraction: 0.2,
            hot: HotSide::SplitSource,
            hot_rows: 500,
            hot_s_rows: 0,
            dummy_rows: 500,
            pacing: Some(Duration::from_micros(100)),
        }
    }

    #[test]
    fn runner_commits_transactions() {
        let db = small_split_db();
        let runner = WorkloadRunner::start(db, cfg_split(), 2);
        let w = runner.measure(Duration::from_millis(200));
        runner.stop();
        assert!(w.committed > 0, "no commits in window: {w:?}");
        assert!(w.throughput > 0.0);
        assert!(w.mean_latency_ms > 0.0);
    }

    #[test]
    fn workload_survives_split_transformation() {
        let db = small_split_db();
        let runner = WorkloadRunner::start(Arc::clone(&db), cfg_split(), 4);
        let baseline = runner.measure(Duration::from_millis(150));

        let spec = SplitSpec::new("T", "R", "S", &["a", "b", "c"], "c", &["d"]);
        let handle = Transformer::spawn_split(
            Arc::clone(&db),
            spec,
            TransformOptions::default()
                .deadline(Duration::from_secs(30))
                .parallel(ParallelConfig::new(4, 4)),
        );
        let during = runner.measure(Duration::from_millis(150));
        let report = handle.join().expect("transformation");
        // Keep the workload running across the switch, then stop.
        let after = runner.measure(Duration::from_millis(150));
        runner.stop();

        assert!(baseline.committed > 0);
        assert!(during.committed > 0, "workload must not block");
        assert!(after.committed > 0, "workload continues after the switch");
        assert!(report.sync.latch_pause < Duration::from_millis(200));
        assert!(db.catalog().exists("R") && db.catalog().exists("S"));
        assert!(!db.catalog().exists("T"));
        // Integrity: counters in S add up to rows in R.
        let r = db.catalog().get("R").unwrap();
        let s = db.catalog().get("S").unwrap();
        let total: u32 = s.snapshot().iter().map(|(_, row)| row.counter).sum();
        assert_eq!(total as usize, r.len());
    }

    #[test]
    fn calibration_returns_positive_thread_count() {
        let n = calibrate_full_workload(small_split_db, &cfg_split(), 4, Duration::from_millis(60));
        assert!((1..=4).contains(&n));
    }

    #[test]
    fn workload_survives_foj_transformation() {
        let db = Arc::new(Database::new());
        setup::setup_dummy(&db, 500).unwrap();
        setup::setup_foj_sources(&db, 400, 80).unwrap();
        let cfg = ClientConfig {
            updates_per_txn: 10,
            hot_fraction: 0.2,
            hot: HotSide::FojSources { s_share: 0.2 },
            hot_rows: 400,
            hot_s_rows: 80,
            dummy_rows: 500,
            pacing: Some(Duration::from_micros(100)),
        };
        let runner = WorkloadRunner::start(Arc::clone(&db), cfg, 4);
        let baseline = runner.measure(Duration::from_millis(150));

        let handle = Transformer::spawn_foj(
            Arc::clone(&db),
            FojSpec::new("R", "S", "T", "c", "c"),
            TransformOptions::default()
                .deadline(Duration::from_secs(30))
                .parallel(ParallelConfig::new(4, 4)),
        );
        let during = runner.measure(Duration::from_millis(150));
        let report = handle.join().expect("transformation");
        runner.stop();

        assert!(baseline.committed > 0 && during.committed > 0);
        assert!(db.catalog().exists("T"));
        assert!(!db.catalog().exists("R"));
        // All 400 R rows joined (every R has an S partner).
        assert_eq!(db.catalog().get("T").unwrap().len(), 400);
        assert!(report.records_processed() > 0);
    }
}
