//! Step-wise, seeded OLTP workload for deterministic simulation.
//!
//! The thread-based [`crate::runner::WorkloadRunner`] is the right
//! tool for throughput measurements, but its scheduling is
//! nondeterministic — useless for a crash simulator that must replay
//! a failure from its seed. [`StepWorkload`] is the deterministic
//! counterpart: a single-threaded generator that, each time the crash
//! harness gives it control, runs **one complete transaction**
//! (begin → a few inserts/updates/deletes → commit or deliberate
//! rollback) against the [`Database`], with every choice drawn from a
//! seeded RNG.
//!
//! Alongside the database it maintains a **model** of the committed
//! state of every table it touches. Because each step is a complete,
//! flushed transaction, the model equals the durable committed state
//! at any crash point between steps — which is exactly the
//! no-lost-updates oracle the harness checks after recovery:
//! recovered table contents must equal the model.

use morph_common::{DbError, Key, Value};
use morph_engine::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Builds a fresh row from a unique sequence number and the RNG. The
/// primary key must be a function of the sequence number so generated
/// inserts never collide.
pub type RowGen = Box<dyn Fn(u64, &mut StdRng) -> Vec<Value> + Send>;

/// Produces the `(column, value)` set for one update operation. A
/// generator may touch several columns at once — required when a
/// scenario must preserve a functional dependency (e.g. the split's
/// `postal_code → city`).
pub type UpdateGen = Box<dyn Fn(&mut StdRng) -> Vec<(usize, Value)> + Send>;

/// Per-table description of how to generate workload rows.
pub struct TableProfile {
    /// Catalog name of the table.
    pub name: String,
    /// Fresh-row generator for inserts.
    pub gen_row: RowGen,
    /// Update generators; `step` picks one at random per update.
    pub updates: Vec<UpdateGen>,
}

/// Outcome of one [`StepWorkload::step`] transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Transaction committed; model updated.
    Committed,
    /// The step chose to roll back (exercises CLR generation).
    RolledBack,
    /// A schema-change outcome (`TableFrozen` / `NoSuchTable` /
    /// `TxnDoomed`) forced a rollback — expected during
    /// synchronization; the model is untouched.
    SchemaDenied,
}

/// Counters across all steps.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    pub committed: usize,
    pub rolled_back: usize,
    pub schema_denied: usize,
    pub ops: usize,
}

/// Deterministic single-threaded workload generator (see module docs).
pub struct StepWorkload {
    rng: StdRng,
    profiles: Vec<TableProfile>,
    /// Committed state per profile (same index): pk → row values.
    model: Vec<BTreeMap<Key, Vec<Value>>>,
    next_seq: u64,
    max_ops_per_txn: usize,
    /// Probability a generated transaction rolls itself back.
    rollback_prob: f64,
    pub stats: StepStats,
}

/// One planned model mutation, applied only if the txn commits.
enum Planned {
    Insert(usize, Key, Vec<Value>),
    Update(usize, Key, Vec<(usize, Value)>),
    Delete(usize, Key),
}

impl StepWorkload {
    /// A workload over `profiles`, drawing every choice from `seed`.
    pub fn new(seed: u64, profiles: Vec<TableProfile>) -> StepWorkload {
        let model = profiles.iter().map(|_| BTreeMap::new()).collect();
        StepWorkload {
            rng: StdRng::seed_from_u64(seed),
            profiles,
            model,
            // Start high so generated keys never collide with rows the
            // scenario setup inserted under small sequence numbers.
            next_seq: 1 << 20,
            max_ops_per_txn: 4,
            rollback_prob: 0.15,
            stats: StepStats::default(),
        }
    }

    /// Seed the model with rows already committed to the database
    /// (scenario setup data), keyed by the profile's table name.
    pub fn absorb_existing(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = (Key, Vec<Value>)>,
    ) {
        if let Some(i) = self.profiles.iter().position(|p| p.name == table) {
            self.model[i].extend(rows);
        }
    }

    /// The committed-state model for `table` (pk → row), the
    /// no-lost-updates oracle.
    pub fn model(&self, table: &str) -> Option<&BTreeMap<Key, Vec<Value>>> {
        let i = self.profiles.iter().position(|p| p.name == table)?;
        Some(&self.model[i])
    }

    /// Run one complete transaction against `db`. Never leaves a
    /// transaction open: every path ends in commit or rollback.
    pub fn step(&mut self, db: &Database) -> StepOutcome {
        let n_ops = self.rng.gen_range(1..=self.max_ops_per_txn);
        let deliberate_rollback = self.rng.gen_bool(self.rollback_prob);
        let txn = db.begin();
        let mut planned: Vec<Planned> = Vec::new();

        for _ in 0..n_ops {
            let pi = self.rng.gen_range(0..self.profiles.len());
            self.stats.ops += 1;
            let res = self.one_op(db, txn, pi, &mut planned);
            if let Err(e) = res {
                // Any failure → roll back, discard the plan. The only
                // errors a single-threaded run should see are the
                // schema-change outcomes.
                let _ = db.abort(txn);
                return match e {
                    DbError::TableFrozen(_)
                    | DbError::NoSuchTable(_)
                    | DbError::NoSuchTableId(_)
                    | DbError::TxnDoomed(_) => {
                        self.stats.schema_denied += 1;
                        StepOutcome::SchemaDenied
                    }
                    other => panic!("unexpected workload error: {other}"), // morph-lint: allow(panic, workload driver for tests and sim; an unexpected engine error must fail the run loudly)
                };
            }
        }

        if deliberate_rollback {
            let _ = db.abort(txn);
            self.stats.rolled_back += 1;
            return StepOutcome::RolledBack;
        }
        match db.commit(txn) {
            Ok(()) => {
                self.apply_plan(planned);
                self.stats.committed += 1;
                StepOutcome::Committed
            }
            Err(e @ (DbError::TxnDoomed(_) | DbError::TableFrozen(_))) => {
                let _ = e;
                let _ = db.abort(txn);
                self.stats.schema_denied += 1;
                StepOutcome::SchemaDenied
            }
            Err(other) => panic!("unexpected commit error: {other}"), // morph-lint: allow(panic, workload driver for tests and sim; an unexpected engine error must fail the run loudly)
        }
    }

    fn one_op(
        &mut self,
        db: &Database,
        txn: morph_common::TxnId,
        pi: usize,
        planned: &mut Vec<Planned>,
    ) -> morph_common::DbResult<()> {
        let name = self.profiles[pi].name.clone();
        // Weighted op mix: half updates, the rest split between
        // inserts and deletes so tables neither drain nor explode.
        let roll = self.rng.gen_range(0u32..100);
        let visible = self.visible_keys(pi, planned);
        if roll < 50 && !visible.is_empty() && !self.profiles[pi].updates.is_empty() {
            // Update a random committed row through a random generator.
            let key = visible[self.rng.gen_range(0..visible.len())].clone();
            let ui = self.rng.gen_range(0..self.profiles[pi].updates.len());
            let cols = (self.profiles[pi].updates[ui])(&mut self.rng);
            db.update(txn, &name, &key, &cols)?;
            planned.push(Planned::Update(pi, key, cols));
        } else if roll < 75 && !visible.is_empty() {
            let key = visible[self.rng.gen_range(0..visible.len())].clone();
            db.delete(txn, &name, &key)?;
            planned.push(Planned::Delete(pi, key));
        } else {
            let seq = self.next_seq;
            self.next_seq += 1;
            let row = (self.profiles[pi].gen_row)(seq, &mut self.rng);
            let key = db.insert(txn, &name, row.clone())?;
            planned.push(Planned::Insert(pi, key, row));
        }
        Ok(())
    }

    /// Keys of profile `pi` as this transaction sees them: committed
    /// model plus the transaction's own planned changes (so the txn
    /// never double-deletes or updates a row it already removed).
    fn visible_keys(&self, pi: usize, planned: &[Planned]) -> Vec<Key> {
        let mut keys: BTreeMap<Key, bool> =
            self.model[pi].keys().map(|k| (k.clone(), true)).collect();
        for p in planned {
            match p {
                Planned::Insert(i, k, _) if *i == pi => {
                    keys.insert(k.clone(), true);
                }
                Planned::Delete(i, k) if *i == pi => {
                    keys.remove(k);
                }
                _ => {}
            }
        }
        keys.into_keys().collect()
    }

    fn apply_plan(&mut self, planned: Vec<Planned>) {
        for p in planned {
            match p {
                Planned::Insert(i, k, row) => {
                    self.model[i].insert(k, row);
                }
                Planned::Update(i, k, cols) => {
                    if let Some(row) = self.model[i].get_mut(&k) {
                        for (col, val) in cols {
                            row[col] = val;
                        }
                    }
                }
                Planned::Delete(i, k) => {
                    self.model[i].remove(&k);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::{ColumnType, Schema};
    use std::sync::Arc;

    fn profile() -> TableProfile {
        TableProfile {
            name: "W".into(),
            gen_row: Box::new(|seq, _| vec![Value::Int(seq as i64), Value::str("v0")]),
            updates: vec![Box::new(|rng: &mut StdRng| {
                vec![(1, Value::str(format!("v{}", rng.gen_range(0..1000))))]
            })],
        }
    }

    fn setup() -> Arc<Database> {
        let db = Arc::new(Database::new());
        let schema = Schema::builder()
            .column("id", ColumnType::Int)
            .nullable("v", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap();
        db.create_table("W", schema).unwrap();
        db
    }

    /// Read back a table's committed contents as pk → row.
    fn table_state(db: &Database, name: &str) -> BTreeMap<Key, Vec<Value>> {
        let t = db.catalog().get(name).unwrap();
        t.snapshot()
            .into_iter()
            .map(|(k, r)| (k, r.values))
            .collect()
    }

    #[test]
    fn model_tracks_database_exactly() {
        let db = setup();
        let mut w = StepWorkload::new(42, vec![profile()]);
        for _ in 0..200 {
            w.step(&db);
        }
        assert!(w.stats.committed > 0 && w.stats.rolled_back > 0);
        assert_eq!(*w.model("W").unwrap(), table_state(&db, "W"));
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed: u64| {
            let db = setup();
            let mut w = StepWorkload::new(seed, vec![profile()]);
            let outcomes: Vec<StepOutcome> = (0..100).map(|_| w.step(&db)).collect();
            (outcomes, table_state(&db, "W"))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn absorb_existing_rows_are_updatable() {
        let db = setup();
        let txn = db.begin();
        for i in 0..20 {
            db.insert(txn, "W", vec![Value::Int(i), Value::str("seed")])
                .unwrap();
        }
        db.commit(txn).unwrap();
        let mut w = StepWorkload::new(3, vec![profile()]);
        w.absorb_existing("W", table_state(&db, "W"));
        for _ in 0..100 {
            w.step(&db);
        }
        assert_eq!(*w.model("W").unwrap(), table_state(&db, "W"));
    }
}
