//! Background update drivers for examples and integration tests: spawn
//! a handful of threads that keep committing small single-row updates
//! against named tables until told to stop — the "user transactions"
//! the paper's transformations must coexist with. Unlike the
//! closed-loop [`WorkloadRunner`](crate::WorkloadRunner) these make no
//! latency measurements; they exist to generate live log traffic with
//! two lines of caller code.

use morph_common::{Key, Value};
use morph_engine::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One table a background updater targets.
#[derive(Clone, Debug)]
pub struct UpdateTarget {
    /// Table name.
    pub table: String,
    /// Keys are drawn from `0..keys` (single-column integer primary
    /// keys, as all the example schemas use).
    pub keys: i64,
    /// Column index the update rewrites (must be nullable or a string
    /// column; the driver writes short strings).
    pub column: usize,
}

impl UpdateTarget {
    pub fn new(table: &str, keys: i64, column: usize) -> UpdateTarget {
        UpdateTarget {
            table: table.to_owned(),
            keys,
            column,
        }
    }
}

/// Handle to a set of background updater threads.
pub struct UpdaterPool {
    stop: Arc<AtomicBool>,
    committed: Arc<AtomicU64>,
    threads: Vec<JoinHandle<()>>,
}

impl UpdaterPool {
    /// Commits observed so far (live counter; safe to read while the
    /// pool is running).
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Signal all updaters to stop, join them, and return the total
    /// number of committed updates.
    pub fn stop(self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads {
            // A panicked updater already failed its own test; the pool
            // still reports what was committed before.
            let _ = t.join();
        }
        self.committed.load(Ordering::Relaxed)
    }
}

/// Spawn `workers` threads that round-robin over `targets`, each
/// committing one small update then sleeping `pace`. Update failures
/// (frozen source during sync, lock conflicts) abort that transaction
/// and move on — exactly how a real client behaves while a
/// transformation holds the tables.
pub fn spawn_updaters(
    db: &Arc<Database>,
    targets: Vec<UpdateTarget>,
    workers: usize,
    pace: Duration,
) -> UpdaterPool {
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::with_capacity(workers);
    for w in 0..workers as u64 {
        let db = Arc::clone(db);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        let targets = targets.clone();
        threads.push(std::thread::spawn(move || {
            let mut i = w.wrapping_mul(0x9e37_79b9);
            while !stop.load(Ordering::Relaxed) {
                i = i.wrapping_add(1);
                if targets.is_empty() {
                    break;
                }
                let t = &targets[(i as usize) % targets.len()];
                let key = Key::single((i % t.keys.max(1) as u64) as i64);
                let txn = db.begin();
                let patch = [(t.column, Value::str(format!("w{w}-{i}")))];
                match db.update(txn, &t.table, &key, &patch) {
                    Ok(()) => {
                        if db.commit(txn).is_ok() {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        let _ = db.abort(txn);
                    }
                }
                std::thread::sleep(pace);
            }
        }));
    }
    UpdaterPool {
        stop,
        committed,
        threads,
    }
}
