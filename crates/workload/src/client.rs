//! The closed-loop client.
//!
//! Each client thread runs transactions back-to-back (zero think time,
//! as in the paper's saturation-oriented setup): begin, perform
//! `updates_per_txn` record updates — each hitting the transformation's
//! source tables with probability `hot_fraction`, the dummy table
//! otherwise — then commit. Deadlock victims, doomed transactions and
//! frozen-table errors roll back and continue; after the schema switch
//! removes the source tables, the hot share is redirected to the dummy
//! table so the offered load stays constant.

use crate::stats::SharedStats;
use morph_common::{DbError, Key, Value};
use morph_engine::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which tables take the "hot" (source-table) updates.
#[derive(Clone, Debug)]
pub enum HotSide {
    /// Split benchmark: updates hit `T.b` (a column that is neither the
    /// split attribute nor functionally dependent on it, so concurrent
    /// clients preserve the functional dependency without
    /// coordination).
    SplitSource,
    /// FOJ benchmark: updates hit `R.b`, with an `s_share` fraction
    /// going to `S.d` instead (exercising the S-side rules).
    FojSources {
        /// Fraction of hot updates that target S.
        s_share: f64,
    },
}

/// Client behaviour knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Updates per transaction (10 in the paper).
    pub updates_per_txn: usize,
    /// Fraction of updates targeting the source tables (0.2 / 0.8 in
    /// Figure 4(c)).
    pub hot_fraction: f64,
    /// Hot-side routing.
    pub hot: HotSide,
    /// Key-space of the hot primary table (R or T).
    pub hot_rows: usize,
    /// Key-space of S (FOJ only).
    pub hot_s_rows: usize,
    /// Key-space of the dummy table.
    pub dummy_rows: usize,
    /// Optional pacing sleep per transaction (unoptimized builds /
    /// low-rate scenarios).
    pub pacing: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            updates_per_txn: 10,
            hot_fraction: 0.2,
            hot: HotSide::SplitSource,
            hot_rows: crate::setup::SPLIT_ROWS,
            hot_s_rows: 0,
            dummy_rows: crate::setup::DUMMY_ROWS,
            pacing: None,
        }
    }
}

pub(crate) struct Client {
    pub db: Arc<Database>,
    pub cfg: ClientConfig,
    pub stats: Arc<SharedStats>,
    pub stop: Arc<AtomicBool>,
    /// Set (by any client) once the schema switch has been observed.
    pub switched: Arc<AtomicBool>,
    pub seed: u64,
}

enum UpdateOutcome {
    Ok,
    /// Retryable rollback (deadlock, lock timeout).
    Conflict,
    /// Schema-change event (doomed / frozen / vanished table).
    Schema,
}

impl Client {
    pub fn run(self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut serial = 0u64;
        while !self.stop.load(Ordering::Relaxed) {
            serial += 1;
            let t0 = Instant::now();
            let txn = self.db.begin();
            let mut outcome = UpdateOutcome::Ok;
            for _ in 0..self.cfg.updates_per_txn {
                let hot =
                    rng.gen_bool(self.cfg.hot_fraction) && !self.switched.load(Ordering::Relaxed);
                let res = if hot {
                    self.hot_update(&mut rng, txn, serial)
                } else {
                    self.dummy_update(&mut rng, txn, serial)
                };
                match res {
                    UpdateOutcome::Ok => {}
                    other => {
                        outcome = other;
                        break;
                    }
                }
            }
            // Client-observed response time includes the simulated
            // network round trip (`pacing`): the paper measured
            // response times at client nodes across a LAN, so the
            // constant RTT is part of both the baseline and the
            // during-change latency — exactly how relative response
            // time (Figure 4(b)) is defined.
            let rtt = self.cfg.pacing.unwrap_or_default();
            match outcome {
                UpdateOutcome::Ok => match self.db.commit(txn) {
                    Ok(()) => self
                        .stats
                        .record_commit((t0.elapsed() + rtt).as_nanos() as u64),
                    Err(DbError::TxnDoomed(_)) => self.stats.record_abort(true),
                    Err(_) => self.stats.record_abort(false),
                },
                UpdateOutcome::Conflict => {
                    let _ = self.db.abort(txn);
                    self.stats.record_abort(false);
                }
                UpdateOutcome::Schema => {
                    let _ = self.db.abort(txn);
                    self.stats.record_abort(true);
                }
            }
            if let Some(p) = self.cfg.pacing {
                std::thread::sleep(p);
            }
        }
    }

    fn classify(&self, e: DbError) -> UpdateOutcome {
        match e {
            DbError::TxnDoomed(_) | DbError::TableFrozen(_) | DbError::NoSuchTable(_) => {
                self.switched.store(true, Ordering::Relaxed);
                UpdateOutcome::Schema
            }
            _ => UpdateOutcome::Conflict,
        }
    }

    fn hot_update(&self, rng: &mut StdRng, txn: morph_common::TxnId, serial: u64) -> UpdateOutcome {
        let (table, key, col) = match &self.cfg.hot {
            HotSide::SplitSource => (
                "T",
                Key::single(rng.gen_range(0..self.cfg.hot_rows.max(1)) as i64),
                1usize, // T.b
            ),
            HotSide::FojSources { s_share } => {
                if rng.gen_bool(*s_share) && self.cfg.hot_s_rows > 0 {
                    (
                        "S",
                        Key::single(rng.gen_range(0..self.cfg.hot_s_rows) as i64),
                        1usize, // S.d
                    )
                } else {
                    (
                        "R",
                        Key::single(rng.gen_range(0..self.cfg.hot_rows.max(1)) as i64),
                        1usize, // R.b
                    )
                }
            }
        };
        match self
            .db
            .update(txn, table, &key, &[(col, Value::str(format!("w{serial}")))])
        {
            Ok(()) => UpdateOutcome::Ok,
            Err(e) => self.classify(e),
        }
    }

    fn dummy_update(
        &self,
        rng: &mut StdRng,
        txn: morph_common::TxnId,
        serial: u64,
    ) -> UpdateOutcome {
        let key = Key::single(rng.gen_range(0..self.cfg.dummy_rows.max(1)) as i64);
        match self
            .db
            .update(txn, "dummy", &key, &[(1, Value::str(format!("w{serial}")))])
        {
            Ok(()) => UpdateOutcome::Ok,
            Err(e) => self.classify(e),
        }
    }
}
