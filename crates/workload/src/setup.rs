//! Benchmark data sets, sized as in the paper (§6): "the tests for the
//! FOJ transformation were done with 50000 records in R and 20000
//! records in S. For the split transformation, 50000 records were
//! inserted into T. These were split into approximately 50000 records
//! in R and 20000 records in S."

use morph_common::{ColumnType, DbResult, Schema, Value};
use morph_engine::Database;
use morph_txn::LockManagerConfig;
use morph_wal::{Backend, GroupCommitConfig, LogManager, WalMode};
use std::sync::Arc;

/// Fresh database whose WAL tees into `backend` under the given
/// append/flush discipline. The commit-rate benches build their
/// fsync-bound universes through this: a synthetic slow disk plus
/// either the serial (flush-per-commit) or the group-commit pipeline.
pub fn db_with_wal(
    backend: Box<dyn Backend + Send>,
    mode: WalMode,
    group: GroupCommitConfig,
) -> Arc<Database> {
    Arc::new(Database::with_log(
        Arc::new(LogManager::with_backend_mode(backend, mode, group)),
        LockManagerConfig::default(),
    ))
}

/// Paper-scale row counts.
pub const FOJ_R_ROWS: usize = 50_000;
pub const FOJ_S_ROWS: usize = 20_000;
pub const SPLIT_ROWS: usize = 50_000;
pub const SPLIT_VALUES: usize = 20_000;
/// Dummy-table size (absorbs the non-source share of updates).
pub const DUMMY_ROWS: usize = 50_000;

fn bulk_insert(db: &Database, table: &str, rows: impl Iterator<Item = Vec<Value>>) -> DbResult<()> {
    // Batches keep any single transaction's undo chain bounded.
    let mut txn = db.begin();
    let mut n = 0;
    for row in rows {
        db.insert(txn, table, row)?;
        n += 1;
        if n % 5_000 == 0 {
            db.commit(txn)?;
            txn = db.begin();
        }
    }
    db.commit(txn)
}

/// Create and fill the dummy table: `dummy(id, payload)`.
pub fn setup_dummy(db: &Database, rows: usize) -> DbResult<()> {
    let schema = Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("payload", ColumnType::Str)
        .primary_key(&["id"])
        .build()?;
    db.create_table("dummy", schema)?;
    bulk_insert(
        db,
        "dummy",
        (0..rows as i64).map(|i| vec![Value::Int(i), Value::str("p")]),
    )
}

/// Create and fill FOJ sources: `R(a, b, c)` (pk `a`, join `c`) and
/// `S(c, d)` (pk = join = `c`); every R row has a join partner so the
/// join fan-in is `FOJ_R_ROWS / FOJ_S_ROWS` ≈ 2.5, as in the paper's
/// 50k/20k setup.
pub fn setup_foj_sources(db: &Database, r_rows: usize, s_rows: usize) -> DbResult<()> {
    let r_schema = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()?;
    let s_schema = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["c"])
        .build()?;
    db.create_table("R", r_schema)?;
    db.create_table("S", s_schema)?;
    bulk_insert(
        db,
        "R",
        (0..r_rows as i64).map(move |i| {
            vec![
                Value::Int(i),
                Value::str("payload"),
                Value::Int(i % s_rows.max(1) as i64),
            ]
        }),
    )?;
    bulk_insert(
        db,
        "S",
        (0..s_rows as i64).map(|j| vec![Value::Int(j), Value::str("dep")]),
    )
}

/// Create and fill the split source: `T(a, b, c, d)` (pk `a`, split
/// attribute `c` with `values` distinct values, `d` functionally
/// dependent on `c`).
pub fn setup_split_source(db: &Database, rows: usize, values: usize) -> DbResult<()> {
    let schema = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["a"])
        .build()?;
    db.create_table("T", schema)?;
    bulk_insert(
        db,
        "T",
        (0..rows as i64).map(move |i| {
            let c = i % values.max(1) as i64;
            vec![
                Value::Int(i),
                Value::str("payload"),
                Value::Int(c),
                Value::str(format!("dep-{c}")),
            ]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_build_expected_shapes() {
        let db = Database::new();
        setup_dummy(&db, 100).unwrap();
        setup_foj_sources(&db, 200, 50).unwrap();
        setup_split_source(&db, 150, 30).unwrap();
        assert_eq!(db.catalog().get("dummy").unwrap().len(), 100);
        assert_eq!(db.catalog().get("R").unwrap().len(), 200);
        assert_eq!(db.catalog().get("S").unwrap().len(), 50);
        assert_eq!(db.catalog().get("T").unwrap().len(), 150);
        // FD holds in T.
        let t = db.catalog().get("T").unwrap();
        let rows = t.snapshot();
        for (_, row) in rows {
            let c = row.values[2].as_int().unwrap();
            assert_eq!(row.values[3], Value::str(format!("dep-{c}")));
        }
    }
}
