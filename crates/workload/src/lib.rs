//! # morph-workload
//!
//! Closed-loop benchmark driver reproducing the paper's measurement
//! methodology (§6):
//!
//! * every transaction updates a fixed number of records (10 in the
//!   paper) under record locks;
//! * a configurable fraction of updates hits the transformation's
//!   source tables (the "20 % / 80 % updates on T" axis of Figure
//!   4(c)); the remainder hits a dummy table "to keep the workload
//!   constant";
//! * *100 % workload* is the number of concurrent client transactions
//!   that maximizes throughput; lower workloads scale the client count
//!   down;
//! * the cost of a schema change is *relative*: throughput and response
//!   time during the change divided by the same quantities measured
//!   without it.
//!
//! The driver also encodes the client-side reality of an online schema
//! change: when a source table freezes or disappears mid-run
//! (synchronization!), clients see `TableFrozen` / `NoSuchTable` /
//! `TxnDoomed` errors, roll back, and keep going — exactly what the
//! paper's non-blocking guarantee is *for*.

pub mod client;
pub mod drive;
pub mod runner;
pub mod setup;
pub mod stats;
pub mod step;

pub use client::{ClientConfig, HotSide};
pub use drive::{spawn_updaters, UpdateTarget, UpdaterPool};
pub use runner::{RelativeRun, WindowStats, WorkloadRunner};
pub use setup::{
    db_with_wal, setup_dummy, setup_foj_sources, setup_split_source, FOJ_R_ROWS, FOJ_S_ROWS,
    SPLIT_ROWS, SPLIT_VALUES,
};
pub use stats::SharedStats;
pub use step::{StepOutcome, StepStats, StepWorkload, TableProfile};
