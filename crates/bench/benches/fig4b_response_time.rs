//! **Figure 4(b)**: "Interference on response time by initial
//! population with 20 % updates on T."
//!
//! Same runs as Figure 4(a) but reporting the ratio of mean committed
//! transaction response time (during / baseline), over the paper's
//! wider workload range (40–100 %). The paper observes relative
//! response time climbing from ≈1.0–1.05 at low workloads to ≈1.25–1.30
//! near saturation, with increasing variance.

use morph_bench::{
    banner, db_split, relative_point, scale, split_client_cfg, threads_for, Csv, Op,
    PopulationLoop, WORKLOADS_RESPONSE,
};
use morph_workload::WorkloadRunner;
use std::sync::Arc;

/// Background priority of the population phase (the paper's "low
/// priority background process"); see `PopulationLoop::start`.
const POP_PRIORITY: f64 = 0.25;

fn main() {
    let s = scale();
    banner(
        "Figure 4(b): relative response time vs workload, initial population, 20% updates on source",
        "Løland & Hvasshovd, EDBT 2006, Fig. 4(b); §6",
    );
    let mut csv = Csv::create(
        "fig4b_response_time",
        "workload_pct,threads,baseline_ms,during_ms,relative_response_time,baseline_p95_ms,during_p95_ms",
    );
    println!(
        "{:>12} {:>8} {:>14} {:>12} {:>24}",
        "workload%", "threads", "baseline ms", "during ms", "relative response time"
    );
    for pct in WORKLOADS_RESPONSE {
        let threads = threads_for(pct);
        let db = db_split(s);
        let runner = WorkloadRunner::start(Arc::clone(&db), split_client_cfg(s, 0.2), threads);
        let (baseline, during, _rounds) = relative_point(
            &runner,
            s,
            || PopulationLoop::start(Arc::clone(&db), Op::Split, POP_PRIORITY),
            PopulationLoop::stop,
        );
        runner.stop();
        let rel = if baseline.mean_latency_ms > 0.0 {
            during.mean_latency_ms / baseline.mean_latency_ms
        } else {
            0.0
        };
        println!(
            "{:>12} {:>8} {:>14.3} {:>12.3} {:>24.4}",
            pct, threads, baseline.mean_latency_ms, during.mean_latency_ms, rel
        );
        csv.row(&format!(
            "{pct},{threads},{:.4},{:.4},{:.4},{:.4},{:.4}",
            baseline.mean_latency_ms,
            during.mean_latency_ms,
            rel,
            baseline.p95_latency_ms,
            during.p95_latency_ms
        ));
    }
    println!("\nCSV written to {}", csv.path.display());
}
