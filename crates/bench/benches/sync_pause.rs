//! **Synchronization pause** (§3.4/§6): "Synchronization takes less
//! than 1 ms in the prototype tests with non-blocking abort."
//!
//! Runs full split and FOJ transformations under a 75 % workload with
//! the non-blocking-abort strategy and reports the source-table latch
//! pause of the synchronization step (the only moment user
//! transactions are physically paused), across several runs.

use morph_bench::{
    banner, bench_foj_spec, bench_split_spec, db_foj, db_split, foj_client_cfg, scale,
    split_client_cfg, threads_for, Csv,
};
use morph_core::{SyncStrategy, TransformOptions, Transformer};
use morph_workload::WorkloadRunner;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let s = scale();
    banner(
        "Synchronization pause, non-blocking abort, 75% workload",
        "Løland & Hvasshovd, EDBT 2006, §3.4/§6: \"less than 1 ms\"",
    );
    let mut csv = Csv::create(
        "sync_pause",
        "op,run,latch_pause_us,final_records,old_txns,locks_transferred",
    );
    let runs = if morph_bench::quick() { 2 } else { 5 };
    let threads = threads_for(75);

    for op in ["split", "foj"] {
        let mut pauses = Vec::new();
        for run in 0..runs {
            let (db, cfg) = if op == "split" {
                (db_split(s), split_client_cfg(s, 0.2))
            } else {
                (db_foj(s), foj_client_cfg(s, 0.2))
            };
            let runner = WorkloadRunner::start(Arc::clone(&db), cfg, threads);
            std::thread::sleep(s.warmup);
            let options = TransformOptions::default()
                .strategy(SyncStrategy::NonBlockingAbort)
                .deadline(Duration::from_secs(60));
            let report = if op == "split" {
                Transformer::run_split(&db, bench_split_spec("R_out", "S_out", false), options)
            } else {
                Transformer::run_foj(&db, bench_foj_spec("T_out"), options)
            }
            .expect("transformation");
            runner.stop();
            let us = report.sync.latch_pause.as_micros();
            pauses.push(us);
            println!(
                "{op} run {run}: latch pause {us} µs  (final drain: {} records, \
                 {} old txns, {} locks transferred)",
                report.sync.final_records, report.sync.old_txns, report.sync.locks_transferred
            );
            csv.row(&format!(
                "{op},{run},{us},{},{},{}",
                report.sync.final_records, report.sync.old_txns, report.sync.locks_transferred
            ));
        }
        pauses.sort_unstable();
        println!(
            "{op}: min {} µs / median {} µs / max {} µs  (paper: < 1000 µs)\n",
            pauses[0],
            pauses[pauses.len() / 2],
            pauses[pauses.len() - 1]
        );
    }
    println!("CSV written to {}", csv.path.display());
}
