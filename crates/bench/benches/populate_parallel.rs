//! `populate_parallel`: throughput of the §3.2 initial population as a
//! function of the parallel fuzzy-copy worker count.
//!
//! Each point populates a fresh split target at full priority with
//! `copy_workers ∈ {1, 2, 4, 8}` partitioned scan workers while an
//! unpaced hot workload saturates the server — the regime the copy
//! actually runs in. Rates are rows read per second of wall time;
//! `speedup_vs_1` is the ratio to the single-worker point of the same
//! run.
//!
//! Writes `BENCH_populate_parallel.json` at the repository root and a
//! CSV under `target/experiments/`. The same sweep (fewer reps) is
//! embedded in `propagate_batch`'s `BENCH_propagation.json` so the
//! trajectory file carries the population evidence too.

use morph_bench::{banner, populate_parallel_point, quick, Csv};
use std::io::Write;

fn main() {
    banner(
        "populate_parallel: initial population rate vs fuzzy-copy worker count",
        "Løland & Hvasshovd, EDBT 2006, §3.2 (initial population as a background process)",
    );
    let reps = if quick() { 1 } else { 5 };
    let mut csv = Csv::create(
        "populate_parallel",
        "copy_workers,rows_read,ns,rows_per_sec,speedup_vs_1",
    );
    println!(
        "{:>12} {:>10} {:>14} {:>14} {:>12}",
        "copy_workers", "rows", "ns", "rows/s", "speedup"
    );
    let mut base: Option<f64> = None;
    let mut entries = Vec::new();
    for w in [1usize, 2, 4, 8] {
        let p = populate_parallel_point(w, reps);
        let base_rate = *base.get_or_insert(p.rows_per_sec);
        let speedup = p.rows_per_sec / base_rate;
        println!(
            "{:>12} {:>10} {:>14} {:>14.0} {:>12.2}",
            p.copy_workers, p.rows_read, p.ns, p.rows_per_sec, speedup
        );
        csv.row(&format!(
            "{},{},{},{:.0},{:.2}",
            p.copy_workers, p.rows_read, p.ns, p.rows_per_sec, speedup
        ));
        entries.push(format!(
            "    {{ \"copy_workers\": {}, \"rows_read\": {}, \"ns\": {}, \"rows_per_sec\": {:.0}, \"speedup_vs_1\": {:.2} }}",
            p.copy_workers, p.rows_read, p.ns, p.rows_per_sec, speedup
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"populate_parallel\",\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_populate_parallel.json");
    let mut f = std::fs::File::create(&path).expect("bench json");
    f.write_all(json.as_bytes()).expect("bench json write");
    println!("\n{json}");
    println!("wrote {}", path.display());
    println!("CSV written to {}", csv.path.display());
}
