//! Microbenchmark of the batched propagation pipeline: drain an
//! identical relevant-record backlog through the propagator at cursor
//! batch sizes 1, 16, 128 and 1024, for both a FOJ (content-based
//! rules, `DeleteOnly` coalescing) and a split (LSN-gated rules,
//! `Full` coalescing) operator.
//!
//! Batch size 1 degenerates to the record-at-a-time pipeline: one
//! target-latch round trip per record and nothing for the coalescer to
//! see. Larger batches amortize the write sessions over the run and
//! let the coalescer drop superseded records before they reach the
//! rules. Every sample drains a *fresh* database (`iter_batched`
//! setup, excluded from timing), so the measured work is the first
//! application of each record — the propagation the paper's §3.3
//! background process actually performs — not the idempotent-replay
//! guard path.
//!
//! A second, `parallel` series measures the persistent-pool apply at
//! `apply_shards ∈ {1, 2, 4, 8}` (cursor batch 1024) on an
//! update-heavy scenario — payload updates are the record class the
//! sharding lane-classifies, so this mix produces the long
//! barrier-free runs the parallel segments need. The pool is spawned
//! in the (untimed) setup: the persistent design pays thread creation
//! once per job, not per batch. The series also embeds the
//! `populate_parallel` worker-count sweep so this one JSON carries the
//! full parallel-pipeline trajectory.
//!
//! Writes `BENCH_propagation.json` at the repository root with
//! records/s per batch size, the coalescer's drop counts, the detected
//! core count (single-CPU numbers must not masquerade as scaling
//! data), and the pool's epoch/handoff/steal counters. Series other
//! benches merged into the file (`wal_commit_rate`, `pool_gate`) are
//! preserved across a rewrite.

use criterion::{BatchSize, Criterion, Throughput};
use morph_bench::apply_sweep::{self, ApplyOp, Lcg};
use morph_bench::populate_parallel_point;
use morph_common::{ColumnType, Key, Lsn, Schema, Value};
use morph_core::foj::{figure1_schemas, FojMapping};
use morph_core::propagate::Propagator;
use morph_core::{
    ApplyPool, FojSpec, ParallelConfig, PoolStats, SplitMapping, SplitSpec, TransformOperator,
};
use morph_engine::Database;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Hot keys the churn concentrates on — small enough that one 1024
/// cursor batch revisits each key many times, the regime coalescing is
/// for.
const HOT_KEYS: i64 = 64;
const CHURN_TXNS: usize = 300;
const OPS_PER_TXN: usize = 10;

/// FOJ scenario: sources populated, targets caught up, then a churn
/// tail of hot payload updates (pending until a delete swallows them),
/// join-attribute moves (barrier columns) and delete/insert pairs.
fn setup_foj() -> (Arc<Database>, FojMapping, Lsn) {
    let db = Arc::new(Database::new());
    let (rs, ss) = figure1_schemas();
    db.create_table("R", rs).unwrap();
    db.create_table("S", ss).unwrap();
    let txn = db.begin();
    for j in 0..16 {
        db.insert(txn, "S", vec![Value::str(format!("j{j}")), Value::str("d")])
            .unwrap();
    }
    for i in 0..HOT_KEYS {
        db.insert(
            txn,
            "R",
            vec![
                Value::Int(i),
                Value::str("b"),
                Value::str(format!("j{}", i % 16)),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();

    let m = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
    let (_, start, _) = db.write_fuzzy_mark();
    m.populate(256).unwrap();

    let mut rng = Lcg(7);
    for t in 0..CHURN_TXNS {
        let txn = db.begin();
        for _ in 0..OPS_PER_TXN {
            let r = rng.step();
            let a = (rng.step() % HOT_KEYS as u64) as i64;
            let j = rng.step() % 16;
            match r % 16 {
                0 | 4 => {
                    let _ = db.delete(txn, "R", &Key::single(a));
                }
                1 | 5 => {
                    let _ = db.insert(
                        txn,
                        "R",
                        vec![Value::Int(a), Value::str("b"), Value::str(format!("j{j}"))],
                    );
                }
                2 => {
                    let _ = db.update(
                        txn,
                        "R",
                        &Key::single(a),
                        &[(2, Value::str(format!("j{j}")))],
                    );
                }
                _ => {
                    let _ = db.update(
                        txn,
                        "R",
                        &Key::single(a),
                        &[(1, Value::str(format!("p{t}")))],
                    );
                }
            }
        }
        db.commit(txn).unwrap();
    }
    (db, m, start)
}

/// Split scenario: `Full` coalescing — repeated hot payload updates
/// subsume each other, so large runs shed most of their records before
/// the rules run. Moves touch the S-side barrier columns and survive.
fn setup_split() -> (Arc<Database>, SplitMapping, Lsn) {
    let db = Arc::new(Database::new());
    let ts = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Str)
        .nullable("d", ColumnType::Str)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", ts).unwrap();
    let txn = db.begin();
    for i in 0..HOT_KEYS {
        let c = format!("c{}", i % 16);
        db.insert(
            txn,
            "T",
            vec![
                Value::Int(i),
                Value::str("b"),
                Value::str(&c),
                Value::str(format!("dep-{c}")),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();

    let spec = SplitSpec::new("T", "R_b", "S_b", &["a", "b", "c"], "c", &["d"]);
    let mut m = SplitMapping::prepare(&db, &spec).unwrap();
    let (_, start, _) = db.write_fuzzy_mark();
    m.populate(256).unwrap();

    let mut rng = Lcg(13);
    for t in 0..CHURN_TXNS {
        let txn = db.begin();
        for _ in 0..OPS_PER_TXN {
            let r = rng.step();
            let a = (rng.step() % HOT_KEYS as u64) as i64;
            let c = format!("c{}", rng.step() % 16);
            match r % 16 {
                0 => {
                    let _ = db.update(
                        txn,
                        "T",
                        &Key::single(a),
                        &[(2, Value::str(&c)), (3, Value::str(format!("dep-{c}")))],
                    );
                }
                1 => {
                    let _ = db.delete(txn, "T", &Key::single(a));
                }
                2 => {
                    let _ = db.insert(
                        txn,
                        "T",
                        vec![
                            Value::Int(a),
                            Value::str("b"),
                            Value::str(&c),
                            Value::str(format!("dep-{c}")),
                        ],
                    );
                }
                _ => {
                    let _ = db.update(
                        txn,
                        "T",
                        &Key::single(a),
                        &[(1, Value::str(format!("p{t}")))],
                    );
                }
            }
        }
        db.commit(txn).unwrap();
    }
    (db, m, start)
}

/// First drain of a fresh scenario at one cursor batch size.
/// `apply_shards: 1` is the exact serial pipeline.
fn drain(
    db: &Arc<Database>,
    m: &mut dyn TransformOperator,
    start: Lsn,
    batch_size: usize,
    apply_shards: usize,
) -> (usize, usize) {
    let mut prop =
        Propagator::new(db, start, 1.0).with_parallel(ParallelConfig::new(1, apply_shards).exact());
    let records = prop.drain_with_batch(db, m, batch_size).expect("drain");
    (records, prop.coalesced())
}

struct Series {
    operator: &'static str,
    batch_size: usize,
    coalesced: usize,
    records: usize,
    /// `Some(n)` marks a `parallel`-series entry at n apply shards.
    apply_shards: Option<usize>,
    /// Pool counters of the probe drain (parallel series, shards > 1).
    stats: Option<PoolStats>,
}

fn main() {
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(150))
        .configure_from_args();

    let sizes = [1usize, 16, 128, 1024];
    let shard_counts = [1usize, 2, 4, 8];
    let mut series: Vec<Series> = Vec::new();
    {
        let mut g = c.benchmark_group("propagate_batch");
        for &bs in &sizes {
            // Probe drain (untimed): record and coalesce counts for
            // this size. The churn stream is deterministic, so every
            // timed sample drains the identical log.
            let (db, mut m, start) = setup_foj();
            let (records, coalesced) = drain(&db, &mut m, start, bs, 1);
            series.push(Series {
                operator: "foj",
                batch_size: bs,
                coalesced,
                records,
                apply_shards: None,
                stats: None,
            });
            g.throughput(Throughput::Elements(records as u64));
            g.bench_function(format!("foj/batch_{bs}"), |b| {
                b.iter_batched(
                    setup_foj,
                    |(db, mut m, start)| drain(&db, &mut m, start, bs, 1),
                    BatchSize::PerIteration,
                );
            });
        }
        for &bs in &sizes {
            let (db, mut m, start) = setup_split();
            let (records, coalesced) = drain(&db, &mut m, start, bs, 1);
            series.push(Series {
                operator: "split",
                batch_size: bs,
                coalesced,
                records,
                apply_shards: None,
                stats: None,
            });
            g.throughput(Throughput::Elements(records as u64));
            g.bench_function(format!("split/batch_{bs}"), |b| {
                b.iter_batched(
                    setup_split,
                    |(db, mut m, start)| drain(&db, &mut m, start, bs, 1),
                    BatchSize::PerIteration,
                );
            });
        }
        for op in [ApplyOp::Foj, ApplyOp::Split] {
            for &shards in &shard_counts {
                let (db, mut m, start) = apply_sweep::setup(op);
                let pool = (shards > 1).then(|| Arc::new(ApplyPool::new(shards)));
                let (records, coalesced, stats) =
                    apply_sweep::drain_pooled(&db, m.as_mut(), start, 1024, pool.as_ref());
                series.push(Series {
                    operator: op.name(),
                    batch_size: 1024,
                    coalesced,
                    records,
                    apply_shards: Some(shards),
                    stats: Some(stats),
                });
                g.throughput(Throughput::Elements(records as u64));
                g.bench_function(format!("{}/parallel_shards_{shards}", op.name()), |b| {
                    b.iter_batched(
                        || {
                            let scenario = apply_sweep::setup(op);
                            let pool = (shards > 1).then(|| Arc::new(ApplyPool::new(shards)));
                            (scenario, pool)
                        },
                        |((db, mut m, start), pool)| {
                            apply_sweep::drain_pooled(&db, m.as_mut(), start, 1024, pool.as_ref())
                        },
                        BatchSize::PerIteration,
                    );
                });
            }
        }
        g.finish();
    }

    // Parallel fuzzy-copy sweep (untimed by criterion; wall-clock of
    // one populate under a saturating workload, best of `reps`).
    let pop_reps = if morph_bench::quick() { 1 } else { 2 };
    let pop_points: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| populate_parallel_point(w, pop_reps))
        .collect();

    let measurements = c.measurements();
    let mut entries: Vec<String> = Vec::new();
    for (i, meas) in measurements.iter().enumerate() {
        let s = &series[i.min(series.len() - 1)];
        let tag = match s.apply_shards {
            Some(n) => format!("\"series\": \"parallel\", \"apply_shards\": {n}, "),
            None => String::new(),
        };
        let counters = match &s.stats {
            Some(st) if s.apply_shards.is_some_and(|n| n > 1) => format!(
                ", \"epochs\": {}, \"handoffs\": {}, \"steals\": {}, \"inline_runs\": {}",
                st.epochs, st.handoffs, st.steals, st.inline_runs
            ),
            _ => String::new(),
        };
        entries.push(format!(
            "    {{ {}\"operator\": \"{}\", \"batch_size\": {}, \"records_per_drain\": {}, \"coalesced_per_drain\": {}, \"ns_per_drain\": {:.0}, \"records_per_sec\": {:.0}{} }}",
            tag,
            s.operator,
            s.batch_size,
            s.records,
            s.coalesced,
            meas.ns_per_iter,
            meas.per_second().unwrap_or(0.0),
            counters,
        ));
    }
    let pop_base = pop_points.first().map_or(1.0, |p| p.rows_per_sec);
    for p in &pop_points {
        entries.push(format!(
            "    {{ \"series\": \"populate_parallel\", \"copy_workers\": {}, \"rows_read\": {}, \"ns\": {}, \"rows_per_sec\": {:.0}, \"speedup_vs_1\": {:.2} }}",
            p.copy_workers,
            p.rows_read,
            p.ns,
            p.rows_per_sec,
            p.rows_per_sec / pop_base,
        ));
    }

    // Keep series other benches merged into this file (`wal_append`'s
    // commit-rate sweep, `bench_check`'s gate results) across the
    // rewrite, so regenerating the propagation numbers does not
    // silently drop them.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_propagation.json");
    if let Ok(old) = std::fs::read_to_string(&path) {
        for line in old.lines() {
            if line.contains("\"series\": \"wal_commit_rate\"")
                || line.contains("\"series\": \"pool_gate\"")
            {
                entries.push(line.trim_end().trim_end_matches(',').to_owned());
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"propagate_batch\",\n  \"cores\": {},\n  \"series\": [\n{}\n  ]\n}}\n",
        apply_sweep::detected_cores(),
        entries.join(",\n"),
    );
    let mut f = std::fs::File::create(&path).expect("bench json");
    f.write_all(json.as_bytes()).expect("bench json write");
    println!("{json}");
    println!("wrote {}", path.display());
}
