//! **Figure 4(a)**: "Interference on throughput by initial population
//! with 20 % updates on T."
//!
//! For each workload level (50–100 %) this bench measures committed
//! transactions per second in a window *without* and then *with* the
//! initial-population phase running in the background, and reports the
//! ratio. The paper observes relative throughput falling from ≈0.99 at
//! 50 % workload to ≈0.94–0.96 at 100 %.
//!
//! Three series are produced: the split transformation (the figure's
//! subject), split with §5.3 consistency checking (the paper reports
//! "very similar results"), and FOJ (likewise).

use morph_bench::{
    banner, db_foj, db_split, foj_client_cfg, relative_point, scale, split_client_cfg, threads_for,
    Csv, Op, PopulationLoop, WORKLOADS_THROUGHPUT,
};
use morph_workload::WorkloadRunner;
use std::sync::Arc;

/// Background priority of the population phase (the paper's "low
/// priority background process"); see `PopulationLoop::start`.
const POP_PRIORITY: f64 = 0.25;

fn main() {
    let s = scale();
    banner(
        "Figure 4(a): relative throughput vs workload, initial population, 20% updates on source",
        "Løland & Hvasshovd, EDBT 2006, Fig. 4(a); §6",
    );
    let mut csv = Csv::create(
        "fig4a_initial_population",
        "series,workload_pct,threads,baseline_tps,during_tps,relative_throughput,pop_rounds",
    );

    for op in [Op::Split, Op::SplitCc, Op::Foj] {
        println!("\nseries: {op}");
        println!(
            "{:>12} {:>8} {:>14} {:>12} {:>22}",
            "workload%", "threads", "baseline tps", "during tps", "relative throughput"
        );
        for pct in WORKLOADS_THROUGHPUT {
            let threads = threads_for(pct);
            let db = match op {
                Op::Foj => db_foj(s),
                _ => db_split(s),
            };
            let cfg = match op {
                Op::Foj => foj_client_cfg(s, 0.2),
                _ => split_client_cfg(s, 0.2),
            };
            if op == Op::SplitCc {
                morph_bench::preinstall_cc_index(&db);
            }
            let runner = WorkloadRunner::start(Arc::clone(&db), cfg, threads);
            let (baseline, during, rounds) = relative_point(
                &runner,
                s,
                || PopulationLoop::start(Arc::clone(&db), op, POP_PRIORITY),
                PopulationLoop::stop,
            );
            runner.stop();
            let rel = if baseline.throughput > 0.0 {
                during.throughput / baseline.throughput
            } else {
                0.0
            };
            println!(
                "{:>12} {:>8} {:>14.1} {:>12.1} {:>22.4}",
                pct, threads, baseline.throughput, during.throughput, rel
            );
            csv.row(&format!(
                "{op},{pct},{threads},{:.2},{:.2},{:.4},{rounds}",
                baseline.throughput, during.throughput, rel
            ));
        }
    }
    println!("\nCSV written to {}", csv.path.display());
}
