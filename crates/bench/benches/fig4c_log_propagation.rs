//! **Figure 4(c)**: "Interference on throughput by log propagation for
//! two update scenarios."
//!
//! The propagation phase runs continuously in the background while the
//! workload generates log records; two series differ in the fraction of
//! updates targeting the source table (20 % vs 80 % — four times more
//! relevant log records in the latter). The paper observes the 80 %
//! series interfering clearly more (≈0.88–0.93 relative throughput)
//! than the 20 % series (≈0.93–0.98), both degrading with workload.
//!
//! An FOJ series at 20 % is included ("the same effect is observed on
//! log propagation for FOJ").

use morph_bench::{
    banner, db_foj, db_split, foj_client_cfg, relative_point, scale, split_client_cfg, threads_for,
    Csv, Op, PropagationLoop, WORKLOADS_THROUGHPUT,
};
use morph_workload::WorkloadRunner;
use std::sync::Arc;

fn main() {
    let s = scale();
    banner(
        "Figure 4(c): relative throughput vs workload, log propagation, 20% vs 80% updates on source",
        "Løland & Hvasshovd, EDBT 2006, Fig. 4(c); §6",
    );
    let mut csv = Csv::create(
        "fig4c_log_propagation",
        "series,hot_pct,workload_pct,threads,baseline_tps,during_tps,relative_throughput,records_propagated",
    );

    // (series label, op, fraction of updates on the source table)
    let series = [
        ("split-20", Op::Split, 0.2),
        ("split-80", Op::Split, 0.8),
        ("foj-20", Op::Foj, 0.2),
    ];
    for (label, op, hot) in series {
        println!("\nseries: {label} ({:.0}% updates on source)", hot * 100.0);
        println!(
            "{:>12} {:>8} {:>14} {:>12} {:>22}",
            "workload%", "threads", "baseline tps", "during tps", "relative throughput"
        );
        for pct in WORKLOADS_THROUGHPUT {
            let threads = threads_for(pct);
            let db = match op {
                Op::Foj => db_foj(s),
                _ => db_split(s),
            };
            let cfg = match op {
                Op::Foj => foj_client_cfg(s, hot),
                _ => split_client_cfg(s, hot),
            };
            let runner = WorkloadRunner::start(Arc::clone(&db), cfg, threads);
            let (baseline, during, records) = relative_point(
                &runner,
                s,
                || PropagationLoop::start(Arc::clone(&db), op, 1.0),
                PropagationLoop::stop,
            );
            runner.stop();
            let rel = if baseline.throughput > 0.0 {
                during.throughput / baseline.throughput
            } else {
                0.0
            };
            println!(
                "{:>12} {:>8} {:>14.1} {:>12.1} {:>22.4}",
                pct, threads, baseline.throughput, during.throughput, rel
            );
            csv.row(&format!(
                "{label},{:.0},{pct},{threads},{:.2},{:.2},{:.4},{records}",
                hot * 100.0,
                baseline.throughput,
                during.throughput,
                rel
            ));
        }
    }
    println!("\nCSV written to {}", csv.path.display());
}
