//! **Ablation baselines**: what the paper's design choices buy.
//!
//! 1. *Blocking `insert into select`* (§1): the motivation — "for
//!    tables with large amounts of data, the insert into select method
//!    could easily take tens of minutes". We measure the unavailability
//!    window of the blocking transformation against the non-blocking
//!    framework's synchronization pause on the same data.
//! 2. *Trigger-based maintenance* (Ronström's method, §2.1): the paper
//!    argues synchronous trigger work inside user transactions costs
//!    more than log-based background propagation. We measure workload
//!    throughput and response time with triggers installed vs. with the
//!    log propagator running.
//! 3. *Rename-in-place split* (§5.2 alternative): space savings traded
//!    against a heavier completion step.

use morph_bench::{
    banner, bench_foj_spec, bench_split_spec, db_foj, db_split, foj_client_cfg, scale,
    split_client_cfg, threads_for, Csv, Op, PropagationLoop,
};
use morph_core::baseline::{blocking_split, TriggerMaintenance};
use morph_core::{SplitSpec, SyncStrategy, TransformOptions, Transformer};
use morph_workload::WorkloadRunner;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let s = scale();
    banner(
        "Ablations: blocking baseline, trigger-based maintenance, rename-in-place",
        "Løland & Hvasshovd, EDBT 2006, §1 (blocking), §2.1 (Ronström), §5.2 (alternative)",
    );
    let mut csv = Csv::create("ablation_baselines", "experiment,metric,value");
    let threads = threads_for(75);

    // --- ABL1: blocking insert-into-select vs non-blocking sync pause ---
    println!("\n[ABL1] blocking `insert into select` unavailability vs non-blocking pause");
    {
        let db = db_split(s);
        let runner = WorkloadRunner::start(Arc::clone(&db), split_client_cfg(s, 0.2), threads);
        std::thread::sleep(s.warmup);
        let spec = bench_split_spec("R_out", "S_out", false);
        let report = blocking_split(&db, &spec).expect("blocking split");
        runner.stop();
        println!(
            "  blocking: sources unavailable for {:?} ({} rows copied)",
            report.blocked, report.rows_written
        );
        csv.row(&format!(
            "blocking_split,unavailable_us,{}",
            report.blocked.as_micros()
        ));
    }
    {
        let db = db_split(s);
        let runner = WorkloadRunner::start(Arc::clone(&db), split_client_cfg(s, 0.2), threads);
        std::thread::sleep(s.warmup);
        let report = Transformer::run_split(
            &db,
            bench_split_spec("R_out", "S_out", false),
            TransformOptions::default()
                .strategy(SyncStrategy::NonBlockingAbort)
                .deadline(Duration::from_secs(60)),
        )
        .expect("non-blocking split");
        runner.stop();
        println!(
            "  non-blocking: user-visible pause {:?} (total transformation time {:?})",
            report.sync.latch_pause, report.total
        );
        csv.row(&format!(
            "nonblocking_split,pause_us,{}",
            report.sync.latch_pause.as_micros()
        ));
        csv.row(&format!(
            "nonblocking_split,total_us,{}",
            report.total.as_micros()
        ));
    }

    // --- ABL2: trigger-based (Ronström) vs log propagation ---
    println!("\n[ABL2] trigger-based maintenance vs log propagation (FOJ, 75% workload)");
    let plain = {
        let db = db_foj(s);
        let runner = WorkloadRunner::start(Arc::clone(&db), foj_client_cfg(s, 0.2), threads);
        std::thread::sleep(s.warmup);
        let w = runner.measure(s.window);
        runner.stop();
        w
    };
    println!(
        "  no maintenance:   {:>8.1} tps, {:>7.3} ms mean",
        plain.throughput, plain.mean_latency_ms
    );
    csv.row(&format!("none,tps,{:.2}", plain.throughput));
    csv.row(&format!("none,mean_ms,{:.4}", plain.mean_latency_ms));

    let trig = {
        let db = db_foj(s);
        let tm = TriggerMaintenance::install(&db, &bench_foj_spec("T_trig")).expect("triggers");
        let runner = WorkloadRunner::start(Arc::clone(&db), foj_client_cfg(s, 0.2), threads);
        std::thread::sleep(s.warmup);
        let w = runner.measure(s.window);
        runner.stop();
        tm.uninstall(&db);
        w
    };
    println!(
        "  triggers:         {:>8.1} tps, {:>7.3} ms mean  (rel tps {:.4}, rel resp {:.4})",
        trig.throughput,
        trig.mean_latency_ms,
        trig.throughput / plain.throughput,
        trig.mean_latency_ms / plain.mean_latency_ms
    );
    csv.row(&format!("triggers,tps,{:.2}", trig.throughput));
    csv.row(&format!("triggers,mean_ms,{:.4}", trig.mean_latency_ms));

    // The paper's decisive point is not that propagation is free, but
    // that — unlike triggers, whose work is welded into the user
    // transaction — it can be *deferred and throttled* ("updates can
    // therefore be propagated to the transformed tables during low
    // workloads", §2.1). Measure it at full priority and at a
    // background priority; triggers have no such knob.
    for (label, prio) in [("log-prop p=1.0", 1.0), ("log-prop p=0.25", 0.25)] {
        let logprop = {
            let db = db_foj(s);
            let runner = WorkloadRunner::start(Arc::clone(&db), foj_client_cfg(s, 0.2), threads);
            std::thread::sleep(s.warmup);
            let lp = PropagationLoop::start(Arc::clone(&db), Op::Foj, prio);
            let w = runner.measure(s.window);
            lp.stop();
            runner.stop();
            w
        };
        println!(
            "  {label}:  {:>8.1} tps, {:>7.3} ms mean  (rel tps {:.4}, rel resp {:.4})",
            logprop.throughput,
            logprop.mean_latency_ms,
            logprop.throughput / plain.throughput,
            logprop.mean_latency_ms / plain.mean_latency_ms
        );
        csv.row(&format!("{label},tps,{:.2}", logprop.throughput));
        csv.row(&format!("{label},mean_ms,{:.4}", logprop.mean_latency_ms));
    }

    // --- ABL3: rename-in-place vs separate-R split ---
    println!("\n[ABL3] rename-in-place split (§5.2 alternative) vs separate R");
    for (label, in_place) in [("separate-R", false), ("rename-in-place", true)] {
        let db = db_split(s);
        let runner = WorkloadRunner::start(Arc::clone(&db), split_client_cfg(s, 0.2), threads);
        std::thread::sleep(s.warmup);
        let mut spec: SplitSpec = bench_split_spec("R_out", "S_out", false);
        if in_place {
            spec = spec.rename_in_place();
        }
        let report = Transformer::run_split(
            &db,
            spec,
            TransformOptions::default().deadline(Duration::from_secs(60)),
        )
        .expect("split");
        runner.stop();
        println!(
            "  {label:>16}: pause {:?}, total {:?}, population wrote {} rows",
            report.sync.latch_pause, report.total, report.population.rows_written
        );
        csv.row(&format!(
            "{label},pause_us,{}",
            report.sync.latch_pause.as_micros()
        ));
        csv.row(&format!(
            "{label},pop_rows_written,{}",
            report.population.rows_written
        ));
    }

    println!("\nCSV written to {}", csv.path.display());
}
