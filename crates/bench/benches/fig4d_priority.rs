//! **Figure 4(d)**: "Time and interference vs transformation priority
//! at 75 % workload."
//!
//! A full split transformation runs at each priority level while the
//! workload holds 75 % of full load; we report (i) the time needed to
//! complete the transformation and (ii) the relative throughput during
//! it. The paper's shape: interference falls with priority while
//! completion time grows hyperbolically, and below a floor (≈0.5 % in
//! their setup) the propagation never finishes. Non-convergent runs are
//! reported as `DNF`.

use morph_bench::{banner, bench_split_spec, db_split, scale, split_client_cfg, threads_for, Csv};
use morph_core::{NonConvergencePolicy, TransformOptions, Transformer};
use morph_workload::WorkloadRunner;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let s = scale();
    banner(
        "Figure 4(d): completion time and interference vs transformation priority, 75% workload",
        "Løland & Hvasshovd, EDBT 2006, Fig. 4(d); §6",
    );
    let mut csv = Csv::create(
        "fig4d_priority",
        "priority_pct,threads,baseline_tps,during_tps,relative_throughput,completion_s,converged",
    );

    let threads = threads_for(75);
    let priorities = [0.002, 0.005, 0.01, 0.05, 0.10, 0.25, 0.50, 1.00];
    let budget = if morph_bench::quick() {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(25)
    };

    println!(
        "{:>10} {:>14} {:>12} {:>22} {:>14}",
        "priority", "baseline tps", "during tps", "relative throughput", "completion"
    );
    for p in priorities {
        let db = db_split(s);
        let runner = WorkloadRunner::start(Arc::clone(&db), split_client_cfg(s, 0.2), threads);
        std::thread::sleep(s.warmup);
        let baseline = runner.measure(s.window);

        let spec = bench_split_spec("R_out", "S_out", false);
        let options = TransformOptions::default()
            .priority(p)
            .non_convergence(NonConvergencePolicy::Abort)
            .deadline(budget);
        // Interference is measured over the transformation's *actual*
        // lifetime (spawn → join), not a fixed window: at high priority
        // the change completes in a fraction of a second and a fixed
        // window would dilute its cost with idle time.
        let before = runner.stats().snapshot();
        let t_start = Instant::now();
        let handle = Transformer::spawn_split(Arc::clone(&db), spec, options);
        let result = handle.join();
        let lifespan = t_start.elapsed();
        let delta = runner.stats().snapshot().since(&before);
        let during_tps = delta.committed as f64 / lifespan.as_secs_f64().max(1e-9);
        runner.stop();

        let during = morph_workload::WindowStats {
            duration: lifespan,
            committed: delta.committed,
            aborted: delta.aborted,
            schema_events: delta.schema_events,
            throughput: during_tps,
            mean_latency_ms: delta.mean_latency_ns() / 1e6,
            p95_latency_ms: delta.percentile_ns(0.95) as f64 / 1e6,
        };
        let rel = if baseline.throughput > 0.0 {
            during.throughput / baseline.throughput
        } else {
            0.0
        };
        let (completion, converged) = match &result {
            Ok(report) => (format!("{:.2}s", report.total.as_secs_f64()), true),
            Err(_) => ("DNF".to_owned(), false),
        };
        println!(
            "{:>9.1}% {:>14.1} {:>12.1} {:>22.4} {:>14}",
            p * 100.0,
            baseline.throughput,
            during.throughput,
            rel,
            completion
        );
        csv.row(&format!(
            "{:.2},{threads},{:.2},{:.2},{:.4},{},{}",
            p * 100.0,
            baseline.throughput,
            during.throughput,
            rel,
            match &result {
                Ok(r) => format!("{:.3}", r.total.as_secs_f64()),
                Err(_) => "inf".to_owned(),
            },
            converged
        ));
    }
    println!("\nCSV written to {}", csv.path.display());
    println!(
        "note: 'DNF' = propagation could not converge (or exceeded the {budget:?} budget) \
         at that priority — the paper's 'the transformation will never finish if the \
         priority is set too low'."
    );
}
