//! Criterion microbenchmarks of the components the transformation's
//! cost model is built from: log append + codec, record locking,
//! physical table operations, fuzzy-scan chunking, and the FOJ / split
//! propagation rules themselves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use morph_common::{ColumnType, Key, Lsn, Schema, TableId, TxnId, Value};
use morph_core::{FojMapping, FojSpec, SplitMapping, SplitSpec};
use morph_engine::Database;
use morph_storage::Table;
use morph_txn::{LockManager, LockMode};
use morph_wal::{codec, LogManager, LogOp, LogRecord};
use std::sync::Arc;

fn sample_record() -> LogRecord {
    LogRecord::Op {
        txn: TxnId(42),
        op: LogOp::Update {
            table: TableId(3),
            key: Key::single(123_456),
            old: vec![(1, Value::str("old-payload"))],
            new: vec![(1, Value::str("new-payload"))],
        },
    }
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    g.throughput(Throughput::Elements(1));
    g.bench_function("append", |b| {
        let log = LogManager::new();
        b.iter(|| log.append(sample_record()));
    });
    g.bench_function("codec_encode", |b| {
        let rec = sample_record();
        b.iter(|| codec::encode(&rec));
    });
    g.bench_function("codec_decode", |b| {
        let bytes = codec::encode(&sample_record());
        b.iter(|| codec::decode(&bytes).unwrap());
    });
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    g.throughput(Throughput::Elements(1));
    g.bench_function("exclusive_acquire_release", |b| {
        let lm = LockManager::default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let txn = TxnId(i);
            lm.lock(
                txn,
                TableId(1),
                &Key::single((i % 1024) as i64),
                LockMode::Exclusive,
            )
            .unwrap();
            lm.release_all(txn);
        });
    });
    g.finish();
}

fn bench_table(c: &mut Criterion) {
    let schema = Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("payload", ColumnType::Str)
        .primary_key(&["id"])
        .build()
        .unwrap();
    let table = Arc::new(Table::new(TableId(1), "t", schema));
    for i in 0..50_000i64 {
        table
            .insert(vec![Value::Int(i), Value::str("p")], Lsn(1))
            .unwrap();
    }
    let mut g = c.benchmark_group("table");
    g.throughput(Throughput::Elements(1));
    g.bench_function("point_update_50k", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7919) % 50_000;
            table
                .update(&Key::single(i), &[(1, Value::str("q"))], Lsn(2))
                .unwrap();
        });
    });
    g.bench_function("fuzzy_scan_chunk_1024", |b| {
        b.iter_batched(
            || table.fuzzy_scan(1024),
            |mut scan| scan.next_chunk(),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_foj_rules(c: &mut Criterion) {
    let db = Database::new();
    let (rs, ss) = morph_core::foj::figure1_schemas();
    db.create_table("R", rs).unwrap();
    db.create_table("S", ss).unwrap();
    let m = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
    let r_id = db.catalog().get("R").unwrap().id();
    // Seed join partners.
    for j in 0..1_000 {
        m.apply(
            Lsn(j + 1),
            &LogOp::Insert {
                table: db.catalog().get("S").unwrap().id(),
                row: vec![Value::str(format!("j{j}")), Value::str("d")],
            },
        )
        .unwrap();
    }
    let mut g = c.benchmark_group("foj_rules");
    g.throughput(Throughput::Elements(1));
    g.bench_function("rule1_insert_r", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            m.apply(
                Lsn(10_000 + i as u64),
                &LogOp::Insert {
                    table: r_id,
                    row: vec![
                        Value::Int(i),
                        Value::str("b"),
                        Value::str(format!("j{}", i % 1_000)),
                    ],
                },
            )
            .unwrap();
        });
    });
    g.bench_function("rule7_update_r", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 1_000 + 1;
            m.apply(
                Lsn(20_000),
                &LogOp::Update {
                    table: r_id,
                    key: Key::single(i),
                    old: vec![(1, Value::str("b"))],
                    new: vec![(1, Value::str("b2"))],
                },
            )
            .unwrap();
        });
    });
    g.finish();
}

fn bench_split_rules(c: &mut Criterion) {
    let db = Database::new();
    let ts = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", ts).unwrap();
    let mut m = SplitMapping::prepare(
        &db,
        &SplitSpec::new("T", "R", "S", &["a", "b", "c"], "c", &["d"]),
    )
    .unwrap();
    let t_id = db.catalog().get("T").unwrap().id();
    let mut g = c.benchmark_group("split_rules");
    g.throughput(Throughput::Elements(1));
    g.bench_function("rule8_insert", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            m.apply(
                Lsn(i as u64),
                &LogOp::Insert {
                    table: t_id,
                    row: vec![
                        Value::Int(i),
                        Value::str("b"),
                        Value::Int(i % 500),
                        Value::str("dep"),
                    ],
                },
            )
            .unwrap();
        });
    });
    g.bench_function("rule10_update", |b| {
        let mut i = 0i64;
        let mut lsn = 10_000_000u64;
        b.iter(|| {
            i = (i % 10_000) + 1;
            lsn += 1;
            m.apply(
                Lsn(lsn),
                &LogOp::Update {
                    table: t_id,
                    key: Key::single(i),
                    old: vec![(1, Value::str("b"))],
                    new: vec![(1, Value::str("b2"))],
                },
            )
            .unwrap();
        });
    });
    g.finish();
}

fn bench_population(c: &mut Criterion) {
    let mut g = c.benchmark_group("population");
    g.sample_size(10);
    g.bench_function("foj_initial_population_5k", |b| {
        b.iter_batched(
            || {
                let db = Arc::new(Database::new());
                morph_workload::setup_foj_sources(&db, 5_000, 2_000).unwrap();
                let m = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
                (db, m)
            },
            |(_db, m)| m.populate(1_024).unwrap(),
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_wal, bench_locks, bench_table, bench_foj_rules, bench_split_rules, bench_population
}
criterion_main!(benches);
