//! `wal_append`: the group-commit WAL pipeline, measured two ways.
//!
//! **Part 1 — append-path throughput.** N threads race
//! `LogManager::append` with realistic `Op` records (encode cost
//! included) over a disk model that charges a fixed write latency per
//! record. Serial tees to the backend *inside* its one append mutex,
//! so every append pays the device; group stages the encoded bytes and
//! returns once the LSN is published — the device is paid later, in
//! LSN order, by the drain (timed separately as `drain_ns`). The
//! speedup column is therefore the lock-split payoff itself: backend
//! write latency off the append critical path (and, on multi-core
//! hosts, encode running in parallel on top). The acceptance bar is
//! ≥2× the single-mutex rate at 4+ threads.
//!
//! **Part 2 — end-to-end commit rate.** Closed-loop clients run real
//! transactions against a database whose WAL flushes into a synthetic
//! slow disk. Serial mode pays the disk per committing transaction;
//! group commit elects a leader whose single flush satisfies every
//! parked committer. The fsync economy is measured directly off the
//! manager's flush counter: `fsyncs_per_commit` must come in ≪ 1
//! under concurrent committers.
//!
//! Both disk models *yield* the CPU while their latency elapses —
//! device time is wall-clock, not compute, and a busy-spin would
//! serialize the whole experiment on a single-core host, measuring the
//! spin instead of the pipeline.
//!
//! Writes `BENCH_wal.json` at the repository root and merges the
//! commit-rate series into `BENCH_propagation.json` (series
//! `wal_commit_rate`), plus CSVs under `target/experiments/`.

use morph_bench::{banner, quick, scale, split_client_cfg, Csv};
use morph_common::{DbResult, Key, TableId, TxnId, Value};
use morph_wal::{Backend, GroupCommitConfig, LogManager, LogOp, LogRecord, WalMode};
use morph_workload::{db_with_wal, setup_dummy, setup_split_source, WorkloadRunner};
use std::io::Write;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Wait out a device latency without holding the CPU.
fn device_wait(latency: Duration) {
    let t0 = Instant::now();
    while t0.elapsed() < latency {
        std::thread::yield_now();
    }
}

/// Disk model for Part 1: every record write costs a fixed latency;
/// flush is free (the per-record cost already charged it).
struct PerWriteDisk {
    write_latency: Duration,
    bytes: u64,
}

impl Backend for PerWriteDisk {
    fn append(&mut self, encoded: &[u8]) {
        self.bytes += encoded.len() as u64;
        device_wait(self.write_latency);
    }
    fn flush(&mut self) -> DbResult<()> {
        Ok(())
    }
}

/// Disk model for Part 2: appends land in a buffer for free (the OS
/// page cache), each flush costs a fixed fsync latency.
struct SlowDisk {
    fsync_latency: Duration,
}

impl Backend for SlowDisk {
    fn append(&mut self, _encoded: &[u8]) {}
    fn flush(&mut self) -> DbResult<()> {
        device_wait(self.fsync_latency);
        Ok(())
    }
}

/// A representative forward data record: multi-column update with
/// string images, so encoding has realistic cost.
fn bench_record(i: u64) -> LogRecord {
    LogRecord::Op {
        txn: TxnId(i),
        op: LogOp::Update {
            table: TableId(7),
            key: Key::single(Value::Int(i as i64)),
            old: vec![
                (1, Value::str("payload-before-update")),
                (3, Value::str("dep-before")),
            ],
            new: vec![
                (1, Value::str("payload-after-update!")),
                (3, Value::str("dep-after")),
            ],
        },
    }
}

fn mode_tag(mode: WalMode) -> &'static str {
    match mode {
        WalMode::Serial => "serial",
        WalMode::Group => "group",
    }
}

struct AppendPoint {
    mode: WalMode,
    threads: usize,
    appends: u64,
    ns: u128,
    per_sec: f64,
    /// Time the post-measurement drain+flush took (group mode pays the
    /// per-record device latency here instead of on the append path;
    /// serial has already paid it and this is ~0).
    drain_ns: u128,
}

/// One append-path measurement: `threads` × `per_thread` appends, best
/// of `reps`. The timed region ends when every append has returned
/// (its LSN assigned and published); the ordered drain to the device
/// is timed separately — that is the deferral the lock-split buys.
fn append_point(
    mode: WalMode,
    threads: usize,
    per_thread: u64,
    write_latency: Duration,
    reps: usize,
) -> AppendPoint {
    let mut best: Option<(u128, u128)> = None;
    for _ in 0..reps.max(1) {
        let log = Arc::new(LogManager::with_backend_mode(
            Box::new(PerWriteDisk {
                write_latency,
                bytes: 0,
            }),
            mode,
            GroupCommitConfig::default(),
        ));
        let barrier = Arc::new(Barrier::new(threads + 1));
        let mut handles = Vec::new();
        for t in 0..threads as u64 {
            let log = Arc::clone(&log);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    log.append(bench_record(t * per_thread + i));
                }
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        let ns = t0.elapsed().as_nanos();
        let d0 = Instant::now();
        log.flush().expect("final flush");
        let drain_ns = d0.elapsed().as_nanos();
        if best.is_none_or(|(b, _)| ns < b) {
            best = Some((ns, drain_ns));
        }
    }
    let (ns, drain_ns) = best.expect("reps >= 1");
    let appends = threads as u64 * per_thread;
    AppendPoint {
        mode,
        threads,
        appends,
        ns,
        per_sec: appends as f64 * 1e9 / ns as f64,
        drain_ns,
    }
}

struct CommitPoint {
    mode: WalMode,
    clients: usize,
    commits: u64,
    commits_per_sec: f64,
    fsyncs: u64,
    fsyncs_per_commit: f64,
}

/// One end-to-end point: closed-loop clients over a slow-disk WAL.
fn commit_point(mode: WalMode, clients: usize, fsync_latency: Duration) -> CommitPoint {
    let s = scale();
    // The leader holds the door open for up to one fsync-time so the
    // whole closed loop can board one flush; serial mode ignores this.
    let group = GroupCommitConfig {
        max_batch: clients,
        max_delay: fsync_latency,
    };
    let db = db_with_wal(Box::new(SlowDisk { fsync_latency }), mode, group);
    setup_dummy(&db, s.dummy_rows).expect("dummy");
    setup_split_source(&db, s.split_rows, s.split_values).expect("split source");
    // Unpaced clients: the commit rate should be bound by the disk
    // model (and the WAL's use of it), not by client think time.
    let mut cfg = split_client_cfg(s, 0.0);
    cfg.pacing = None;
    let runner = WorkloadRunner::start(Arc::clone(&db), cfg, clients);
    std::thread::sleep(s.warmup);
    let fsyncs_before = db.log().flush_count();
    let w = runner.measure(s.window);
    let fsyncs = db.log().flush_count() - fsyncs_before;
    runner.stop();
    let commits = w.committed as u64;
    CommitPoint {
        mode,
        clients,
        commits,
        commits_per_sec: w.throughput,
        fsyncs,
        fsyncs_per_commit: if commits > 0 {
            fsyncs as f64 / commits as f64
        } else {
            f64::NAN
        },
    }
}

fn main() {
    banner(
        "wal_append: lock-split append throughput and group-commit fsync economy",
        "Mohan et al. (ARIES group commit); Johnson et al., Aether: A Scalable Approach to Logging",
    );
    let reps = if quick() { 2 } else { 3 };
    let per_thread: u64 = if quick() { 10_000 } else { 50_000 };
    let write_latency = Duration::from_micros(5);
    let fsync_latency = Duration::from_micros(100);

    // ---- part 1: append-path throughput ----
    let mut append_csv = Csv::create(
        "wal_append",
        "mode,threads,appends,ns,appends_per_sec,drain_ns,speedup_vs_serial",
    );
    println!(
        "\n{:>8} {:>8} {:>10} {:>14} {:>14} {:>14} {:>10}",
        "mode", "threads", "appends", "ns", "appends/s", "drain_ns", "vs_serial"
    );
    let mut entries = Vec::new();
    let mut serial_rate: std::collections::HashMap<usize, f64> = Default::default();
    for mode in [WalMode::Serial, WalMode::Group] {
        for threads in [1usize, 2, 4, 8] {
            let p = append_point(mode, threads, per_thread, write_latency, reps);
            if mode == WalMode::Serial {
                serial_rate.insert(threads, p.per_sec);
            }
            let speedup = p.per_sec / serial_rate[&threads];
            println!(
                "{:>8} {:>8} {:>10} {:>14} {:>14.0} {:>14} {:>10.2}",
                mode_tag(p.mode),
                p.threads,
                p.appends,
                p.ns,
                p.per_sec,
                p.drain_ns,
                speedup
            );
            append_csv.row(&format!(
                "{},{},{},{},{:.0},{},{:.2}",
                mode_tag(p.mode),
                p.threads,
                p.appends,
                p.ns,
                p.per_sec,
                p.drain_ns,
                speedup
            ));
            entries.push(format!(
                "    {{ \"series\": \"append\", \"mode\": \"{}\", \"threads\": {}, \"appends\": {}, \"ns\": {}, \"appends_per_sec\": {:.0}, \"drain_ns\": {}, \"speedup_vs_serial\": {:.2} }}",
                mode_tag(p.mode), p.threads, p.appends, p.ns, p.per_sec, p.drain_ns, speedup
            ));
        }
    }

    // ---- part 2: end-to-end commit rate ----
    let mut commit_csv = Csv::create(
        "wal_commit_rate",
        "mode,clients,commits,commits_per_sec,fsyncs,fsyncs_per_commit",
    );
    println!(
        "\n{:>8} {:>8} {:>10} {:>14} {:>10} {:>14}",
        "mode", "clients", "commits", "commits/s", "fsyncs", "fsync/commit"
    );
    let mut commit_entries = Vec::new();
    for mode in [WalMode::Serial, WalMode::Group] {
        for clients in [1usize, 2, 4, 8] {
            let p = commit_point(mode, clients, fsync_latency);
            println!(
                "{:>8} {:>8} {:>10} {:>14.0} {:>10} {:>14.3}",
                mode_tag(p.mode),
                p.clients,
                p.commits,
                p.commits_per_sec,
                p.fsyncs,
                p.fsyncs_per_commit
            );
            commit_csv.row(&format!(
                "{},{},{},{:.0},{},{:.3}",
                mode_tag(p.mode),
                p.clients,
                p.commits,
                p.commits_per_sec,
                p.fsyncs,
                p.fsyncs_per_commit
            ));
            commit_entries.push(format!(
                "    {{ \"series\": \"wal_commit_rate\", \"mode\": \"{}\", \"clients\": {}, \"commits\": {}, \"commits_per_sec\": {:.0}, \"fsyncs\": {}, \"fsyncs_per_commit\": {:.3} }}",
                mode_tag(p.mode), p.clients, p.commits, p.commits_per_sec, p.fsyncs, p.fsyncs_per_commit
            ));
        }
    }

    // ---- BENCH_wal.json ----
    entries.extend(commit_entries.iter().cloned());
    let json = format!(
        "{{\n  \"bench\": \"wal_append\",\n  \"write_latency_us\": {},\n  \"fsync_latency_us\": {},\n  \"series\": [\n{}\n  ]\n}}\n",
        write_latency.as_micros(),
        fsync_latency.as_micros(),
        entries.join(",\n")
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let wal_path = root.join("BENCH_wal.json");
    let mut f = std::fs::File::create(&wal_path).expect("bench json");
    f.write_all(json.as_bytes()).expect("bench json write");
    println!("\n{json}");
    println!("wrote {}", wal_path.display());

    // ---- merge the commit-rate series into BENCH_propagation.json ----
    let prop_path = root.join("BENCH_propagation.json");
    if let Ok(text) = std::fs::read_to_string(&prop_path) {
        let mut lines: Vec<String> = text
            .lines()
            .filter(|l| !l.contains("\"series\": \"wal_commit_rate\""))
            .map(str::to_owned)
            .collect();
        if let Some(close) = lines.iter().rposition(|l| l.trim() == "]") {
            if close > 0 {
                let prev = lines[close - 1].trim_end().trim_end_matches(',').to_owned();
                lines[close - 1] = format!("{prev},");
            }
            let mut block: Vec<String> = commit_entries;
            let n = block.len();
            for (i, line) in block.iter_mut().enumerate() {
                if i + 1 < n {
                    line.push(',');
                }
            }
            lines.splice(close..close, block);
            std::fs::write(&prop_path, lines.join("\n") + "\n").expect("merge propagation json");
            println!("merged wal_commit_rate series into {}", prop_path.display());
        }
    }
    println!(
        "CSVs written to {} and {}",
        append_csv.path.display(),
        commit_csv.path.display()
    );
}
