//! **Figure 2**: the lock compatibility matrix for locks transferred to
//! a transformed table during the non-blocking synchronization
//! strategies. This bench prints the matrix computed by the
//! implementation side by side with the paper's figure and verifies
//! they are identical (the same check runs as a unit test in
//! `morph-txn`).

use morph_txn::origin::compatible;
use morph_txn::{LockMode, LockOrigin};

fn main() {
    use LockMode::{Exclusive as W, Shared as R};
    use LockOrigin::{Native, SourceR, SourceS};

    let labels = ["R.r", "S.r", "T.r", "R.w", "S.w", "T.w"];
    let modes = [
        (SourceR, R),
        (SourceS, R),
        (Native, R),
        (SourceR, W),
        (SourceS, W),
        (Native, W),
    ];
    let paper: [[bool; 6]; 6] = [
        [true, true, true, true, true, false],
        [true, true, true, true, true, false],
        [true, true, true, false, false, false],
        [true, true, false, true, true, false],
        [true, true, false, true, true, false],
        [false, false, false, false, false, false],
    ];

    println!("Figure 2: lock compatibility matrix for transformed table T");
    println!("(y = compatible, n = conflict; R.*, S.* are transferred locks)\n");
    print!("      ");
    for l in labels {
        print!("{l:>5}");
    }
    println!();
    let mut mismatches = 0;
    for (i, a) in modes.iter().enumerate() {
        print!("{:>6}", labels[i]);
        for (j, b) in modes.iter().enumerate() {
            let got = compatible(*a, *b);
            print!("{:>5}", if got { "y" } else { "n" });
            if got != paper[i][j] {
                mismatches += 1;
            }
        }
        println!();
    }
    println!();
    if mismatches == 0 {
        println!("matrix matches the paper's Figure 2 exactly (36/36 entries).");
    } else {
        println!("ERROR: {mismatches} entries deviate from the paper's Figure 2!");
        std::process::exit(1);
    }
}
