//! CI regression gate for the persistent apply pool: a bounded drain
//! sweep (serial vs `apply_shards = 4`, cursor batch 1024) over the
//! update-heavy FOJ and split scenarios shared with the
//! `propagate_batch` bench.
//!
//! On a host with ≥ 2 detected cores the pooled drain must beat the
//! serial pipeline by at least 10 % on *both* operators or the gate
//! exits non-zero. On a single-CPU host real parallel speedup is
//! physically unavailable — the lanes time-slice one core — so the
//! gate records the measurements (merged into `BENCH_propagation.json`
//! as the `pool_gate` series, tagged with the detected core count) and
//! passes: a 1-core number is an overhead reading, not scaling data,
//! and failing on it would just teach people to delete the gate.
//!
//! `MORPH_GATE_REPS` overrides the best-of repetitions (default 3).

use morph_bench::apply_sweep::{apply_sweep_point, detected_cores, ApplyOp, ApplyPoint};

const GATE_SHARDS: usize = 4;
const MIN_SPEEDUP: f64 = 1.10;

fn print_point(p: &ApplyPoint) {
    println!(
        "{:>6} {:>7} {:>9} {:>12} {:>12.0} {:>7} {:>9} {:>7} {:>7}",
        p.operator,
        p.apply_shards,
        p.records,
        p.ns,
        p.records_per_sec,
        p.stats.epochs,
        p.stats.handoffs,
        p.stats.steals,
        p.stats.inline_runs,
    );
}

/// Splice the `pool_gate` entries into `BENCH_propagation.json`,
/// replacing any previous gate results (same idiom as `wal_append`'s
/// commit-rate merge). Inserts a top-level `"cores"` field if the file
/// predates it.
fn merge_into_bench_json(cores: usize, mut block: Vec<String>) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_propagation.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!("no {} to merge into (run the bench first)", path.display());
        return;
    };
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.contains("\"series\": \"pool_gate\""))
        .map(str::to_owned)
        .collect();
    if !lines
        .iter()
        .any(|l| l.trim_start().starts_with("\"cores\""))
    {
        if let Some(i) = lines.iter().position(|l| l.contains("\"bench\"")) {
            lines.insert(i + 1, format!("  \"cores\": {cores},"));
        }
    }
    if let Some(close) = lines.iter().rposition(|l| l.trim() == "]") {
        if close > 0 {
            let prev = lines[close - 1].trim_end().trim_end_matches(',').to_owned();
            lines[close - 1] = format!("{prev},");
        }
        let n = block.len();
        for (i, line) in block.iter_mut().enumerate() {
            if i + 1 < n {
                line.push(',');
            }
        }
        lines.splice(close..close, block);
        std::fs::write(&path, lines.join("\n") + "\n").expect("merge propagation json");
        println!("merged pool_gate series into {}", path.display());
    }
}

fn main() {
    let cores = detected_cores();
    let reps = std::env::var("MORPH_GATE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);
    println!("bench_check: persistent-pool apply gate (cores={cores}, best of {reps} reps)");
    println!(
        "{:>6} {:>7} {:>9} {:>12} {:>12} {:>7} {:>9} {:>7} {:>7}",
        "op", "shards", "records", "ns", "records/s", "epochs", "handoffs", "steals", "inline"
    );

    let mut entries: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for op in [ApplyOp::Foj, ApplyOp::Split] {
        let serial = apply_sweep_point(op, 1, reps);
        let pooled = apply_sweep_point(op, GATE_SHARDS, reps);
        print_point(&serial);
        print_point(&pooled);
        let speedup = pooled.records_per_sec / serial.records_per_sec;
        println!(
            "{:>6} speedup shards={GATE_SHARDS} vs serial: {speedup:.2}x",
            op.name()
        );
        entries.push(format!(
            "    {{ \"series\": \"pool_gate\", \"operator\": \"{}\", \"cores\": {}, \"apply_shards\": {}, \"serial_records_per_sec\": {:.0}, \"pool_records_per_sec\": {:.0}, \"speedup\": {:.3}, \"epochs\": {}, \"handoffs\": {}, \"steals\": {}, \"inline_runs\": {} }}",
            op.name(),
            cores,
            GATE_SHARDS,
            serial.records_per_sec,
            pooled.records_per_sec,
            speedup,
            pooled.stats.epochs,
            pooled.stats.handoffs,
            pooled.stats.steals,
            pooled.stats.inline_runs,
        ));
        if speedup < MIN_SPEEDUP {
            failures.push(format!(
                "{}: shards={GATE_SHARDS} is {speedup:.2}x serial (need ≥ {MIN_SPEEDUP:.2}x)",
                op.name()
            ));
        }
    }

    merge_into_bench_json(cores, entries);

    if cores < 2 {
        println!(
            "single CPU detected: the ≥{:.0}% multi-core speedup gate is not \
             enforceable here — results recorded with cores={cores}, gate passes",
            (MIN_SPEEDUP - 1.0) * 100.0
        );
        return;
    }
    if failures.is_empty() {
        println!(
            "pool gate OK: shards={GATE_SHARDS} beats serial by ≥{:.0}% on both operators",
            (MIN_SPEEDUP - 1.0) * 100.0
        );
    } else {
        for f in &failures {
            eprintln!("pool gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}
