//! CI regression gates merged into `BENCH_propagation.json`:
//!
//! 1. **`pool_gate`** — persistent apply pool: a bounded drain sweep
//!    (serial vs `apply_shards = 4`, cursor batch 1024) over the
//!    update-heavy FOJ and split scenarios shared with the
//!    `propagate_batch` bench. On ≥ 2 detected cores the pooled drain
//!    must beat the serial pipeline by at least 10 % on both operators.
//! 2. **`reader_gate`** — MVCC snapshot reads: p50/p99 latency of
//!    lock-based point reads versus snapshot reads, interleaved on the
//!    same database while a snapshot-mode split migration and four
//!    writer threads run. Snapshot reads take no transaction locks and
//!    never touch the WAL, so on ≥ 2 cores their p99 must be at least
//!    2× better than the locked reader's or the gate fails.
//! 3. **`transform_mode`** — recorded ablation (never gated): the same
//!    split migration under writer traffic, once populated by the
//!    fuzzy copy + log propagation and once by a clean MVCC snapshot
//!    scan, with population duration and propagation volume per mode.
//! 4. **`shard_gate`** — shared-nothing router: aggregate commit
//!    throughput (8 closed-loop clients through the router) and
//!    aggregate migration throughput (one union fanned out as
//!    per-shard jobs) at 1, 2, 4 and 8 shards, with the aggregated
//!    [`ShardCounters`] per point. On ≥ 4 cores the 4-shard commit
//!    rate must be ≥ 1.8× the 1-shard rate.
//! 5. **`lazy_tail`** — SLSM-style lazy mode: hot-shard p50/p99
//!    read/write latency mid-migration, eager §3 pipeline vs lazy
//!    cutover + throttled backfill. On ≥ 4 cores the lazy p99 must
//!    beat the eager p99 on both reads and writes.
//!
//! On a single-CPU host the comparative gates are physically
//! unenforceable — lanes, shards and readers time-slice one core — so
//! the measurements are recorded (tagged with the detected core count)
//! and the gates pass: a 1-core number is an overhead reading, not
//! scaling data, and failing on it would just teach people to delete
//! the gate.
//!
//! `MORPH_GATE_REPS` overrides the best-of repetitions (default 3).

use morph_bench::apply_sweep::{apply_sweep_point, detected_cores, ApplyOp, ApplyPoint};
use morph_bench::{bench_split_spec, quick};
use morph_common::{ColumnType, Key, Schema, Value};
use morph_core::{ParallelConfig, TransformMode, TransformOptions, Transformer};
use morph_engine::{Database, ShardedDatabase};
use morph_orchestrator::{start_lazy_sharded, submit_sharded, Migration};
use morph_workload::{setup_split_source, spawn_updaters, UpdateTarget};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GATE_SHARDS: usize = 4;
const MIN_SPEEDUP: f64 = 1.10;
/// The snapshot reader's p99 must be at least this many times better
/// than the lock-based reader's.
const MIN_READER_P99_RATIO: f64 = 2.0;
/// Router clients driving the shard sweep.
const SHARD_CLIENTS: usize = 8;
/// Aggregate commit rate at 4 shards must beat 1 shard by this factor
/// (enforced on ≥ 4 cores only).
const SHARD_MIN_SPEEDUP: f64 = 1.8;

/// Every series this binary owns inside `BENCH_propagation.json`
/// (previous results are stripped before the fresh block is spliced).
const MERGED_SERIES: [&str; 5] = [
    "pool_gate",
    "reader_gate",
    "transform_mode",
    "shard_gate",
    "lazy_tail",
];

fn print_point(p: &ApplyPoint) {
    println!(
        "{:>6} {:>7} {:>9} {:>12} {:>12.0} {:>7} {:>9} {:>7} {:>7}",
        p.operator,
        p.apply_shards,
        p.records,
        p.ns,
        p.records_per_sec,
        p.stats.epochs,
        p.stats.handoffs,
        p.stats.steals,
        p.stats.inline_runs,
    );
}

/// Splice this binary's series into `BENCH_propagation.json`,
/// replacing any previous results (same idiom as `wal_append`'s
/// commit-rate merge). Inserts a top-level `"cores"` field if the file
/// predates it.
fn merge_into_bench_json(cores: usize, mut block: Vec<String>) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_propagation.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!("no {} to merge into (run the bench first)", path.display());
        return;
    };
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| {
            !MERGED_SERIES
                .iter()
                .any(|s| l.contains(&format!("\"series\": \"{s}\"")))
        })
        .map(str::to_owned)
        .collect();
    if !lines
        .iter()
        .any(|l| l.trim_start().starts_with("\"cores\""))
    {
        if let Some(i) = lines.iter().position(|l| l.contains("\"bench\"")) {
            lines.insert(i + 1, format!("  \"cores\": {cores},"));
        }
    }
    if let Some(close) = lines.iter().rposition(|l| l.trim() == "]") {
        if close > 0 {
            let prev = lines[close - 1].trim_end().trim_end_matches(',').to_owned();
            lines[close - 1] = format!("{prev},");
        }
        let n = block.len();
        for (i, line) in block.iter_mut().enumerate() {
            if i + 1 < n {
                line.push(',');
            }
        }
        lines.splice(close..close, block);
        std::fs::write(&path, lines.join("\n") + "\n").expect("merge propagation json");
        println!("merged {:?} series into {}", MERGED_SERIES, path.display());
    }
}

// --- reader gate -------------------------------------------------------------

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

struct ReaderGate {
    lock_p50_us: f64,
    lock_p99_us: f64,
    snap_p50_us: f64,
    snap_p99_us: f64,
    reads_per_mode: usize,
    migration_rounds: usize,
    writer_commits: u64,
}

/// Options every migration in this binary runs under: sources kept (the
/// readers and writers need them), generous deadline.
fn migration_options(mode: TransformMode) -> TransformOptions {
    TransformOptions::default()
        .retain_sources()
        .deadline(Duration::from_secs(120))
        .transform_mode(mode)
}

/// Interleave lock-based and snapshot point reads on one database while
/// a snapshot-mode split migration loops and four writers update the
/// source. Interleaving (rather than two sequential batches) makes both
/// sides see the same traffic mix, so the ratio is drift-free.
fn reader_gate() -> ReaderGate {
    let rows: i64 = if quick() { 2_000 } else { 10_000 };
    let reads: usize = if quick() { 300 } else { 1_500 };
    let db = Arc::new(Database::new());
    setup_split_source(&db, rows as usize, rows as usize / 5).expect("split source");
    db.enable_mvcc();

    let pool = spawn_updaters(
        &db,
        vec![UpdateTarget::new("T", rows, 1)],
        4,
        Duration::from_micros(50),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mig = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let spec = bench_split_spec(
                    &format!("__rg{rounds}_r"),
                    &format!("__rg{rounds}_s"),
                    false,
                );
                Transformer::run_split(&db, spec, migration_options(TransformMode::Snapshot))
                    .expect("reader-gate migration");
                let _ = db.catalog().drop_table(&format!("__rg{rounds}_r"));
                let _ = db.catalog().drop_table(&format!("__rg{rounds}_s"));
                rounds += 1;
            }
            rounds
        })
    };
    // Let the first migration get in flight before measuring.
    std::thread::sleep(Duration::from_millis(100));

    let mut lock_ns = Vec::with_capacity(reads);
    let mut snap_ns = Vec::with_capacity(reads);
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..reads {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = morph_common::Key::single(((x >> 33) as i64).rem_euclid(rows));

        // Lock-based: a complete read-only transaction — begin, IS +
        // S-lock read, commit through the WAL. Lock conflicts (wait-die
        // aborts, frozen source during sync) are real reader-visible
        // latency, so errors still count.
        let t0 = Instant::now();
        let txn = db.begin();
        let read = db.read(txn, "T", &key);
        let _ = if read.is_ok() {
            db.commit(txn)
        } else {
            db.abort(txn)
        };
        lock_ns.push(t0.elapsed().as_nanos() as u64);

        // Snapshot: timestamp, versioned read, release. No locks, no WAL.
        let t0 = Instant::now();
        let snap = db.begin_snapshot().expect("snapshot");
        let _ = db.snapshot_read(&snap, "T", &key).expect("snapshot read");
        drop(snap);
        snap_ns.push(t0.elapsed().as_nanos() as u64);
    }

    stop.store(true, Ordering::Relaxed);
    let migration_rounds = mig.join().expect("migration loop");
    let writer_commits = pool.stop();
    lock_ns.sort_unstable();
    snap_ns.sort_unstable();
    ReaderGate {
        lock_p50_us: percentile_us(&lock_ns, 0.50),
        lock_p99_us: percentile_us(&lock_ns, 0.99),
        snap_p50_us: percentile_us(&snap_ns, 0.50),
        snap_p99_us: percentile_us(&snap_ns, 0.99),
        reads_per_mode: reads,
        migration_rounds,
        writer_commits,
    }
}

// --- transform-mode ablation -------------------------------------------------

/// One split migration under writer traffic per population mode, on
/// identical fresh databases. Recorded, never gated: the two modes make
/// different trade-offs (fuzzy copy needs no version chains; snapshot
/// scan reads a consistent cut but pays MVCC bookkeeping on writers).
fn mode_ablation(entries: &mut Vec<String>) {
    let rows: usize = if quick() { 4_000 } else { 20_000 };
    for (mode, tag) in [
        (TransformMode::LogPropagation, "log_propagation"),
        (TransformMode::Snapshot, "snapshot"),
    ] {
        let db = Arc::new(Database::new());
        setup_split_source(&db, rows, rows / 5).expect("split source");
        let pool = spawn_updaters(
            &db,
            vec![UpdateTarget::new("T", rows as i64, 1)],
            2,
            Duration::from_micros(100),
        );
        let t0 = Instant::now();
        let report = Transformer::run_split(
            &db,
            bench_split_spec("__ab_r", "__ab_s", false),
            migration_options(mode),
        )
        .expect("ablation migration");
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        let commits = pool.stop();
        let propagated: usize = report.iterations.iter().map(|i| i.records).sum();
        println!(
            "{tag:>16}: total {total_ms:.1} ms, populate {:.1} ms ({} rows), \
             {} iterations / {propagated} records propagated, latch pause {:?}, \
             {commits} writer commits",
            report.population.duration.as_secs_f64() * 1e3,
            report.population.rows_read,
            report.iterations.len(),
            report.sync.latch_pause,
        );
        entries.push(format!(
            "    {{ \"series\": \"transform_mode\", \"operator\": \"split\", \"mode\": \"{tag}\", \"rows\": {rows}, \"total_ms\": {total_ms:.1}, \"populate_ms\": {:.1}, \"rows_read\": {}, \"iterations\": {}, \"records_propagated\": {propagated}, \"latch_pause_us\": {}, \"writer_commits\": {commits} }}",
            report.population.duration.as_secs_f64() * 1e3,
            report.population.rows_read,
            report.iterations.len(),
            report.sync.latch_pause.as_micros(),
        ));
        let _ = db.catalog().drop_table("__ab_r");
        let _ = db.catalog().drop_table("__ab_s");
    }
}

// --- shard gate --------------------------------------------------------------

fn union_source_schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .column("v", ColumnType::Int)
        .primary_key(&["id"])
        .build()
        .expect("union source schema")
}

/// Router over `shards` engines with both union sources seeded through
/// the routed insert path.
fn seeded_router(shards: usize, rows: i64) -> Arc<ShardedDatabase> {
    let sdb = Arc::new(ShardedDatabase::new(shards));
    for name in ["r", "s"] {
        sdb.create_table(name, union_source_schema())
            .expect("create source");
    }
    for i in 0..rows {
        sdb.insert("r", vec![Value::Int(i), Value::Int(i)])
            .expect("seed r");
        sdb.insert("s", vec![Value::Int(i), Value::Int(i)])
            .expect("seed s");
    }
    sdb
}

struct ShardPoint {
    shards: usize,
    commit_rate: f64,
    propagate_rate: f64,
    migrated_records: usize,
    counters: morph_engine::ShardCounters,
}

/// One point of the shard sweep: closed-loop commit throughput through
/// the router, then one migration fanned out over every shard.
fn shard_gate_point(shards: usize) -> ShardPoint {
    let rows: i64 = if quick() { 1_500 } else { 6_000 };
    let ops: usize = if quick() { 200 } else { 800 };
    let sdb = seeded_router(shards, rows);

    // Wait–die can victimize a client that collides on a hot key;
    // that's an abort, not a harness failure — only successful commits
    // count toward the rate.
    let committed = std::sync::atomic::AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..SHARD_CLIENTS {
            let sdb = Arc::clone(&sdb);
            let committed = &committed;
            scope.spawn(move || {
                for j in 0..ops {
                    let id = ((c * ops + j) as i64).wrapping_mul(7) % rows;
                    if sdb
                        .update("r", &Key::single(id), &[(1, Value::Int(j as i64))])
                        .is_ok()
                    {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let commit_rate = committed.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let (_orchs, mig) = submit_sharded(
        &sdb,
        &Migration::union("r", "s", "u").build(),
        &TransformOptions::default()
            .retain_sources()
            .deadline(Duration::from_secs(120)),
    )
    .expect("sharded submit");
    let reports = mig.join().expect("sharded migration");
    let prop_elapsed = t1.elapsed().as_secs_f64();
    let migrated_records: usize = reports
        .iter()
        .flatten()
        .map(|r| {
            r.population.rows_read
                + r.iterations.iter().map(|i| i.records).sum::<usize>()
                + r.post_records
        })
        .sum();
    ShardPoint {
        shards,
        commit_rate,
        propagate_rate: migrated_records as f64 / prop_elapsed,
        migrated_records,
        counters: sdb.counters(),
    }
}

fn shard_gate(entries: &mut Vec<String>, failures: &mut Vec<String>, cores: usize) {
    let mut base_rate = 0.0f64;
    let mut rate_at_4 = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let p = shard_gate_point(shards);
        let t = &p.counters.total;
        println!(
            "  shards={:>2}: {:>9.0} commits/s aggregate, {:>9.0} migrated records/s \
             ({} records; wal_flushes {}, steals {}, mvcc_reclaimed {}, lock_waits {})",
            p.shards,
            p.commit_rate,
            p.propagate_rate,
            p.migrated_records,
            t.wal_flushes,
            t.steals,
            t.mvcc_reclaimed,
            t.lock_waits,
        );
        if p.shards == 1 {
            base_rate = p.commit_rate;
        }
        if p.shards == 4 {
            rate_at_4 = p.commit_rate;
        }
        let per_shard_flushes: Vec<u64> =
            p.counters.per_shard.iter().map(|s| s.wal_flushes).collect();
        entries.push(format!(
            "    {{ \"series\": \"shard_gate\", \"shards\": {}, \"clients\": {SHARD_CLIENTS}, \"commit_rate\": {:.0}, \"propagate_rate\": {:.0}, \"migrated_records\": {}, \"wal_flushes\": {}, \"wal_flushes_per_shard\": {per_shard_flushes:?}, \"steals\": {}, \"mvcc_reclaimed\": {}, \"lock_waits\": {}, \"commits\": {} }}",
            p.shards, p.commit_rate, p.propagate_rate, p.migrated_records,
            t.wal_flushes, t.steals, t.mvcc_reclaimed, t.lock_waits, t.commits,
        ));
    }
    let speedup = if base_rate > 0.0 {
        rate_at_4 / base_rate
    } else {
        0.0
    };
    println!("  shard speedup 4 vs 1: {speedup:.2}x");
    if cores < 4 {
        println!("  shard_gate: SKIPPED (cores={cores} < 4) — speedup recorded, not enforced");
    } else if speedup < SHARD_MIN_SPEEDUP {
        failures.push(format!(
            "shard: 4 shards is {speedup:.2}x the 1-shard commit rate (need ≥ {SHARD_MIN_SPEEDUP:.1}x)"
        ));
    }
}

// --- lazy tail ---------------------------------------------------------------

/// Gap between latency samples. Pacing stretches the sampling loop
/// over a wall-clock window wide enough to overlap the background
/// migration/backfill; the sleep sits outside the timed sections so
/// it never contaminates the percentiles.
const TAIL_PACE: Duration = Duration::from_micros(100);

/// Duty cycle shared by the eager migration and the lazy backfill so
/// the two modes chase the same background budget while we sample.
const TAIL_PRIORITY: f64 = 0.05;

struct TailPoint {
    read_p50_us: f64,
    read_p99_us: f64,
    write_p50_us: f64,
    write_p99_us: f64,
    samples: usize,
    mid_migration: usize,
}

fn tail_of(mut read_ns: Vec<u64>, mut write_ns: Vec<u64>, mid: usize) -> TailPoint {
    read_ns.sort_unstable();
    write_ns.sort_unstable();
    TailPoint {
        read_p50_us: percentile_us(&read_ns, 0.50),
        read_p99_us: percentile_us(&read_ns, 0.99),
        write_p50_us: percentile_us(&write_ns, 0.50),
        write_p99_us: percentile_us(&write_ns, 0.99),
        samples: read_ns.len(),
        mid_migration: mid,
    }
}

/// Ids owned by the hot shard (shard 0) — the sampled key set for both
/// modes, identical because routing is a pure key hash.
fn hot_ids(sdb: &ShardedDatabase, rows: i64) -> Vec<i64> {
    (0..rows)
        .filter(|&i| {
            sdb.shard_of_key("r", &Key::single(i))
                .expect("route source key")
                == 0
        })
        .collect()
}

/// Hot-shard read/write latency while the **eager** §3 pipeline
/// migrates every shard: clients keep using the sources until cutover.
/// Mid-migration errors (wait–die, doomed transactions at sync) are
/// real client-visible latency, so they count like successes.
fn lazy_tail_eager(rows: i64, samples: usize) -> TailPoint {
    let sdb = seeded_router(2, rows);
    let ids = hot_ids(&sdb, rows);
    let done = Arc::new(AtomicBool::new(false));
    let mig = {
        let sdb = Arc::clone(&sdb);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let (_orchs, mig) = submit_sharded(
                &sdb,
                &Migration::union("r", "s", "u").build(),
                &TransformOptions::default()
                    .retain_sources()
                    // Low duty cycle + parallel copy: the serial populate
                    // path ignores the throttle, so two copy workers are
                    // needed for the priority to stretch the migration
                    // past the sampling window.
                    .priority(TAIL_PRIORITY)
                    .parallel(ParallelConfig::new(2, 1))
                    .deadline(Duration::from_secs(120)),
            )
            .expect("eager submit");
            mig.join().expect("eager migration");
            done.store(true, Ordering::Relaxed);
        })
    };
    std::thread::sleep(Duration::from_millis(5));

    let mut read_ns = Vec::with_capacity(samples);
    let mut write_ns = Vec::with_capacity(samples);
    let mut mid = 0usize;
    for s in 0..samples {
        let id = ids[s % ids.len()];
        let key = Key::single(id);
        if !done.load(Ordering::Relaxed) {
            mid += 1;
        }
        let t0 = Instant::now();
        let _ = sdb.read("r", &key);
        read_ns.push(t0.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        let _ = sdb.update("r", &key, &[(1, Value::Int(s as i64))]);
        write_ns.push(t0.elapsed().as_nanos() as u64);
        std::thread::sleep(TAIL_PACE);
    }
    mig.join().expect("migration thread");
    tail_of(read_ns, write_ns, mid)
}

/// Hot-shard read/write latency in **lazy** mode: catalog already cut
/// over, clients address the target immediately, the first touch of a
/// record transforms it, and a throttled backfill drains the rest in
/// the background at the same duty cycle the eager run migrates with.
fn lazy_tail_lazy(rows: i64, samples: usize) -> TailPoint {
    let sdb = seeded_router(2, rows);
    let ids = hot_ids(&sdb, rows);
    // Target keys prepend the provenance tag: route them by suffix so
    // they land on the source row's shard.
    sdb.route_key_suffix("u", 1);
    let mig = Arc::new(
        start_lazy_sharded(&sdb, &Migration::union("r", "s", "u").build()).expect("lazy start"),
    );
    let drained = Arc::new(AtomicBool::new(false));
    let backfill = {
        let mig = Arc::clone(&mig);
        let drained = Arc::clone(&drained);
        std::thread::spawn(move || {
            while !mig.is_drained() {
                mig.backfill_round(64, TAIL_PRIORITY).expect("backfill");
            }
            drained.store(true, Ordering::Relaxed);
        })
    };

    let mut read_ns = Vec::with_capacity(samples);
    let mut write_ns = Vec::with_capacity(samples);
    let mut mid = 0usize;
    for s in 0..samples {
        let id = ids[s % ids.len()];
        let key = Key::new([Value::str("r"), Value::Int(id)]);
        if !drained.load(Ordering::Relaxed) {
            mid += 1;
        }
        let t0 = Instant::now();
        let _ = sdb.read("u", &key);
        read_ns.push(t0.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        let _ = sdb.update("u", &key, &[(2, Value::Int(s as i64))]);
        write_ns.push(t0.elapsed().as_nanos() as u64);
        std::thread::sleep(TAIL_PACE);
    }
    backfill.join().expect("backfill thread");
    mig.finish().expect("lazy finish");
    tail_of(read_ns, write_ns, mid)
}

fn lazy_tail(entries: &mut Vec<String>, failures: &mut Vec<String>, cores: usize) {
    let rows: i64 = if quick() { 2_000 } else { 10_000 };
    let samples: usize = if quick() { 300 } else { 1_200 };
    let eager = lazy_tail_eager(rows, samples);
    let lazy = lazy_tail_lazy(rows, samples);
    for (tag, p) in [("eager", &eager), ("lazy", &lazy)] {
        println!(
            "  {tag:>5}: read p50 {:.1} µs p99 {:.1} µs | write p50 {:.1} µs p99 {:.1} µs \
             ({} samples, {} mid-migration)",
            p.read_p50_us,
            p.read_p99_us,
            p.write_p50_us,
            p.write_p99_us,
            p.samples,
            p.mid_migration,
        );
        entries.push(format!(
            "    {{ \"series\": \"lazy_tail\", \"mode\": \"{tag}\", \"rows\": {rows}, \"read_p50_us\": {:.1}, \"read_p99_us\": {:.1}, \"write_p50_us\": {:.1}, \"write_p99_us\": {:.1}, \"samples\": {}, \"mid_migration\": {} }}",
            p.read_p50_us, p.read_p99_us, p.write_p50_us, p.write_p99_us,
            p.samples, p.mid_migration,
        ));
    }
    if cores < 4 {
        println!("  lazy_tail: SKIPPED (cores={cores} < 4) — percentiles recorded, not enforced");
    } else if lazy.read_p99_us >= eager.read_p99_us || lazy.write_p99_us >= eager.write_p99_us {
        failures.push(format!(
            "lazy tail: lazy p99 (read {:.1} µs, write {:.1} µs) does not beat eager \
             (read {:.1} µs, write {:.1} µs)",
            lazy.read_p99_us, lazy.write_p99_us, eager.read_p99_us, eager.write_p99_us,
        ));
    }
}

fn main() {
    let cores = detected_cores();
    // Regression guard for the default core-count clamp: an absurd
    // shard request must come back bounded by the host (the explicit
    // `exact()` escape hatch is what width sweeps use).
    let clamped = ParallelConfig::new(1, 64).effective_apply_shards();
    assert!(
        clamped <= cores.max(1),
        "effective_apply_shards must clamp to available_parallelism ({clamped} > {cores})"
    );
    assert_eq!(
        ParallelConfig::new(1, 64).exact().effective_apply_shards(),
        64,
        "exact() must bypass the clamp"
    );
    let reps = std::env::var("MORPH_GATE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);
    println!("bench_check: apply-pool + MVCC reader gates (cores={cores}, best of {reps} reps)");
    println!(
        "{:>6} {:>7} {:>9} {:>12} {:>12} {:>7} {:>9} {:>7} {:>7}",
        "op", "shards", "records", "ns", "records/s", "epochs", "handoffs", "steals", "inline"
    );

    let mut entries: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for op in [ApplyOp::Foj, ApplyOp::Split] {
        let serial = apply_sweep_point(op, 1, reps);
        let pooled = apply_sweep_point(op, GATE_SHARDS, reps);
        print_point(&serial);
        print_point(&pooled);
        let speedup = pooled.records_per_sec / serial.records_per_sec;
        println!(
            "{:>6} speedup shards={GATE_SHARDS} vs serial: {speedup:.2}x",
            op.name()
        );
        entries.push(format!(
            "    {{ \"series\": \"pool_gate\", \"operator\": \"{}\", \"cores\": {}, \"apply_shards\": {}, \"serial_records_per_sec\": {:.0}, \"pool_records_per_sec\": {:.0}, \"speedup\": {:.3}, \"epochs\": {}, \"handoffs\": {}, \"steals\": {}, \"inline_runs\": {} }}",
            op.name(),
            cores,
            GATE_SHARDS,
            serial.records_per_sec,
            pooled.records_per_sec,
            speedup,
            pooled.stats.epochs,
            pooled.stats.handoffs,
            pooled.stats.steals,
            pooled.stats.inline_runs,
        ));
        if speedup < MIN_SPEEDUP {
            failures.push(format!(
                "{}: shards={GATE_SHARDS} is {speedup:.2}x serial (need ≥ {MIN_SPEEDUP:.2}x)",
                op.name()
            ));
        }
    }

    println!("reader gate: lock-based vs snapshot point reads during migration + 4 writers");
    let rg = reader_gate();
    let ratio = if rg.snap_p99_us > 0.0 {
        rg.lock_p99_us / rg.snap_p99_us
    } else {
        f64::INFINITY
    };
    println!(
        "  lock-based: p50 {:.1} µs, p99 {:.1} µs | snapshot: p50 {:.1} µs, p99 {:.1} µs \
         | p99 ratio {ratio:.2}x ({} reads/mode, {} migration rounds, {} writer commits)",
        rg.lock_p50_us,
        rg.lock_p99_us,
        rg.snap_p50_us,
        rg.snap_p99_us,
        rg.reads_per_mode,
        rg.migration_rounds,
        rg.writer_commits,
    );
    entries.push(format!(
        "    {{ \"series\": \"reader_gate\", \"cores\": {cores}, \"lock_p50_us\": {:.1}, \"lock_p99_us\": {:.1}, \"snapshot_p50_us\": {:.1}, \"snapshot_p99_us\": {:.1}, \"p99_ratio\": {ratio:.2}, \"reads_per_mode\": {}, \"migration_rounds\": {}, \"writer_commits\": {} }}",
        rg.lock_p50_us,
        rg.lock_p99_us,
        rg.snap_p50_us,
        rg.snap_p99_us,
        rg.reads_per_mode,
        rg.migration_rounds,
        rg.writer_commits,
    ));
    if ratio < MIN_READER_P99_RATIO {
        failures.push(format!(
            "reader: snapshot p99 {:.1} µs is only {ratio:.2}x better than lock-based {:.1} µs \
             (need ≥ {MIN_READER_P99_RATIO:.1}x)",
            rg.snap_p99_us, rg.lock_p99_us
        ));
    }

    println!("transform-mode ablation: fuzzy copy vs snapshot scan population (recorded)");
    mode_ablation(&mut entries);

    println!("shard gate: {SHARD_CLIENTS} router clients + fanned-out migration, shards 1/2/4/8");
    shard_gate(&mut entries, &mut failures, cores);

    println!("lazy tail: hot-shard read/write latency mid-migration, eager vs lazy");
    lazy_tail(&mut entries, &mut failures, cores);

    merge_into_bench_json(cores, entries);

    if cores < 2 {
        println!(
            "  pool_gate: SKIPPED (cores={cores} < 2) — ≥{:.0}% speedup recorded, not enforced",
            (MIN_SPEEDUP - 1.0) * 100.0
        );
        println!(
            "  reader_gate: SKIPPED (cores={cores} < 2) — p99 ≥{MIN_READER_P99_RATIO:.1}x \
             ratio recorded, not enforced"
        );
        return;
    }
    if failures.is_empty() {
        println!(
            "gates OK: shards={GATE_SHARDS} beats serial by ≥{:.0}% on both operators and \
             snapshot reads beat locked reads by ≥{MIN_READER_P99_RATIO:.1}x at p99",
            (MIN_SPEEDUP - 1.0) * 100.0
        );
    } else {
        for f in &failures {
            eprintln!("bench gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}
