//! CI regression gates merged into `BENCH_propagation.json`:
//!
//! 1. **`pool_gate`** — persistent apply pool: a bounded drain sweep
//!    (serial vs `apply_shards = 4`, cursor batch 1024) over the
//!    update-heavy FOJ and split scenarios shared with the
//!    `propagate_batch` bench. On ≥ 2 detected cores the pooled drain
//!    must beat the serial pipeline by at least 10 % on both operators.
//! 2. **`reader_gate`** — MVCC snapshot reads: p50/p99 latency of
//!    lock-based point reads versus snapshot reads, interleaved on the
//!    same database while a snapshot-mode split migration and four
//!    writer threads run. Snapshot reads take no transaction locks and
//!    never touch the WAL, so on ≥ 2 cores their p99 must be at least
//!    2× better than the locked reader's or the gate fails.
//! 3. **`transform_mode`** — recorded ablation (never gated): the same
//!    split migration under writer traffic, once populated by the
//!    fuzzy copy + log propagation and once by a clean MVCC snapshot
//!    scan, with population duration and propagation volume per mode.
//!
//! On a single-CPU host the comparative gates are physically
//! unenforceable — lanes and readers time-slice one core — so the
//! measurements are recorded (tagged with the detected core count) and
//! the gates pass: a 1-core number is an overhead reading, not scaling
//! data, and failing on it would just teach people to delete the gate.
//!
//! `MORPH_GATE_REPS` overrides the best-of repetitions (default 3).

use morph_bench::apply_sweep::{apply_sweep_point, detected_cores, ApplyOp, ApplyPoint};
use morph_bench::{bench_split_spec, quick};
use morph_core::{TransformMode, TransformOptions, Transformer};
use morph_engine::Database;
use morph_workload::{setup_split_source, spawn_updaters, UpdateTarget};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GATE_SHARDS: usize = 4;
const MIN_SPEEDUP: f64 = 1.10;
/// The snapshot reader's p99 must be at least this many times better
/// than the lock-based reader's.
const MIN_READER_P99_RATIO: f64 = 2.0;

/// Every series this binary owns inside `BENCH_propagation.json`
/// (previous results are stripped before the fresh block is spliced).
const MERGED_SERIES: [&str; 3] = ["pool_gate", "reader_gate", "transform_mode"];

fn print_point(p: &ApplyPoint) {
    println!(
        "{:>6} {:>7} {:>9} {:>12} {:>12.0} {:>7} {:>9} {:>7} {:>7}",
        p.operator,
        p.apply_shards,
        p.records,
        p.ns,
        p.records_per_sec,
        p.stats.epochs,
        p.stats.handoffs,
        p.stats.steals,
        p.stats.inline_runs,
    );
}

/// Splice this binary's series into `BENCH_propagation.json`,
/// replacing any previous results (same idiom as `wal_append`'s
/// commit-rate merge). Inserts a top-level `"cores"` field if the file
/// predates it.
fn merge_into_bench_json(cores: usize, mut block: Vec<String>) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_propagation.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!("no {} to merge into (run the bench first)", path.display());
        return;
    };
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| {
            !MERGED_SERIES
                .iter()
                .any(|s| l.contains(&format!("\"series\": \"{s}\"")))
        })
        .map(str::to_owned)
        .collect();
    if !lines
        .iter()
        .any(|l| l.trim_start().starts_with("\"cores\""))
    {
        if let Some(i) = lines.iter().position(|l| l.contains("\"bench\"")) {
            lines.insert(i + 1, format!("  \"cores\": {cores},"));
        }
    }
    if let Some(close) = lines.iter().rposition(|l| l.trim() == "]") {
        if close > 0 {
            let prev = lines[close - 1].trim_end().trim_end_matches(',').to_owned();
            lines[close - 1] = format!("{prev},");
        }
        let n = block.len();
        for (i, line) in block.iter_mut().enumerate() {
            if i + 1 < n {
                line.push(',');
            }
        }
        lines.splice(close..close, block);
        std::fs::write(&path, lines.join("\n") + "\n").expect("merge propagation json");
        println!("merged {:?} series into {}", MERGED_SERIES, path.display());
    }
}

// --- reader gate -------------------------------------------------------------

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

struct ReaderGate {
    lock_p50_us: f64,
    lock_p99_us: f64,
    snap_p50_us: f64,
    snap_p99_us: f64,
    reads_per_mode: usize,
    migration_rounds: usize,
    writer_commits: u64,
}

/// Options every migration in this binary runs under: sources kept (the
/// readers and writers need them), generous deadline.
fn migration_options(mode: TransformMode) -> TransformOptions {
    TransformOptions::default()
        .retain_sources()
        .deadline(Duration::from_secs(120))
        .transform_mode(mode)
}

/// Interleave lock-based and snapshot point reads on one database while
/// a snapshot-mode split migration loops and four writers update the
/// source. Interleaving (rather than two sequential batches) makes both
/// sides see the same traffic mix, so the ratio is drift-free.
fn reader_gate() -> ReaderGate {
    let rows: i64 = if quick() { 2_000 } else { 10_000 };
    let reads: usize = if quick() { 300 } else { 1_500 };
    let db = Arc::new(Database::new());
    setup_split_source(&db, rows as usize, rows as usize / 5).expect("split source");
    db.enable_mvcc();

    let pool = spawn_updaters(
        &db,
        vec![UpdateTarget::new("T", rows, 1)],
        4,
        Duration::from_micros(50),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mig = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rounds = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let spec = bench_split_spec(
                    &format!("__rg{rounds}_r"),
                    &format!("__rg{rounds}_s"),
                    false,
                );
                Transformer::run_split(&db, spec, migration_options(TransformMode::Snapshot))
                    .expect("reader-gate migration");
                let _ = db.catalog().drop_table(&format!("__rg{rounds}_r"));
                let _ = db.catalog().drop_table(&format!("__rg{rounds}_s"));
                rounds += 1;
            }
            rounds
        })
    };
    // Let the first migration get in flight before measuring.
    std::thread::sleep(Duration::from_millis(100));

    let mut lock_ns = Vec::with_capacity(reads);
    let mut snap_ns = Vec::with_capacity(reads);
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..reads {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = morph_common::Key::single(((x >> 33) as i64).rem_euclid(rows));

        // Lock-based: a complete read-only transaction — begin, IS +
        // S-lock read, commit through the WAL. Lock conflicts (wait-die
        // aborts, frozen source during sync) are real reader-visible
        // latency, so errors still count.
        let t0 = Instant::now();
        let txn = db.begin();
        let read = db.read(txn, "T", &key);
        let _ = if read.is_ok() {
            db.commit(txn)
        } else {
            db.abort(txn)
        };
        lock_ns.push(t0.elapsed().as_nanos() as u64);

        // Snapshot: timestamp, versioned read, release. No locks, no WAL.
        let t0 = Instant::now();
        let snap = db.begin_snapshot().expect("snapshot");
        let _ = db.snapshot_read(&snap, "T", &key).expect("snapshot read");
        drop(snap);
        snap_ns.push(t0.elapsed().as_nanos() as u64);
    }

    stop.store(true, Ordering::Relaxed);
    let migration_rounds = mig.join().expect("migration loop");
    let writer_commits = pool.stop();
    lock_ns.sort_unstable();
    snap_ns.sort_unstable();
    ReaderGate {
        lock_p50_us: percentile_us(&lock_ns, 0.50),
        lock_p99_us: percentile_us(&lock_ns, 0.99),
        snap_p50_us: percentile_us(&snap_ns, 0.50),
        snap_p99_us: percentile_us(&snap_ns, 0.99),
        reads_per_mode: reads,
        migration_rounds,
        writer_commits,
    }
}

// --- transform-mode ablation -------------------------------------------------

/// One split migration under writer traffic per population mode, on
/// identical fresh databases. Recorded, never gated: the two modes make
/// different trade-offs (fuzzy copy needs no version chains; snapshot
/// scan reads a consistent cut but pays MVCC bookkeeping on writers).
fn mode_ablation(entries: &mut Vec<String>) {
    let rows: usize = if quick() { 4_000 } else { 20_000 };
    for (mode, tag) in [
        (TransformMode::LogPropagation, "log_propagation"),
        (TransformMode::Snapshot, "snapshot"),
    ] {
        let db = Arc::new(Database::new());
        setup_split_source(&db, rows, rows / 5).expect("split source");
        let pool = spawn_updaters(
            &db,
            vec![UpdateTarget::new("T", rows as i64, 1)],
            2,
            Duration::from_micros(100),
        );
        let t0 = Instant::now();
        let report = Transformer::run_split(
            &db,
            bench_split_spec("__ab_r", "__ab_s", false),
            migration_options(mode),
        )
        .expect("ablation migration");
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        let commits = pool.stop();
        let propagated: usize = report.iterations.iter().map(|i| i.records).sum();
        println!(
            "{tag:>16}: total {total_ms:.1} ms, populate {:.1} ms ({} rows), \
             {} iterations / {propagated} records propagated, latch pause {:?}, \
             {commits} writer commits",
            report.population.duration.as_secs_f64() * 1e3,
            report.population.rows_read,
            report.iterations.len(),
            report.sync.latch_pause,
        );
        entries.push(format!(
            "    {{ \"series\": \"transform_mode\", \"operator\": \"split\", \"mode\": \"{tag}\", \"rows\": {rows}, \"total_ms\": {total_ms:.1}, \"populate_ms\": {:.1}, \"rows_read\": {}, \"iterations\": {}, \"records_propagated\": {propagated}, \"latch_pause_us\": {}, \"writer_commits\": {commits} }}",
            report.population.duration.as_secs_f64() * 1e3,
            report.population.rows_read,
            report.iterations.len(),
            report.sync.latch_pause.as_micros(),
        ));
        let _ = db.catalog().drop_table("__ab_r");
        let _ = db.catalog().drop_table("__ab_s");
    }
}

fn main() {
    let cores = detected_cores();
    let reps = std::env::var("MORPH_GATE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);
    println!("bench_check: apply-pool + MVCC reader gates (cores={cores}, best of {reps} reps)");
    println!(
        "{:>6} {:>7} {:>9} {:>12} {:>12} {:>7} {:>9} {:>7} {:>7}",
        "op", "shards", "records", "ns", "records/s", "epochs", "handoffs", "steals", "inline"
    );

    let mut entries: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for op in [ApplyOp::Foj, ApplyOp::Split] {
        let serial = apply_sweep_point(op, 1, reps);
        let pooled = apply_sweep_point(op, GATE_SHARDS, reps);
        print_point(&serial);
        print_point(&pooled);
        let speedup = pooled.records_per_sec / serial.records_per_sec;
        println!(
            "{:>6} speedup shards={GATE_SHARDS} vs serial: {speedup:.2}x",
            op.name()
        );
        entries.push(format!(
            "    {{ \"series\": \"pool_gate\", \"operator\": \"{}\", \"cores\": {}, \"apply_shards\": {}, \"serial_records_per_sec\": {:.0}, \"pool_records_per_sec\": {:.0}, \"speedup\": {:.3}, \"epochs\": {}, \"handoffs\": {}, \"steals\": {}, \"inline_runs\": {} }}",
            op.name(),
            cores,
            GATE_SHARDS,
            serial.records_per_sec,
            pooled.records_per_sec,
            speedup,
            pooled.stats.epochs,
            pooled.stats.handoffs,
            pooled.stats.steals,
            pooled.stats.inline_runs,
        ));
        if speedup < MIN_SPEEDUP {
            failures.push(format!(
                "{}: shards={GATE_SHARDS} is {speedup:.2}x serial (need ≥ {MIN_SPEEDUP:.2}x)",
                op.name()
            ));
        }
    }

    println!("reader gate: lock-based vs snapshot point reads during migration + 4 writers");
    let rg = reader_gate();
    let ratio = if rg.snap_p99_us > 0.0 {
        rg.lock_p99_us / rg.snap_p99_us
    } else {
        f64::INFINITY
    };
    println!(
        "  lock-based: p50 {:.1} µs, p99 {:.1} µs | snapshot: p50 {:.1} µs, p99 {:.1} µs \
         | p99 ratio {ratio:.2}x ({} reads/mode, {} migration rounds, {} writer commits)",
        rg.lock_p50_us,
        rg.lock_p99_us,
        rg.snap_p50_us,
        rg.snap_p99_us,
        rg.reads_per_mode,
        rg.migration_rounds,
        rg.writer_commits,
    );
    entries.push(format!(
        "    {{ \"series\": \"reader_gate\", \"cores\": {cores}, \"lock_p50_us\": {:.1}, \"lock_p99_us\": {:.1}, \"snapshot_p50_us\": {:.1}, \"snapshot_p99_us\": {:.1}, \"p99_ratio\": {ratio:.2}, \"reads_per_mode\": {}, \"migration_rounds\": {}, \"writer_commits\": {} }}",
        rg.lock_p50_us,
        rg.lock_p99_us,
        rg.snap_p50_us,
        rg.snap_p99_us,
        rg.reads_per_mode,
        rg.migration_rounds,
        rg.writer_commits,
    ));
    if ratio < MIN_READER_P99_RATIO {
        failures.push(format!(
            "reader: snapshot p99 {:.1} µs is only {ratio:.2}x better than lock-based {:.1} µs \
             (need ≥ {MIN_READER_P99_RATIO:.1}x)",
            rg.snap_p99_us, rg.lock_p99_us
        ));
    }

    println!("transform-mode ablation: fuzzy copy vs snapshot scan population (recorded)");
    mode_ablation(&mut entries);

    merge_into_bench_json(cores, entries);

    if cores < 2 {
        println!(
            "single CPU detected: the comparative gates (pool ≥{:.0}% speedup, reader p99 \
             ≥{MIN_READER_P99_RATIO:.1}x) are not enforceable here — results recorded with \
             cores={cores}, gate passes",
            (MIN_SPEEDUP - 1.0) * 100.0
        );
        return;
    }
    if failures.is_empty() {
        println!(
            "gates OK: shards={GATE_SHARDS} beats serial by ≥{:.0}% on both operators and \
             snapshot reads beat locked reads by ≥{MIN_READER_P99_RATIO:.1}x at p99",
            (MIN_SPEEDUP - 1.0) * 100.0
        );
    } else {
        for f in &failures {
            eprintln!("bench gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}
