//! # morph-bench
//!
//! Shared machinery for the experiment benches that regenerate the
//! paper's evaluation (Figure 4(a)–(d), the synchronization-pause
//! claim, and the ablation baselines). Each bench target is a
//! `harness = false` binary that prints the same rows/series the paper
//! plots and writes a CSV under `target/experiments/`.
//!
//! ## Methodology mapping (paper §6 → here)
//!
//! * *Server*: the paper used one active CPU on the server node; these
//!   benches run the engine plus one transformation thread on the local
//!   machine.
//! * *Clients*: the paper's clients were separate nodes on a 100 Mb/s
//!   LAN; here they are in-process threads whose per-transaction pacing
//!   sleep stands in for the network round trip. Relative measurements
//!   (before vs. during the change) cancel the constant.
//! * *100 % workload*: the client count that maximizes throughput. Set
//!   `MORPH_FULL_THREADS` to override the default of 10.
//! * *Scale*: 50 000 R-rows / 20 000 S-rows (FOJ) and 50 000 T-rows
//!   over 20 000 split values, as in the paper. `MORPH_QUICK=1` runs a
//!   reduced-scale smoke version of every experiment (used by `cargo
//!   bench` in CI-ish settings; the published numbers use full scale).

pub mod apply_sweep;

use morph_core::propagate::Propagator;
use morph_core::{FojMapping, FojSpec, SplitMapping, SplitSpec, TransformOperator};
use morph_engine::Database;
use morph_workload::{
    setup_dummy, setup_foj_sources, setup_split_source, ClientConfig, HotSide, WorkloadRunner,
};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Experiment scale.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub foj_r_rows: usize,
    pub foj_s_rows: usize,
    pub split_rows: usize,
    pub split_values: usize,
    pub dummy_rows: usize,
    /// Measurement window per point.
    pub window: Duration,
    /// Warm-up before the first window.
    pub warmup: Duration,
}

/// Whether `MORPH_QUICK=1` is set.
pub fn quick() -> bool {
    std::env::var("MORPH_QUICK").is_ok_and(|v| v == "1")
}

/// The active scale (paper scale unless `MORPH_QUICK=1`).
pub fn scale() -> Scale {
    if quick() {
        Scale {
            foj_r_rows: 4_000,
            foj_s_rows: 1_600,
            split_rows: 4_000,
            split_values: 1_600,
            dummy_rows: 4_000,
            window: Duration::from_millis(400),
            warmup: Duration::from_millis(150),
        }
    } else {
        Scale {
            foj_r_rows: 50_000,
            foj_s_rows: 20_000,
            split_rows: 50_000,
            split_values: 20_000,
            dummy_rows: 50_000,
            window: Duration::from_millis(2_000),
            warmup: Duration::from_millis(500),
        }
    }
}

/// Client count defined as 100 % workload — the paper's definition is
/// "the number of concurrent transactions that produced the highest
/// possible throughput" (§6).
///
/// On a single-core host the saturation sweep is *unstable* between
/// runs (the throughput-vs-clients curve is nearly flat over a wide
/// range, so scheduler noise moves the argmax by factors of 2–8, which
/// silently rescales every workload level). The default is therefore a
/// **fixed, documented operating point of 32 clients** — the value a
/// representative calibration on this class of host produced. Override
/// with `MORPH_FULL_THREADS=<n>`, or set `MORPH_CALIBRATE=1` to run the
/// sweep explicitly.
pub fn full_threads() -> usize {
    use std::sync::OnceLock;
    static FULL: OnceLock<usize> = OnceLock::new();
    *FULL.get_or_init(|| {
        if let Some(n) = std::env::var("MORPH_FULL_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            return n;
        }
        if quick() {
            return 10;
        }
        if std::env::var("MORPH_CALIBRATE").is_ok_and(|v| v == "1") {
            eprintln!("calibrating 100% workload (client count maximizing throughput)…");
            let s = scale();
            let n = morph_workload::runner::calibrate_full_workload(
                || db_split(s),
                &split_client_cfg(s, 0.2),
                256,
                Duration::from_millis(800),
            );
            eprintln!("calibrated: 100% workload = {n} client threads");
            return n;
        }
        32
    })
}

/// Thread count for a workload percentage.
pub fn threads_for(pct: u32) -> usize {
    ((full_threads() as f64 * pct as f64 / 100.0).round() as usize).max(1)
}

/// `target/experiments/` (created on demand).
pub fn exp_dir() -> PathBuf {
    let mut dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()));
    dir.push("experiments");
    std::fs::create_dir_all(&dir).expect("experiments dir");
    dir
}

/// The workload levels of Figures 4(a)/(c) (50–100 %).
pub const WORKLOADS_THROUGHPUT: [u32; 6] = [50, 60, 70, 80, 90, 100];
/// The workload levels of Figure 4(b) (40–100 %).
pub const WORKLOADS_RESPONSE: [u32; 7] = [40, 50, 60, 70, 80, 90, 100];

/// Per-transaction pacing standing in for the paper's client-server
/// network round trip. The paper's clients ran on four *separate*
/// nodes; in-process clients must be paced so that generating load
/// does not itself consume the (single) server CPU the propagator
/// needs — 2 ms per transaction keeps the client pool below server
/// saturation while still producing tens of thousands of log records
/// per second at full workload.
pub const PACING: Duration = Duration::from_millis(2);

/// Fresh database with the split source and dummy table.
pub fn db_split(s: Scale) -> Arc<Database> {
    let db = Arc::new(Database::new());
    setup_dummy(&db, s.dummy_rows).expect("dummy");
    setup_split_source(&db, s.split_rows, s.split_values).expect("split source");
    db
}

/// Fresh database with the FOJ sources and dummy table.
pub fn db_foj(s: Scale) -> Arc<Database> {
    let db = Arc::new(Database::new());
    setup_dummy(&db, s.dummy_rows).expect("dummy");
    setup_foj_sources(&db, s.foj_r_rows, s.foj_s_rows).expect("foj sources");
    db
}

/// Client configuration for the split workload with the given fraction
/// of updates on T.
pub fn split_client_cfg(s: Scale, hot_fraction: f64) -> ClientConfig {
    ClientConfig {
        updates_per_txn: 10,
        hot_fraction,
        hot: HotSide::SplitSource,
        hot_rows: s.split_rows,
        hot_s_rows: 0,
        dummy_rows: s.dummy_rows,
        pacing: Some(PACING),
    }
}

/// Client configuration for the FOJ workload.
pub fn foj_client_cfg(s: Scale, hot_fraction: f64) -> ClientConfig {
    ClientConfig {
        updates_per_txn: 10,
        hot_fraction,
        hot: HotSide::FojSources { s_share: 0.2 },
        hot_rows: s.foj_r_rows,
        hot_s_rows: s.foj_s_rows,
        dummy_rows: s.dummy_rows,
        pacing: Some(PACING),
    }
}

/// The standard split spec over the benchmark schema.
pub fn bench_split_spec(r: &str, s: &str, check: bool) -> SplitSpec {
    let mut spec = SplitSpec::new("T", r, s, &["a", "b", "c"], "c", &["d"]);
    spec.check_consistency = check;
    spec
}

/// The standard FOJ spec over the benchmark schema.
pub fn bench_foj_spec(target: &str) -> FojSpec {
    FojSpec::new("R", "S", target, "c", "c")
}

/// Pre-install the consistency checker's split-column index on the
/// benchmark source table. CC-mode preparation creates this index on
/// the *live* source (§5.3 needs it to read contributors); creating it
/// during the measured window would charge its one-time build — and
/// bias the post-phase baseline, which keeps paying its maintenance —
/// to the wrong series. Benches that measure a CC-mode phase install
/// it before the first baseline window instead.
pub fn preinstall_cc_index(db: &Database) {
    let spec = bench_split_spec("__cc_warm_r", "__cc_warm_s", true);
    let _ = SplitMapping::prepare(db, &spec).expect("cc index preinstall");
    let _ = db.catalog().drop_table("__cc_warm_r");
    let _ = db.catalog().drop_table("__cc_warm_s");
}

// --- phase drivers -----------------------------------------------------------

/// Background loop repeatedly performing *initial population* into
/// throwaway targets — isolates the Figure 4(a)/(b) phase: "interference
/// … by initial population".
pub struct PopulationLoop {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<usize>,
}

/// Which transformation the phase loops exercise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    Split,
    SplitCc,
    Foj,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Split => write!(f, "split"),
            Op::SplitCc => write!(f, "split+cc"),
            Op::Foj => write!(f, "foj"),
        }
    }
}

impl PopulationLoop {
    /// Start populating in the background at the given throttle
    /// priority. The paper runs the transformation "as a low priority
    /// background process"; on a single-CPU host an unthrottled
    /// population loop would simply be a CPU hog and the measured
    /// interference would be dominated by scheduler queueing rather
    /// than by the engine-level contention the figure is about.
    pub fn start(db: Arc<Database>, op: Op, priority: f64) -> PopulationLoop {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut throttle = morph_core::throttle::Throttle::new(priority);
            let mut rounds = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                let tag = format!("__bench_pop_{rounds}");
                match op {
                    Op::Split | Op::SplitCc => {
                        let spec = bench_split_spec(
                            &format!("{tag}_r"),
                            &format!("{tag}_s"),
                            op == Op::SplitCc,
                        );
                        let mut m = SplitMapping::prepare(&db, &spec).expect("prepare");
                        m.populate_throttled(512, &mut throttle).expect("populate");
                        let _ = db.catalog().drop_table(&format!("{tag}_r"));
                        let _ = db.catalog().drop_table(&format!("{tag}_s"));
                    }
                    Op::Foj => {
                        let spec = bench_foj_spec(&format!("{tag}_t"));
                        let m = FojMapping::prepare(&db, &spec).expect("prepare");
                        m.populate_throttled(512, &mut throttle).expect("populate");
                        let _ = db.catalog().drop_table(&format!("{tag}_t"));
                    }
                }
                rounds += 1;
            }
            rounds
        });
        PopulationLoop { stop, handle }
    }

    /// Stop; returns completed population rounds.
    pub fn stop(self) -> usize {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("population loop")
    }
}

/// One measured point of the parallel-population sweep (the
/// `populate_parallel` bench).
pub struct PopulatePoint {
    pub copy_workers: usize,
    pub rows_read: usize,
    pub ns: u128,
    pub rows_per_sec: f64,
}

/// Populate a fresh split target with `copy_workers` partition
/// scanners at full priority while an *unpaced* hot workload saturates
/// the server — the fuzzy copy's actual operating regime (§3.2
/// population always runs against live traffic; an idle-machine copy
/// is the offline case the paper argues against benchmarking).
///
/// Contention is where extra scan workers pay off: each worker is an
/// independently schedulable unit, so the copy's share of a saturated
/// host grows with the worker count instead of staying pinned to a
/// single thread's timeslice — on multi-core additionally through real
/// concurrency. Runs `reps` times and keeps the fastest (least
/// scheduler-noise) repetition.
pub fn populate_parallel_point(copy_workers: usize, reps: usize) -> PopulatePoint {
    let s = scale();
    let mut best: Option<(usize, u128)> = None;
    for rep in 0..reps.max(1) {
        let db = db_split(s);
        // Saturate the host with dummy-table traffic (the paper's load
        // device): the copy must steal CPU from live transactions, but
        // never blocks on a preempted source-shard lock holder — on a
        // single CPU that convoy swamps the scheduling share the extra
        // workers are buying (hot source traffic belongs to the
        // propagation benches, not the copy-rate sweep).
        // MORPH_PP_CLIENTS overrides the client thread count
        // (0 = unloaded, for overhead measurement).
        let clients = std::env::var("MORPH_PP_CLIENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8usize);
        let runner = (clients > 0).then(|| {
            let mut cfg = split_client_cfg(s, 0.0);
            cfg.pacing = None;
            // Long transactions commit (and hence serialize on the WAL)
            // 10x less often, keeping every client runnable.
            cfg.updates_per_txn = 100;
            WorkloadRunner::start(Arc::clone(&db), cfg, clients)
        });
        std::thread::sleep(Duration::from_millis(100));
        let spec = bench_split_spec(&format!("__pp{rep}_r"), &format!("__pp{rep}_s"), false);
        let mut m = SplitMapping::prepare(&db, &spec).expect("prepare");
        let t0 = std::time::Instant::now();
        let (read, _) = TransformOperator::populate_parallel(&mut m, &db, 256, copy_workers, 1.0)
            .expect("populate");
        let ns = t0.elapsed().as_nanos();
        if let Some(r) = runner {
            r.stop();
        }
        if best.is_none_or(|(_, b)| ns < b) {
            best = Some((read, ns));
        }
    }
    let (rows_read, ns) = best.expect("reps >= 1");
    PopulatePoint {
        copy_workers,
        rows_read,
        ns,
        rows_per_sec: rows_read as f64 * 1e9 / ns as f64,
    }
}

/// Background loop continuously applying the log to transformed tables
/// without ever synchronizing — isolates the Figure 4(c) phase:
/// "interference … by log propagation".
pub struct PropagationLoop {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<usize>,
}

impl PropagationLoop {
    /// Prepare + populate + catch up once, then keep propagating at
    /// `priority` until stopped. Returns only after the propagator has
    /// reached a small backlog, so the caller's measurement window
    /// sees *steady-state* log propagation (the phase Figure 4(c) is
    /// about), not the population or initial catch-up.
    pub fn start(db: Arc<Database>, op: Op, priority: f64) -> PropagationLoop {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let ready = Arc::new(AtomicBool::new(false));
        let ready2 = Arc::clone(&ready);
        let handle = std::thread::spawn(move || {
            let mut oper: Box<dyn TransformOperator> = match op {
                Op::Split | Op::SplitCc => {
                    let spec =
                        bench_split_spec("__bench_prop_r", "__bench_prop_s", op == Op::SplitCc);
                    Box::new(SplitMapping::prepare(&db, &spec).expect("prepare"))
                }
                Op::Foj => {
                    let spec = bench_foj_spec("__bench_prop_t");
                    Box::new(FojMapping::prepare(&db, &spec).expect("prepare"))
                }
            };
            let (_, start_lsn, _) = db.write_fuzzy_mark();
            let mut prop = Propagator::new(&db, start_lsn, priority);
            oper.populate(&db, 1_024).expect("populate");
            let abort = AtomicBool::new(false);
            let mut records = 0usize;
            while !stop2.load(Ordering::Relaxed) {
                let stats = prop
                    .iterate(&db, &mut *oper, 256, 16, &abort)
                    .expect("iterate");
                records += stats.records;
                if !ready2.load(Ordering::Relaxed) && stats.backlog_after < 2_000 {
                    ready2.store(true, Ordering::Release);
                }
                if stats.records == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            let _ = db.catalog().drop_table("__bench_prop_r");
            let _ = db.catalog().drop_table("__bench_prop_s");
            let _ = db.catalog().drop_table("__bench_prop_t");
            records
        });
        // Wait for steady state (bounded: fall through after 30 s so a
        // non-converging configuration still gets measured).
        let t0 = std::time::Instant::now();
        while !ready.load(Ordering::Acquire) && t0.elapsed() < Duration::from_secs(30) {
            std::thread::sleep(Duration::from_millis(5));
        }
        PropagationLoop { stop, handle }
    }

    /// Stop; returns log records processed.
    pub fn stop(self) -> usize {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("propagation loop")
    }
}

// --- measurement helpers --------------------------------------------------------

/// One relative measurement with drift control: warm up, measure a
/// baseline window, run `phase` while measuring a second window, tear
/// the phase down, then measure a second baseline window; the reported
/// baseline averages the two bracketing windows so slow drift (memory
/// layout, scheduler state) cancels out of the ratio.
pub fn relative_point<P, H>(
    runner: &WorkloadRunner,
    s: Scale,
    start_phase: impl FnOnce() -> P,
    stop_phase: impl FnOnce(P) -> H,
) -> (morph_workload::WindowStats, morph_workload::WindowStats, H) {
    std::thread::sleep(s.warmup);
    let b1 = runner.measure(s.window);
    let phase = start_phase();
    let during = runner.measure(s.window);
    let out = stop_phase(phase);
    std::thread::sleep(s.warmup / 2);
    let b2 = runner.measure(s.window);
    let baseline = merge_windows(&b1, &b2);
    (baseline, during, out)
}

/// Combine two measurement windows into one (sums counts, averages
/// rates over the combined duration).
pub fn merge_windows(
    a: &morph_workload::WindowStats,
    b: &morph_workload::WindowStats,
) -> morph_workload::WindowStats {
    let duration = a.duration + b.duration;
    let committed = a.committed + b.committed;
    let total_lat = a.mean_latency_ms * a.committed as f64 + b.mean_latency_ms * b.committed as f64;
    morph_workload::WindowStats {
        duration,
        committed,
        aborted: a.aborted + b.aborted,
        schema_events: a.schema_events + b.schema_events,
        throughput: committed as f64 / duration.as_secs_f64(),
        mean_latency_ms: if committed > 0 {
            total_lat / committed as f64
        } else {
            0.0
        },
        p95_latency_ms: a.p95_latency_ms.max(b.p95_latency_ms),
    }
}

/// CSV sink under `target/experiments/`.
pub struct Csv {
    file: std::fs::File,
    pub path: PathBuf,
}

impl Csv {
    /// Create (truncate) `target/experiments/<name>.csv` with a header.
    pub fn create(name: &str, header: &str) -> Csv {
        let path = exp_dir().join(format!("{name}.csv"));
        let mut file = std::fs::File::create(&path).expect("csv file");
        writeln!(file, "{header}").expect("csv header");
        Csv { file, path }
    }

    /// Append one row (also echoed to stdout by most benches).
    pub fn row(&mut self, line: &str) {
        writeln!(self.file, "{line}").expect("csv row");
    }
}

/// Standard bench banner.
pub fn banner(what: &str, paper: &str) {
    println!("==============================================================");
    println!("{what}");
    println!("  paper reference: {paper}");
    println!(
        "  scale: {} | full workload = {} client threads | pacing {:?}",
        if quick() { "QUICK" } else { "paper (50k/20k)" },
        full_threads(),
        PACING
    );
    println!("==============================================================");
}
