//! Bounded parallel-apply sweep: the update-heavy FOJ and split
//! scenarios whose post-coalesce runs the persistent pool
//! lane-classifies, shared between the `propagate_batch` bench (timed
//! criterion series) and the `bench_check` CI regression gate (bounded
//! best-of-reps sweep enforcing the ≥10 % pooled-over-serial speedup
//! on multi-core hosts).
//!
//! The scenario churn streams are deterministic (`Lcg`), so every
//! setup call reproduces the identical log and both consumers measure
//! the same drain. Pool spawn happens *before* the clock starts: the
//! persistent design pays thread creation once per `TransformJob`, so
//! charging it to a single batch drain would measure the spawn-per-
//! segment regime this pool replaced.

use morph_common::{ColumnType, Key, Lsn, Schema, Value};
use morph_core::foj::{figure1_schemas, FojMapping};
use morph_core::propagate::Propagator;
use morph_core::{
    ApplyPool, FojSpec, ParallelConfig, PoolStats, SplitMapping, SplitSpec, TransformOperator,
};
use morph_engine::Database;
use std::sync::Arc;

/// Deterministic churn step stream (same log every setup call).
pub struct Lcg(pub u64);

impl Lcg {
    pub fn step(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Key spaces of the update-heavy parallel-apply scenarios: a hot set
/// small enough to stay cache-resident (and, for split, to coalesce
/// hard), a wider cold range so every lane sees distinct subjects, and
/// a churn range past the populated keys for records that exist only
/// inside one batch window.
const PAR_KEYS: i64 = 256;
const PAR_HOT: i64 = 64;
const PAR_SPLIT_HOT: u64 = 32;
const PAR_CHURN_SPAN: i64 = 4096;
const PAR_ROUNDS: usize = 5;

/// Which parallel-apply scenario to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApplyOp {
    Foj,
    Split,
}

impl ApplyOp {
    pub fn name(self) -> &'static str {
        match self {
            ApplyOp::Foj => "foj",
            ApplyOp::Split => "split",
        }
    }
}

/// FOJ parallel-apply scenario: each 1024-record window is a block of
/// 256 hot payload updates — non-join, non-key R updates, exactly the
/// class the FOJ sharding fans into lanes, kept in full by
/// `DeleteOnly` coalescing as one ≥128-record parallel segment —
/// followed by 256 insert/update/delete churn triples on transient
/// keys, which the delete coalesces down to itself (a target-side
/// miss). Batch-window churn is the regime batching exists for (§3.3);
/// the rate is reported over raw drained records like every other
/// series.
fn setup_foj_par() -> (Arc<Database>, Box<dyn TransformOperator>, Lsn) {
    let db = Arc::new(Database::new());
    let (rs, ss) = figure1_schemas();
    db.create_table("R", rs).unwrap();
    db.create_table("S", ss).unwrap();
    let txn = db.begin();
    for j in 0..16 {
        db.insert(txn, "S", vec![Value::str(format!("j{j}")), Value::str("d")])
            .unwrap();
    }
    for i in 0..PAR_KEYS {
        db.insert(
            txn,
            "R",
            vec![
                Value::Int(i),
                Value::str("b"),
                Value::str(format!("j{}", i % 16)),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();

    let m = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
    let (_, start, _) = db.write_fuzzy_mark();
    m.populate(256).unwrap();

    let mut upd = 0usize;
    let mut churn = 0i64;
    for _round in 0..PAR_ROUNDS {
        // Block A: 256 hot payload updates (the parallel segment).
        for _ in 0..4 {
            let txn = db.begin();
            for _ in 0..64 {
                let a = (upd % PAR_HOT as usize) as i64;
                upd += 1;
                db.update(
                    txn,
                    "R",
                    &Key::single(a),
                    &[(1, Value::str(format!("p{upd}")))],
                )
                .unwrap();
            }
            db.commit(txn).unwrap();
        }
        // Block B: 256 churn triples on keys that never stay live.
        for _ in 0..16 {
            let txn = db.begin();
            for _ in 0..16 {
                let a = PAR_KEYS + (churn % PAR_CHURN_SPAN);
                churn += 1;
                db.insert(
                    txn,
                    "R",
                    vec![
                        Value::Int(a),
                        Value::str("b"),
                        Value::str(format!("j{}", a % 16)),
                    ],
                )
                .unwrap();
                db.update(txn, "R", &Key::single(a), &[(1, Value::str("x"))])
                    .unwrap();
                db.delete(txn, "R", &Key::single(a)).unwrap();
            }
            db.commit(txn).unwrap();
        }
    }
    (db, Box::new(m), start)
}

/// Split parallel-apply scenario: payload updates with a 7:1 hot:cold
/// mix over a 32-key hot set. `Full` coalescing collapses the hot
/// repeats within each run to one survivor per key, the advancing cold
/// keys all survive, and the ~160-record surviving runs still clear
/// the 128-record parallel segment threshold, so the lanes engage on
/// post-coalesce work — the same regime the serial 1024-batch series
/// measures, shifted toward the skew that makes batching pay.
fn setup_split_par() -> (Arc<Database>, Box<dyn TransformOperator>, Lsn) {
    let db = Arc::new(Database::new());
    let ts = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Str)
        .nullable("d", ColumnType::Str)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", ts).unwrap();
    let txn = db.begin();
    for i in 0..PAR_KEYS {
        let c = format!("c{}", i % 16);
        db.insert(
            txn,
            "T",
            vec![
                Value::Int(i),
                Value::str("b"),
                Value::str(&c),
                Value::str(format!("dep-{c}")),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();

    let spec = SplitSpec::new("T", "R_b", "S_b", &["a", "b", "c"], "c", &["d"]);
    let mut m = SplitMapping::prepare(&db, &spec).unwrap();
    let (_, start, _) = db.write_fuzzy_mark();
    m.populate(256).unwrap();

    let mut rng = Lcg(29);
    for t in 0..(PAR_ROUNDS * 1024) / 10 {
        let txn = db.begin();
        for k in 0..10 {
            let i = t * 10 + k;
            let a = if i % 8 == 0 {
                ((i / 8) % PAR_KEYS as usize) as i64
            } else {
                (rng.step() % PAR_SPLIT_HOT) as i64
            };
            db.update(
                txn,
                "T",
                &Key::single(a),
                &[(1, Value::str(format!("p{t}")))],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
    }
    (db, Box::new(m), start)
}

/// Fresh scenario for `op`, caught up to `Lsn`, churn tail pending.
pub fn setup(op: ApplyOp) -> (Arc<Database>, Box<dyn TransformOperator>, Lsn) {
    match op {
        ApplyOp::Foj => setup_foj_par(),
        ApplyOp::Split => setup_split_par(),
    }
}

/// Drain the whole backlog at cursor batch `batch_size` with the given
/// pre-spawned pool installed (`None` = the exact serial pipeline).
/// Returns (records drained, records coalesced away, pool counters).
pub fn drain_pooled(
    db: &Arc<Database>,
    m: &mut dyn TransformOperator,
    start: Lsn,
    batch_size: usize,
    pool: Option<&Arc<ApplyPool>>,
) -> (usize, usize, PoolStats) {
    let shards = pool.map_or(1, |p| p.width());
    let mut prop =
        Propagator::new(db, start, 1.0).with_parallel(ParallelConfig::new(1, shards).exact());
    if let Some(p) = pool {
        prop = prop.with_pool(Arc::clone(p));
    }
    let records = prop.drain_with_batch(db, m, batch_size).expect("drain");
    let stats = prop.pool_stats().unwrap_or_default();
    (records, prop.coalesced(), stats)
}

/// One measured point of the bounded apply sweep.
pub struct ApplyPoint {
    pub operator: &'static str,
    pub apply_shards: usize,
    pub records: usize,
    pub ns: u128,
    pub records_per_sec: f64,
    pub stats: PoolStats,
}

/// Best-of-`reps` drain of a fresh `op` scenario at `shards` lanes
/// (1 = the exact serial pipeline; the pool is not engaged at all).
/// Keeping the fastest repetition discards scheduler noise the same
/// way `populate_parallel_point` does.
pub fn apply_sweep_point(op: ApplyOp, shards: usize, reps: usize) -> ApplyPoint {
    let mut best: Option<(usize, u128, PoolStats)> = None;
    for _ in 0..reps.max(1) {
        let (db, mut m, start) = setup(op);
        let pool = (shards > 1).then(|| Arc::new(ApplyPool::new(shards)));
        let t0 = std::time::Instant::now();
        let (records, _, stats) = drain_pooled(&db, m.as_mut(), start, 1024, pool.as_ref());
        let ns = t0.elapsed().as_nanos();
        if best.is_none_or(|(_, b, _)| ns < b) {
            best = Some((records, ns, stats));
        }
    }
    let (records, ns, stats) = best.expect("reps >= 1");
    ApplyPoint {
        operator: op.name(),
        apply_shards: shards,
        records,
        ns,
        records_per_sec: records as f64 * 1e9 / ns as f64,
        stats,
    }
}

/// Detected hardware parallelism — recorded next to every parallel
/// number so single-CPU results stop masquerading as scaling data.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
