//! Property tests of the log-record codec: every representable record
//! round-trips, and no byte-level corruption can cause a panic (only
//! `CorruptLog` errors).

use morph_common::{Key, Lsn, TableId, TxnId, Value};
use morph_wal::{codec, LogOp, LogRecord};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        ".{0,12}".prop_map(Value::Str),
    ]
}

fn values_strategy() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(value_strategy(), 0..6)
}

fn cols_strategy() -> impl Strategy<Value = Vec<(usize, Value)>> {
    prop::collection::vec((0usize..16, value_strategy()), 0..5)
}

fn op_strategy() -> impl Strategy<Value = LogOp> {
    prop_oneof![
        (any::<u32>(), values_strategy()).prop_map(|(t, row)| LogOp::Insert {
            table: TableId(t),
            row,
        }),
        (any::<u32>(), values_strategy(), values_strategy()).prop_map(|(t, k, old)| {
            LogOp::Delete {
                table: TableId(t),
                key: Key(k),
                old,
            }
        }),
        (
            any::<u32>(),
            values_strategy(),
            cols_strategy(),
            cols_strategy()
        )
            .prop_map(|(t, k, old, new)| LogOp::Update {
                table: TableId(t),
                key: Key(k),
                old,
                new,
            }),
    ]
}

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        any::<u64>().prop_map(|t| LogRecord::Begin { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| LogRecord::Commit { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| LogRecord::Abort { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| LogRecord::AbortEnd { txn: TxnId(t) }),
        (any::<u64>(), op_strategy()).prop_map(|(t, op)| LogRecord::Op { txn: TxnId(t), op }),
        (any::<u64>(), any::<u64>(), op_strategy()).prop_map(|(t, l, op)| LogRecord::Clr {
            txn: TxnId(t),
            undone_lsn: Lsn(l),
            op,
        }),
        (prop::collection::vec(any::<u64>(), 0..8), any::<u64>()).prop_map(|(a, l)| {
            LogRecord::FuzzyMark {
                active: a.into_iter().map(TxnId).collect(),
                start_lsn: Lsn(l),
            }
        }),
        values_strategy().prop_map(|k| LogRecord::CcBegin { split_key: Key(k) }),
        (values_strategy(), values_strategy()).prop_map(|(k, image)| LogRecord::CcOk {
            split_key: Key(k),
            image,
        }),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..6).prop_map(|v| {
            LogRecord::Checkpoint {
                active: v.into_iter().map(|(t, l)| (TxnId(t), Lsn(l))).collect(),
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(rec in record_strategy()) {
        let bytes = codec::encode(&rec);
        let back = codec::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(back, rec);
    }

    /// Arbitrary mutations of valid encodings never panic — they either
    /// decode to *some* record or fail cleanly.
    #[test]
    fn corruption_never_panics(
        rec in record_strategy(),
        pos_frac in 0.0f64..1.0,
        byte in any::<u8>(),
    ) {
        let mut bytes = codec::encode(&rec).to_vec();
        if !bytes.is_empty() {
            let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            bytes[pos] = byte;
        }
        let _ = codec::decode(&bytes); // must not panic
    }

    /// Truncations fail cleanly at every cut point.
    #[test]
    fn truncation_never_panics(rec in record_strategy(), cut_frac in 0.0f64..1.0) {
        let bytes = codec::encode(&rec);
        let cut = ((bytes.len()) as f64 * cut_frac) as usize;
        let _ = codec::decode(&bytes[..cut.min(bytes.len().saturating_sub(1))]);
    }
}
