//! Multi-threaded append/crash stress for the lock-split WAL (the
//! issue's satellite: N appender threads over a seeded `FaultBackend`,
//! a crash at a seeded-random byte offset, and two invariants on the
//! surviving image):
//!
//! 1. **byte order == LSN order** — the durable prefix decodes to the
//!    records of `Lsn(1)..=k` in exactly that order, with no gap and
//!    no reordering, regardless of which threads raced which;
//! 2. **the watermark never lies** — every LSN a thread saw
//!    acknowledged by `wait_durable` before the crash is inside the
//!    surviving prefix.
//!
//! The `TxnId` payload of each record encodes (thread, sequence), so
//! the decoded prefix identifies exactly which append each durable
//! record came from.

use morph_common::{Lsn, TxnId};
use morph_wal::{FaultBackend, FaultConfig, GroupCommitConfig, LogManager, LogRecord, WalMode};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const THREADS: u64 = 8;
const APPENDS_PER_THREAD: u64 = 400;

fn payload(thread: u64, seq: u64) -> TxnId {
    TxnId(thread * 1_000_000 + seq)
}

/// Run the stress universe, returning nothing: all invariants are
/// asserted inside.
fn stress(mode: WalMode, gc: GroupCommitConfig, seed: u64) {
    let (backend, handle) = FaultBackend::new(FaultConfig::crash_only(seed));
    let log = Arc::new(LogManager::with_backend_mode(Box::new(backend), mode, gc));

    // lsn -> payload, recorded by whichever thread won that LSN.
    let by_lsn: Arc<Mutex<BTreeMap<u64, TxnId>>> = Arc::new(Mutex::new(BTreeMap::new()));
    // Highest LSN any thread saw wait_durable acknowledge.
    let max_acked = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let log = Arc::clone(&log);
        let by_lsn = Arc::clone(&by_lsn);
        let max_acked = Arc::clone(&max_acked);
        handles.push(std::thread::spawn(move || {
            for i in 0..APPENDS_PER_THREAD {
                let txn = payload(t, i);
                let lsn = log.append(LogRecord::Begin { txn });
                by_lsn.lock().insert(lsn.0, txn);
                // Every 16th append acts like a committer and demands
                // durability; the rest just race the append path.
                if i % 16 == t % 16 {
                    log.wait_durable(lsn).expect("flush failed");
                    assert!(log.durable_lsn() >= lsn, "watermark behind ack");
                    max_acked.fetch_max(lsn.0, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let total = THREADS * APPENDS_PER_THREAD;
    assert_eq!(log.last_lsn(), Lsn(total), "publish watermark incomplete");
    let by_lsn = by_lsn.lock();
    assert_eq!(by_lsn.len() as u64, total, "duplicate or lost LSNs");

    // The crash keeps a seeded-random byte prefix of unflushed bytes.
    handle.crash();
    let durable = handle.durable_records().expect("torn image must decode");
    let k = durable.len() as u64;

    // Invariant 2: acknowledged durability survived the tear.
    let acked = max_acked.load(Ordering::Relaxed);
    assert!(
        k >= acked,
        "wait_durable acked {acked} but only {k} records survived (mode {mode:?}, seed {seed})"
    );

    // Invariant 1: the survivors are exactly Lsn(1)..=k, in order.
    for (i, rec) in durable.iter().enumerate() {
        let lsn = i as u64 + 1;
        let want = by_lsn[&lsn];
        match rec {
            LogRecord::Begin { txn } => assert_eq!(
                *txn, want,
                "byte position {i} holds the wrong record for {lsn} \
                 (mode {mode:?}, seed {seed}): byte order != LSN order"
            ),
            other => panic!("unexpected record {other:?} at byte position {i}"),
        }
    }
}

#[test]
fn serial_mode_survives_concurrent_appends_and_torn_crash() {
    for seed in [1, 42, 777] {
        stress(WalMode::Serial, GroupCommitConfig::default(), seed);
    }
}

#[test]
fn group_mode_survives_concurrent_appends_and_torn_crash() {
    for seed in [1, 42, 777] {
        stress(WalMode::Group, GroupCommitConfig::default(), seed);
    }
}

#[test]
fn group_mode_with_delay_window_survives() {
    // A real batching window: leaders linger up to 200µs for
    // stragglers, so flushes genuinely cover multiple committers.
    let gc = GroupCommitConfig {
        max_batch: 8,
        max_delay: Duration::from_micros(200),
    };
    for seed in [7, 99] {
        stress(WalMode::Group, gc, seed);
    }
}

#[test]
fn group_mode_flushes_far_fewer_times_than_commits() {
    // The group-commit economy argument, measured: 4 committers × 200
    // commits each, every commit waiting for durability. The flush
    // counter must come in well under the commit count (leaders absorb
    // followers); serial mode by construction flushes once per commit.
    let (backend, _handle) = FaultBackend::new(FaultConfig::crash_only(5));
    let log = Arc::new(LogManager::with_backend_mode(
        Box::new(backend),
        WalMode::Group,
        GroupCommitConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
        },
    ));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let log = Arc::clone(&log);
        handles.push(std::thread::spawn(move || {
            for i in 0..200 {
                let lsn = log.append(LogRecord::Begin { txn: payload(t, i) });
                log.wait_durable(lsn).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let commits = 4 * 200;
    let flushes = log.flush_count();
    assert!(
        flushes < commits / 2,
        "group commit did not batch: {flushes} flushes for {commits} commits"
    );
}
