//! Property tests of the on-disk log stream: a crash can cut the file
//! at *any* byte offset (torn final write, lost unsynced tail), and
//! recovery must treat whatever is left as a clean prefix of the
//! record sequence — never panic, never error, never resurrect a
//! record that was not fully written.

use morph_common::{TableId, TxnId, Value};
use morph_wal::{codec, decode_stream, Backend, FileBackend, LogOp, LogRecord};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        any::<u64>().prop_map(|t| LogRecord::Begin { txn: TxnId(t) }),
        any::<u64>().prop_map(|t| LogRecord::Commit { txn: TxnId(t) }),
        (any::<u64>(), any::<u32>(), ".{0,20}").prop_map(|(t, table, s)| LogRecord::Op {
            txn: TxnId(t),
            op: LogOp::Insert {
                table: TableId(table),
                row: vec![Value::Int(t as i64), Value::Str(s)],
            },
        }),
    ]
}

/// Encode `recs` as the backend writes them: length-prefixed frames.
fn encode_frames(recs: &[LogRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for rec in recs {
        let body = codec::encode(rec);
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exhaustive over cut offsets: truncating the stream anywhere
    /// yields `Ok` with a strict prefix of the original records.
    #[test]
    fn truncation_at_every_byte_yields_a_clean_prefix(
        recs in prop::collection::vec(record_strategy(), 0..8),
    ) {
        let bytes = encode_frames(&recs);
        for cut in 0..=bytes.len() {
            let decoded = decode_stream(&bytes[..cut])
                .expect("torn tail must decode as a prefix, not an error");
            prop_assert!(decoded.len() <= recs.len());
            prop_assert_eq!(&decoded[..], &recs[..decoded.len()]);
            // A record is only resurrected once its whole frame is in.
            let whole = encode_frames(&recs[..decoded.len()]).len();
            prop_assert!(cut >= whole);
            if decoded.len() < recs.len() {
                let next = encode_frames(&recs[..decoded.len() + 1]).len();
                prop_assert!(cut < next);
            }
        }
    }
}

/// The same guarantee end-to-end through a real file: write frames via
/// the `FileBackend`, truncate the file at every byte offset, and
/// `read_all` must return the clean prefix every time.
#[test]
fn file_backend_read_all_survives_truncation_at_every_offset() {
    let recs: Vec<LogRecord> = (0..5)
        .map(|i| LogRecord::Op {
            txn: TxnId(i),
            op: LogOp::Insert {
                table: TableId(7),
                row: vec![Value::Int(i as i64), Value::str(format!("r{i}"))],
            },
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("morph-wal-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let full = dir.join("full.wal");
    {
        let mut backend = FileBackend::open(&full).unwrap();
        for rec in &recs {
            Backend::append(&mut backend, &codec::encode(rec));
        }
        Backend::flush(&mut backend).unwrap();
    }
    let bytes = std::fs::read(&full).unwrap();

    for cut in 0..=bytes.len() {
        let torn = dir.join("torn.wal");
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        let decoded =
            FileBackend::read_all(&torn).unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
        assert_eq!(&decoded[..], &recs[..decoded.len()], "cut at byte {cut}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
