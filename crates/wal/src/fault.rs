//! Fault-injecting in-memory WAL backend for deterministic crash
//! simulation (FoundationDB-style: all failure decisions come from a
//! seeded RNG, so every run reproduces exactly from its seed).
//!
//! [`FaultBackend`] implements [`Backend`] over two byte buffers:
//! `durable` (bytes a successful flush has synced) and `buffered`
//! (appended but not yet flushed). A simulated crash, triggered
//! through the paired [`FaultHandle`], keeps a *seeded-random byte
//! prefix* of the buffered bytes — covering the whole spectrum from
//! "all unsynced bytes lost" through torn mid-record writes to "the
//! OS happened to write everything" — and wedges the backend so any
//! post-crash use fails loudly. The surviving byte image is exactly
//! what a restarted engine may recover from.
//!
//! Injected *errors* (as opposed to crashes) are driven by per-call
//! probabilities: appends can record a sticky deferred error (the
//! same contract as [`FileBackend`](crate::file::FileBackend)), and
//! flushes can fail outright, leaving the buffered bytes non-durable.

use crate::file::{decode_stream, Backend};
use crate::record::LogRecord;
use morph_common::{DbError, DbResult};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Failure policy for a [`FaultBackend`]. All randomness flows from
/// `seed`; with both probabilities zero the backend behaves like a
/// perfect disk until [`FaultHandle::crash`] is called.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed for every fault decision (error draws and crash tearing).
    pub seed: u64,
    /// Probability an `append` records a sticky deferred I/O error
    /// instead of buffering its bytes.
    pub append_error_prob: f64,
    /// Probability a `flush` fails, leaving buffered bytes volatile.
    pub flush_error_prob: f64,
}

impl FaultConfig {
    /// A perfect disk (no spontaneous errors) whose only fault is the
    /// crash the harness will inject — the sim-sweep default.
    pub fn crash_only(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            append_error_prob: 0.0,
            flush_error_prob: 0.0,
        }
    }
}

struct FaultState {
    config: FaultConfig,
    rng: StdRng,
    /// Bytes a successful flush has made durable; survives a crash.
    durable: Vec<u8>,
    /// Appended but unflushed bytes; (partially) lost at a crash.
    buffered: Vec<u8>,
    /// First injected append error, surfaced at the next flush
    /// (sticky, mirroring `FileBackend`).
    deferred: Option<DbError>,
    /// Set by [`FaultHandle::crash`]: the process is "dead"; any
    /// further append is dropped and any flush errors.
    wedged: bool,
    appends: usize,
    flushes: usize,
}

/// The [`Backend`] half: owned by the `LogManager` under test.
pub struct FaultBackend {
    state: Arc<Mutex<FaultState>>,
}

/// The control half: held by the simulation harness to trigger the
/// crash and to read the surviving durable image afterwards.
#[derive(Clone)]
pub struct FaultHandle {
    state: Arc<Mutex<FaultState>>,
}

impl FaultBackend {
    /// Build a backend/handle pair sharing one fault state.
    pub fn new(config: FaultConfig) -> (FaultBackend, FaultHandle) {
        let state = Arc::new(Mutex::new(FaultState {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            durable: Vec::new(),
            buffered: Vec::new(),
            deferred: None,
            wedged: false,
            appends: 0,
            flushes: 0,
        }));
        (
            FaultBackend {
                state: Arc::clone(&state),
            },
            FaultHandle { state },
        )
    }
}

impl Backend for FaultBackend {
    fn append(&mut self, encoded: &[u8]) {
        let mut s = self.state.lock();
        s.appends += 1;
        if s.wedged {
            return; // writes from a "dead" process go nowhere
        }
        if s.config.append_error_prob > 0.0 {
            let p = s.config.append_error_prob;
            if s.rng.gen_bool(p) {
                if s.deferred.is_none() {
                    s.deferred = Some(DbError::Io("injected append failure".into()));
                }
                return;
            }
        }
        let len = (encoded.len() as u32).to_le_bytes();
        s.buffered.extend_from_slice(&len);
        s.buffered.extend_from_slice(encoded);
    }

    fn flush(&mut self) -> DbResult<()> {
        let mut s = self.state.lock();
        s.flushes += 1;
        if s.wedged {
            return Err(DbError::Io("backend wedged after simulated crash".into()));
        }
        if let Some(e) = s.deferred.clone() {
            return Err(e); // sticky, like FileBackend
        }
        if s.config.flush_error_prob > 0.0 {
            let p = s.config.flush_error_prob;
            if s.rng.gen_bool(p) {
                return Err(DbError::Io("injected flush failure".into()));
            }
        }
        let buffered = std::mem::take(&mut s.buffered);
        s.durable.extend_from_slice(&buffered);
        Ok(())
    }
}

impl FaultHandle {
    /// Kill the "process": a seeded-random byte prefix of the
    /// unflushed buffer survives (0 = all unsynced bytes dropped,
    /// `buffered.len()` = everything happened to reach the platter,
    /// anything between = a torn write at that byte offset). Returns
    /// the number of buffered bytes that survived. The backend is
    /// wedged afterwards; reads of the surviving image go through
    /// [`FaultHandle::durable_bytes`] / [`FaultHandle::durable_records`].
    pub fn crash(&self) -> usize {
        let mut s = self.state.lock();
        let buffered = std::mem::take(&mut s.buffered);
        let keep = if buffered.is_empty() {
            0
        } else {
            s.rng.gen_range(0..=buffered.len())
        };
        s.durable.extend_from_slice(&buffered[..keep]);
        s.wedged = true;
        keep
    }

    /// Whether [`FaultHandle::crash`] has fired.
    pub fn is_wedged(&self) -> bool {
        self.state.lock().wedged
    }

    /// Snapshot of the durable byte image.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }

    /// Decode the durable image into complete records, tolerating the
    /// torn tail a mid-record crash leaves behind — precisely what a
    /// restarted engine would read off disk.
    pub fn durable_records(&self) -> DbResult<Vec<LogRecord>> {
        decode_stream(&self.state.lock().durable)
    }

    /// Unflushed byte count (0 after a crash).
    pub fn buffered_len(&self) -> usize {
        self.state.lock().buffered.len()
    }

    /// `(appends, flushes)` seen so far, for trace assertions.
    pub fn counts(&self) -> (usize, usize) {
        let s = self.state.lock();
        (s.appends, s.flushes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use morph_common::TxnId;

    fn rec(i: u64) -> LogRecord {
        LogRecord::Begin { txn: TxnId(i) }
    }

    #[test]
    fn flushed_bytes_survive_a_crash() {
        let (mut be, handle) = FaultBackend::new(FaultConfig::crash_only(7));
        for i in 0..4 {
            be.append(&codec::encode(&rec(i)));
        }
        be.flush().unwrap();
        be.append(&codec::encode(&rec(99)));
        handle.crash();
        let recs = handle.durable_records().unwrap();
        assert!(recs.len() >= 4, "flushed records lost: {}", recs.len());
        assert_eq!(recs[..4], (0..4).map(rec).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn crash_keeps_a_prefix_of_unflushed_bytes() {
        // Across many seeds the tear point must always yield a durable
        // image that decodes to a strict prefix of the appended records.
        for seed in 0..50u64 {
            let (mut be, handle) = FaultBackend::new(FaultConfig::crash_only(seed));
            let all: Vec<LogRecord> = (0..6).map(rec).collect();
            for r in &all {
                be.append(&codec::encode(r));
            }
            let survived = handle.crash();
            assert!(survived <= handle.durable_bytes().len());
            let recs = handle.durable_records().unwrap();
            assert!(recs.len() <= all.len());
            assert_eq!(recs[..], all[..recs.len()], "seed {seed}");
        }
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let (mut be, handle) = FaultBackend::new(FaultConfig::crash_only(seed));
            for i in 0..8 {
                be.append(&codec::encode(&rec(i)));
            }
            handle.crash();
            handle.durable_bytes()
        };
        assert_eq!(run(42), run(42));
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn wedged_backend_rejects_use() {
        let (mut be, handle) = FaultBackend::new(FaultConfig::crash_only(1));
        handle.crash();
        be.append(&codec::encode(&rec(1)));
        assert!(matches!(be.flush(), Err(DbError::Io(_))));
        assert!(handle.durable_records().unwrap().is_empty());
    }

    #[test]
    fn injected_append_error_is_sticky_until_flush() {
        let (mut be, _handle) = FaultBackend::new(FaultConfig {
            seed: 3,
            append_error_prob: 1.0,
            flush_error_prob: 0.0,
        });
        be.append(&codec::encode(&rec(1)));
        assert!(matches!(be.flush(), Err(DbError::Io(_))));
        assert!(matches!(be.flush(), Err(DbError::Io(_))));
    }

    #[test]
    fn injected_flush_error_keeps_bytes_volatile() {
        let (mut be, handle) = FaultBackend::new(FaultConfig {
            seed: 3,
            append_error_prob: 0.0,
            flush_error_prob: 1.0,
        });
        be.append(&codec::encode(&rec(1)));
        assert!(matches!(be.flush(), Err(DbError::Io(_))));
        assert!(handle.durable_bytes().is_empty());
        assert!(handle.buffered_len() > 0);
    }
}
